//! Shared helpers for the criterion benchmark suite (see `benches/`).
