//! Benchmark D1: the §3.3 distributed schemes — wall-clock cost of
//! draining the same cross-site workload under detection vs prevention,
//! and the per-scheme message/rollback profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_core::scheduler::RoundRobin;
use pr_core::StrategyKind;
use pr_dist::{CrossSiteScheme, DistConfig, DistributedSystem};
use pr_model::Value;
use pr_sim::generator::{GeneratorConfig, ProgramGenerator};
use pr_storage::GlobalStore;
use std::hint::black_box;

fn workload() -> Vec<pr_model::TransactionProgram> {
    let cfg = GeneratorConfig {
        num_entities: 16,
        min_locks: 2,
        max_locks: 4,
        pad_between: 3,
        ..Default::default()
    };
    ProgramGenerator::new(cfg, 41).generate_workload(16)
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("d1-distributed");
    g.sample_size(20);
    let programs = workload();
    for scheme in CrossSiteScheme::ALL {
        for strategy in [StrategyKind::Total, StrategyKind::Mcs] {
            let label = format!("{}/{}", scheme.name(), strategy.name());
            g.bench_with_input(BenchmarkId::from_parameter(label), &programs, |b, programs| {
                b.iter(|| {
                    let store = GlobalStore::with_entities(16, Value::new(100));
                    let mut sys =
                        DistributedSystem::new(store, DistConfig::new(4, scheme, strategy));
                    for p in programs {
                        sys.admit(p.clone()).unwrap();
                    }
                    sys.run(&mut RoundRobin::new()).unwrap();
                    assert!(sys.all_committed());
                    black_box(sys.metrics().clone())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
