//! Benchmarks for the two §4 bookkeeping structures:
//!
//! * the state-dependency graph — the paper claims "the overhead in
//!   maintaining a state dependency graph is clearly very low"; this
//!   measures edge insertion, well-definedness queries, and the
//!   articulation-point alternative;
//! * the MCS version stacks — write recording and the Theorem 3
//!   worst-case workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_graph::articulation::well_defined_by_articulation;
use pr_graph::StateDependencyGraph;
use pr_model::{EntityId, LockIndex, Value, VarId};
use pr_storage::McsWorkspace;
use std::hint::black_box;

/// Builds an SDG with `n` lock states and a write to a random-ish earlier
/// restorability index per state.
fn build_sdg(n: u32) -> StateDependencyGraph {
    let mut g = StateDependencyGraph::new();
    for k in 0..n {
        g.on_lock_state();
        // Deterministic pseudo-random spread writes.
        let u = (k.wrapping_mul(2654435761)) % (k + 1);
        g.on_write(LockIndex::new(u), LockIndex::new(k + 1));
    }
    g
}

fn bench_sdg_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("sdg-maintenance");
    for &n in &[8u32, 32, 128, 512] {
        g.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| black_box(build_sdg(black_box(n))))
        });
        let sdg = build_sdg(n);
        g.bench_with_input(BenchmarkId::new("query-latest-wd", n), &sdg, |b, sdg| {
            b.iter(|| {
                for q in 0..=n {
                    black_box(sdg.latest_well_defined_at_or_below(LockIndex::new(q)));
                }
            })
        });
        let edges: Vec<(u32, u32)> = sdg.edges().to_vec();
        g.bench_with_input(BenchmarkId::new("articulation-alternative", n), &edges, |b, edges| {
            b.iter(|| black_box(well_defined_by_articulation(n, black_box(edges))))
        });
    }
    g.finish();
}

fn bench_mcs_worst_case(c: &mut Criterion) {
    // The Theorem 3 adversarial pattern: lock E_j, then write every held
    // entity — n(n+1)/2 copies.
    let mut g = c.benchmark_group("mcs-theorem3");
    for &n in &[4u32, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut w = McsWorkspace::new(&[Value::ZERO; 2]);
                for j in 0..n {
                    w.on_exclusive_lock(EntityId::new(j), LockIndex::new(j), Value::ZERO);
                    for i in 0..=j {
                        w.write_entity(EntityId::new(i), LockIndex::new(j + 1), Value::new(1))
                            .unwrap();
                    }
                    w.assign_var(VarId::new(0), LockIndex::new(j + 1), Value::new(2)).unwrap();
                    w.assign_var(VarId::new(1), LockIndex::new(j + 1), Value::new(3)).unwrap();
                }
                let counts = w.copy_counts();
                assert_eq!(counts.entity_copies, (n * (n + 1) / 2) as usize);
                black_box(counts)
            })
        });
    }
    g.finish();
}

fn bench_mcs_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcs-rollback");
    for &n in &[8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut w = McsWorkspace::new(&[Value::ZERO]);
                    for j in 0..n {
                        w.on_exclusive_lock(EntityId::new(j), LockIndex::new(j), Value::ZERO);
                        w.write_entity(EntityId::new(j), LockIndex::new(j + 1), Value::new(1))
                            .unwrap();
                    }
                    w
                },
                |mut w| {
                    black_box(w.rollback_to(LockIndex::new(n / 2)));
                    w
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sdg_maintenance, bench_mcs_worst_case, bench_mcs_rollback);
criterion_main!(benches);
