//! Benchmark Q3: the §3.2 minimum-cost vertex cut — exact branch-and-bound
//! vs the greedy heuristic as the cycle family grows. The paper's
//! NP-completeness observation predicts the exact solver's cost explodes
//! with instance size while greedy stays polynomial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_graph::cutset;
use pr_sim::experiments::random_cut_instance;
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("cutset");
    for &(cycles, members) in &[(2usize, 3usize), (4, 4), (8, 5), (16, 6), (32, 6)] {
        let instances: Vec<_> =
            (0..8u64).map(|s| random_cut_instance(cycles, members, s)).collect();
        g.bench_with_input(
            BenchmarkId::new("exact", format!("{cycles}x{members}")),
            &instances,
            |b, instances| {
                b.iter(|| {
                    for inst in instances {
                        black_box(cutset::solve_exact(black_box(inst), 2_000_000));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("greedy", format!("{cycles}x{members}")),
            &instances,
            |b, instances| {
                b.iter(|| {
                    for inst in instances {
                        black_box(cutset::solve_greedy(black_box(inst)));
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_single_cycle_min_cost(c: &mut Criterion) {
    // The exclusive-only case of §3.1: one cycle, pick the cheapest
    // member — this is the per-deadlock overhead a real system pays.
    let mut g = c.benchmark_group("single-cycle");
    for &members in &[2usize, 4, 8, 16] {
        let inst = random_cut_instance(1, members, 7);
        g.bench_with_input(BenchmarkId::from_parameter(members), &inst, |b, inst| {
            b.iter(|| black_box(cutset::solve(black_box(inst), 10_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_single_cycle_min_cost);
criterion_main!(benches);
