//! Benchmarks F1–F5: the cost of reproducing each of the paper's figures
//! end-to-end (scenario construction, engine execution, deadlock
//! resolution).

use criterion::{criterion_group, criterion_main, Criterion};
use pr_core::{StrategyKind, VictimPolicyKind};
use pr_sim::scenarios::{figure1, figure2, figure3, figure4, figure5};
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure1");
    for strategy in StrategyKind::ALL {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let out = figure1::run(black_box(strategy));
                assert!(out.victim_cost >= 4);
                black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_figure2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2");
    g.sample_size(10);
    // The min-cost run is a bounded livelock: 2000 steps of mutual
    // preemption. The partial-order run terminates naturally.
    g.bench_function("mincost-livelock-2000-steps", |b| {
        b.iter(|| black_box(figure2::run_policy(VictimPolicyKind::MinCost, 2_000)))
    });
    g.bench_function("partial-order-terminates", |b| {
        b.iter(|| {
            let out = figure2::run_policy(VictimPolicyKind::PartialOrder, 50_000);
            assert!(out.completed);
            black_box(out)
        })
    });
    g.finish();
}

fn bench_figure3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3");
    g.bench_function("a-acyclic-non-forest", |b| b.iter(|| black_box(figure3::run_a())));
    g.bench_function("b-two-cycles-one-victim", |b| b.iter(|| black_box(figure3::run_b(2, 2))));
    g.bench_function("c-shared-holders-cut", |b| b.iter(|| black_box(figure3::run_c(25, 1))));
    g.finish();
}

fn bench_figure4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure4");
    let original = figure4::paper_t1_fig4();
    let modified = figure4::paper_t1_fig4_modified();
    g.bench_function("well-defined-three-ways-original", |b| {
        b.iter(|| black_box(figure4::well_defined_states(black_box(&original))))
    });
    g.bench_function("well-defined-three-ways-modified", |b| {
        b.iter(|| black_box(figure4::well_defined_states(black_box(&modified))))
    });
    g.finish();
}

fn bench_figure5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure5");
    g.bench_function("spread-victim", |b| {
        b.iter(|| black_box(figure5::run_variant(figure5::victim_spread())))
    });
    g.bench_function("clustered-victim", |b| {
        b.iter(|| black_box(figure5::run_variant(figure5::victim_clustered())))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_figure1,
    bench_figure2,
    bench_figure3,
    bench_figure4,
    bench_figure5
);
criterion_main!(figures);
