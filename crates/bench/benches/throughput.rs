//! Benchmarks the high-contention stress harness: closed-loop throughput
//! across Zipf skew levels and both grant policies. The companion binary
//! (`cargo run -p pr-sim --release --bin throughput`) runs the full grid
//! and records `BENCH_throughput.json`; this bench times representative
//! cells so regressions in the hot engine paths (lock grants, waits-for
//! refresh, deadlock resolution) show up as wall-clock deltas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_core::{GrantPolicy, StrategyKind, SystemConfig, VictimPolicyKind};
use pr_sim::stress::{run_stress, StressConfig};
use std::hint::black_box;

fn bench_zipf_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1-throughput-zipf");
    g.sample_size(10);
    for &zipf_centi in &[0u16, 80, 120] {
        g.bench_with_input(BenchmarkId::from_parameter(zipf_centi), &zipf_centi, |b, &zipf| {
            b.iter(|| {
                let mut system =
                    SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
                system.max_steps = 2_000_000;
                let cfg = StressConfig {
                    total_txns: 48,
                    concurrency: 16,
                    zipf_centi: zipf,
                    system,
                    ..StressConfig::default()
                };
                let report = run_stress(black_box(&cfg)).unwrap();
                assert!(report.completed);
                black_box(report)
            })
        });
    }
    g.finish();
}

fn bench_grant_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2-throughput-policy");
    g.sample_size(10);
    for policy in GrantPolicy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(policy.name()), &policy, |b, &policy| {
            b.iter(|| {
                let mut system =
                    SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::PartialOrder)
                        .with_grant_policy(policy);
                system.max_steps = 2_000_000;
                let cfg = StressConfig {
                    total_txns: 48,
                    concurrency: 16,
                    zipf_centi: 120,
                    exclusive_per_mille: 300,
                    system,
                    ..StressConfig::default()
                };
                let report = run_stress(black_box(&cfg)).unwrap();
                assert!(report.completed);
                black_box(report)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_zipf_skew, bench_grant_policy);
criterion_main!(benches);
