//! Benchmarks Q1/Q2: the same contended workload under each rollback
//! strategy. Criterion measures the wall-clock cost of running the
//! workload to completion — total rollback re-executes more operations,
//! which shows up directly as time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_core::{StrategyKind, SystemConfig, VictimPolicyKind};
use pr_sim::generator::{Clustering, GeneratorConfig, ProgramGenerator};
use pr_sim::runner::{run_workload, store_with, SchedulerKind};
use std::hint::black_box;

fn contended_workload(seed: u64) -> Vec<pr_model::TransactionProgram> {
    let cfg = GeneratorConfig {
        num_entities: 8,
        min_locks: 3,
        max_locks: 6,
        writes_per_entity: 2,
        pad_between: 3,
        clustering: Clustering::Spread { spread_per_mille: 500 },
        ..Default::default()
    };
    ProgramGenerator::new(cfg, seed).generate_workload(16)
}

fn bench_lost_progress(c: &mut Criterion) {
    let mut g = c.benchmark_group("q1-lost-progress");
    g.sample_size(20);
    let programs = contended_workload(3);
    for strategy in StrategyKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &programs,
            |b, programs| {
                b.iter(|| {
                    let mut config = SystemConfig::new(strategy, VictimPolicyKind::PartialOrder);
                    config.max_steps = 2_000_000;
                    let report = run_workload(
                        black_box(programs),
                        store_with(8, 100),
                        config,
                        SchedulerKind::Random { seed: 17 },
                    )
                    .unwrap();
                    assert!(report.completed);
                    black_box(report)
                })
            },
        );
    }
    g.finish();
}

fn bench_victim_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("q6-victim-policies");
    g.sample_size(20);
    let programs = contended_workload(5);
    for policy in VictimPolicyKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(policy.name()), &programs, |b, programs| {
            b.iter(|| {
                let mut config = SystemConfig::new(StrategyKind::Mcs, policy);
                // Bounded: the unrestricted policies may livelock, in
                // which case the bench measures the bounded run.
                config.max_steps = 100_000;
                black_box(
                    run_workload(
                        black_box(programs),
                        store_with(8, 100),
                        config,
                        SchedulerKind::Random { seed: 17 },
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_budget_sweep(c: &mut Criterion) {
    // E1: the bounded-copy interpolation between SDG and MCS.
    let mut g = c.benchmark_group("e1-copy-budget");
    g.sample_size(20);
    let programs = contended_workload(7);
    let strategies = [
        StrategyKind::Sdg,
        StrategyKind::Bounded(1),
        StrategyKind::Bounded(4),
        StrategyKind::Bounded(16),
        StrategyKind::Mcs,
    ];
    for strategy in strategies {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &programs,
            |b, programs| {
                b.iter(|| {
                    let mut config = SystemConfig::new(strategy, VictimPolicyKind::PartialOrder);
                    config.max_steps = 2_000_000;
                    black_box(
                        run_workload(
                            black_box(programs),
                            store_with(8, 100),
                            config,
                            SchedulerKind::Random { seed: 31 },
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lost_progress, bench_victim_policies, bench_budget_sweep);
criterion_main!(benches);
