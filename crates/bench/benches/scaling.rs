//! Benchmarks Q4/Q5: write-clustering sweep (Figure 5 at scale) and
//! concurrency scaling (§1's motivation — deadlock handling cost grows
//! with the multiprogramming level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pr_core::{StrategyKind, SystemConfig, VictimPolicyKind};
use pr_sim::generator::{Clustering, GeneratorConfig, ProgramGenerator};
use pr_sim::runner::{run_workload, store_with, SchedulerKind};
use std::hint::black_box;

fn bench_concurrency_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("q5-concurrency");
    g.sample_size(15);
    for &txns in &[4usize, 8, 16, 32] {
        let cfg = GeneratorConfig {
            num_entities: 16,
            min_locks: 2,
            max_locks: 5,
            pad_between: 2,
            ..Default::default()
        };
        let programs = ProgramGenerator::new(cfg, 9).generate_workload(txns);
        g.bench_with_input(BenchmarkId::from_parameter(txns), &programs, |b, programs| {
            b.iter(|| {
                let mut config =
                    SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
                config.max_steps = 2_000_000;
                let report = run_workload(
                    black_box(programs),
                    store_with(16, 100),
                    config,
                    SchedulerKind::Random { seed: 23 },
                )
                .unwrap();
                assert!(report.completed);
                black_box(report)
            })
        });
    }
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut g = c.benchmark_group("q4-clustering");
    g.sample_size(15);
    let variants: [(&str, Clustering); 3] = [
        ("three-phase", Clustering::ThreePhase),
        ("clustered", Clustering::Clustered),
        ("spread", Clustering::Spread { spread_per_mille: 1000 }),
    ];
    for (name, clustering) in variants {
        let cfg = GeneratorConfig {
            num_entities: 10,
            min_locks: 3,
            max_locks: 6,
            writes_per_entity: 2,
            pad_between: 2,
            clustering,
            ..Default::default()
        };
        let programs = ProgramGenerator::new(cfg, 13).generate_workload(16);
        g.bench_with_input(BenchmarkId::from_parameter(name), &programs, |b, programs| {
            b.iter(|| {
                let mut config =
                    SystemConfig::new(StrategyKind::Sdg, VictimPolicyKind::PartialOrder);
                config.max_steps = 2_000_000;
                let report = run_workload(
                    black_box(programs),
                    store_with(10, 100),
                    config,
                    SchedulerKind::Random { seed: 29 },
                )
                .unwrap();
                assert!(report.completed);
                black_box(report)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_concurrency_scaling, bench_clustering);
criterion_main!(benches);
