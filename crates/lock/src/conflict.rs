//! Conflict classification (§3.2).
//!
//! "A conflict in such a system arises either (1) when a transaction
//! requests a shared lock on an entity on which some other transaction
//! holds an exclusive lock (Type 1), or (2) when a transaction requests an
//! exclusive lock on an entity on which another transaction holds any lock
//! (Type 2)."
//!
//! Type 2 conflicts are the reason the concurrency graph of a
//! shared+exclusive system is a general acyclic digraph rather than a
//! forest: one wait response can create arcs to *many* holders at once.

use pr_model::LockMode;
use serde::{Deserialize, Serialize};

/// The two conflict classes of §3.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConflictType {
    /// Shared request vs. exclusive holder. Exactly one holder is waited
    /// on, so the wait adds a single arc.
    Type1,
    /// Exclusive request vs. any holder(s). Possibly many holders are
    /// waited on, so the wait may add several arcs — and hence close
    /// several cycles at once (Figure 3).
    Type2,
}

/// Classifies the conflict between a request and the incompatible holders'
/// modes. Returns `None` when there is no conflict (all holders
/// compatible).
pub fn classify_conflict(requested: LockMode, holder_modes: &[LockMode]) -> Option<ConflictType> {
    match requested {
        LockMode::Shared => {
            holder_modes.contains(&LockMode::Exclusive).then_some(ConflictType::Type1)
        }
        LockMode::Exclusive => (!holder_modes.is_empty()).then_some(ConflictType::Type2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    #[test]
    fn shared_vs_exclusive_is_type1() {
        assert_eq!(classify_conflict(Shared, &[Exclusive]), Some(ConflictType::Type1));
    }

    #[test]
    fn shared_vs_shared_is_no_conflict() {
        assert_eq!(classify_conflict(Shared, &[Shared, Shared]), None);
        assert_eq!(classify_conflict(Shared, &[]), None);
    }

    #[test]
    fn exclusive_vs_anything_is_type2() {
        assert_eq!(classify_conflict(Exclusive, &[Shared]), Some(ConflictType::Type2));
        assert_eq!(classify_conflict(Exclusive, &[Exclusive]), Some(ConflictType::Type2));
        assert_eq!(
            classify_conflict(Exclusive, &[Shared, Shared, Shared]),
            Some(ConflictType::Type2)
        );
    }

    #[test]
    fn exclusive_vs_nothing_is_no_conflict() {
        assert_eq!(classify_conflict(Exclusive, &[]), None);
    }
}
