//! Lock-manager errors.

use pr_model::{EntityId, TxnId};
use std::fmt;

/// Errors raised by [`crate::LockTable`]. Like the storage errors, these
/// indicate protocol violations by the caller, not data conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockError {
    /// The transaction already holds a lock on the entity.
    AlreadyHeld {
        /// Requesting transaction.
        txn: TxnId,
        /// Entity already held.
        entity: EntityId,
    },
    /// The transaction already has a pending request (a transaction is a
    /// sequential process; it cannot wait on two entities at once).
    AlreadyWaiting {
        /// Requesting transaction.
        txn: TxnId,
        /// Entity it is already waiting for.
        entity: EntityId,
    },
    /// The transaction does not hold a lock on the entity it tried to
    /// release.
    NotHeld {
        /// Releasing transaction.
        txn: TxnId,
        /// Entity not held.
        entity: EntityId,
    },
    /// The transaction has no pending request to cancel on this entity.
    NotWaiting {
        /// Transaction named in the cancellation.
        txn: TxnId,
        /// Entity it was claimed to be waiting for.
        entity: EntityId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::AlreadyHeld { txn, entity } => {
                write!(f, "{txn} already holds a lock on {entity}")
            }
            LockError::AlreadyWaiting { txn, entity } => {
                write!(f, "{txn} is already waiting for {entity}")
            }
            LockError::NotHeld { txn, entity } => {
                write!(f, "{txn} does not hold a lock on {entity}")
            }
            LockError::NotWaiting { txn, entity } => {
                write!(f, "{txn} is not waiting for {entity}")
            }
        }
    }
}

impl std::error::Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_txn_and_entity() {
        let e = LockError::AlreadyHeld { txn: TxnId::new(1), entity: EntityId::new(0) };
        assert_eq!(e.to_string(), "T1 already holds a lock on a");
    }
}
