//! Static entity acquisition orders: the runtime half of the
//! orderability prover.
//!
//! A workload is *orderable* when some total order over its entities has
//! every program acquire locks in strictly ascending rank. Under such an
//! order no hold-and-wait cycle can form — around any would-be cycle the
//! rank of the requested entity strictly exceeds the rank of every held
//! one, so ranks would have to increase forever — which is why ordered
//! acquisition makes 2PL deadlock-free without any detection machinery.
//!
//! [`derive_order`] computes such an order (or reports the entity
//! precedence cycles that forbid one), and [`EntityOrder`] is the
//! installable artifact: the engine checks each admitted program with
//! [`EntityOrder::covers_program`] and, under `GrantPolicy::Ordered`,
//! skips deadlock detection whenever every blocked transaction is
//! covered. The strict-ascending check deliberately rejects S→X upgrades
//! and re-locks (the second request of an entity repeats its rank), so a
//! covered program can never re-request an entity — the edge cases the
//! richer static analysis in `pr-analyze` models are excluded by
//! construction rather than special-cased.

use pr_model::{EntityId, TransactionProgram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A total acquisition order over entities, installable into the engine
/// as a deadlock-freedom certificate's runtime form.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct EntityOrder {
    order: Vec<EntityId>,
    rank: BTreeMap<EntityId, u32>,
}

impl EntityOrder {
    /// Builds an order from an explicit entity sequence. Returns `None`
    /// if the sequence repeats an entity (not a total order).
    pub fn new(order: Vec<EntityId>) -> Option<EntityOrder> {
        let mut rank = BTreeMap::new();
        for (i, &e) in order.iter().enumerate() {
            if rank.insert(e, i as u32).is_some() {
                return None;
            }
        }
        Some(EntityOrder { order, rank })
    }

    /// The ascending-id identity order over entities `0..n` — the order
    /// every workload generated with `ordered_locks` conforms to.
    pub fn identity(n: u32) -> EntityOrder {
        let order: Vec<EntityId> = (0..n).map(EntityId::new).collect();
        EntityOrder::new(order).expect("identity order has no duplicates")
    }

    /// The entities in certified order.
    pub fn entities(&self) -> &[EntityId] {
        &self.order
    }

    /// Rank of `entity` in the order, if certified at all.
    pub fn rank(&self, entity: EntityId) -> Option<u32> {
        self.rank.get(&entity).copied()
    }

    /// Number of certified entities.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order certifies no entities at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The first lock request of `program` that this order cannot vouch
    /// for: either an entity outside the order, or a request whose rank
    /// does not strictly exceed every earlier request's rank (which also
    /// rejects upgrades and re-locks — a repeated entity repeats its
    /// rank). Returns `(pc, entity)` of the offending request, or `None`
    /// if the whole program acquires in strictly ascending rank.
    pub fn first_violation(&self, program: &TransactionProgram) -> Option<(usize, EntityId)> {
        let mut prev: Option<u32> = None;
        for (pc, entity, _mode) in program.lock_requests() {
            let Some(r) = self.rank(entity) else {
                return Some((pc, entity));
            };
            if prev.is_some_and(|p| r <= p) {
                return Some((pc, entity));
            }
            prev = Some(r);
        }
        None
    }

    /// Whether every lock request of `program` is consistent with this
    /// order — the per-transaction proof obligation of a certificate.
    pub fn covers_program(&self, program: &TransactionProgram) -> bool {
        self.first_violation(program).is_none()
    }
}

/// An entity precedence cycle: entities in cycle order, each required to
/// precede the next (wrapping) by some program's acquisition sequence. A
/// one-element cycle is a self-edge — an upgrade or re-lock that no
/// strict order can serve.
pub type PrecedenceCycle = Vec<EntityId>;

/// Derives a total acquisition order covering every program, if one
/// exists.
///
/// The constraint graph has an arc `a → b` for every pair of requests
/// adjacent in some program's lock sequence (transitively this demands
/// the whole sequence ascend). If the graph is acyclic, Kahn's algorithm
/// with a smallest-entity-id tie-break yields a deterministic total
/// order — entities no program locks are excluded, and
/// [`EntityOrder::covers_program`] holds for every input program. If it
/// is cyclic, no order exists; the error carries one shortest cycle per
/// strongly connected component, deterministic and minimal enough to act
/// on.
pub fn derive_order(programs: &[TransactionProgram]) -> Result<EntityOrder, Vec<PrecedenceCycle>> {
    // Dense-index the entities that appear in lock requests.
    let mut index: BTreeMap<EntityId, usize> = BTreeMap::new();
    for p in programs {
        for (_, e, _) in p.lock_requests() {
            let next = index.len();
            index.entry(e).or_insert(next);
        }
    }
    let entities: Vec<EntityId> = index.keys().copied().collect();
    // BTreeMap iterates key-ascending; re-map so index order == id order,
    // which makes the Kahn tie-break below a plain smallest-index scan.
    for (i, &e) in entities.iter().enumerate() {
        index.insert(e, i);
    }
    let n = entities.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for p in programs {
        let reqs = p.lock_requests();
        for pair in reqs.windows(2) {
            let a = index[&pair[0].1];
            let b = index[&pair[1].1];
            if a == b {
                self_loop[a] = true;
            } else if !adj[a].contains(&b) {
                adj[a].push(b);
            }
        }
    }

    // Kahn's algorithm, always removing the smallest-id ready entity.
    let mut indegree = vec![0usize; n];
    for succs in &adj {
        for &b in succs {
            indegree[b] += 1;
        }
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let Some(next) = (0..n).find(|&v| !removed[v] && indegree[v] == 0 && !self_loop[v]) else {
            break;
        };
        removed[next] = true;
        order.push(entities[next]);
        for &b in &adj[next] {
            indegree[b] -= 1;
        }
    }
    if order.len() == n {
        return Ok(EntityOrder::new(order).expect("topological order has no duplicates"));
    }

    // The leftover subgraph holds every cycle; report one shortest cycle
    // per SCC (plus every self-loop) as the infeasible core.
    let mut cycles: Vec<PrecedenceCycle> = Vec::new();
    for v in 0..n {
        if !removed[v] && self_loop[v] {
            cycles.push(vec![entities[v]]);
        }
    }
    for scc in sccs_of(n, &adj, &removed) {
        if scc.len() < 2 {
            continue;
        }
        if let Some(cycle) = shortest_cycle(&scc, &adj) {
            cycles.push(cycle.into_iter().map(|v| entities[v]).collect());
        }
    }
    cycles.sort();
    Err(cycles)
}

/// Strongly connected components of the not-yet-removed subgraph
/// (iterative Tarjan), returned with members sorted ascending.
fn sccs_of(n: usize, adj: &[Vec<usize>], removed: &[bool]) -> Vec<Vec<usize>> {
    let mut idx = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for root in 0..n {
        if removed[root] || idx[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        idx[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if removed[w] {
                    continue;
                }
                if idx[w] == usize::MAX {
                    idx[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == idx[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs.sort();
    sccs
}

/// One shortest cycle inside an SCC: BFS from each member back to itself
/// along intra-SCC arcs, keeping the globally shortest (first found on
/// ties, which is deterministic since members are sorted).
fn shortest_cycle(scc: &[usize], adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let member = |v: usize| scc.binary_search(&v).is_ok();
    let mut best: Option<Vec<usize>> = None;
    for &start in scc {
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier = vec![start];
        'bfs: while !frontier.is_empty() {
            let mut nextf = Vec::new();
            for &v in &frontier {
                for &w in &adj[v] {
                    if !member(w) {
                        continue;
                    }
                    if w == start {
                        let mut path = vec![v];
                        let mut cur = v;
                        while cur != start {
                            cur = prev[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                            best = Some(path);
                        }
                        break 'bfs;
                    }
                    if w != start && !prev.contains_key(&w) {
                        prev.insert(w, v);
                        nextf.push(w);
                    }
                }
            }
            frontier = nextf;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_model::{Op, ProgramBuilder};

    fn e(c: char) -> EntityId {
        EntityId::new(c as u32 - 'a' as u32)
    }

    fn xprog(seq: &str) -> TransactionProgram {
        let mut b = ProgramBuilder::new();
        for c in seq.chars() {
            b = b.lock_exclusive(e(c));
        }
        b.pad(1).build_unchecked()
    }

    #[test]
    fn aligned_workload_gets_the_identity_order() {
        let order = derive_order(&[xprog("ab"), xprog("bc"), xprog("ac")]).unwrap();
        assert_eq!(order.entities(), &[e('a'), e('b'), e('c')]);
        assert!(order.covers_program(&xprog("ac")));
        assert_eq!(order.rank(e('c')), Some(2));
        assert_eq!(order.rank(e('z')), None);
    }

    #[test]
    fn derived_order_respects_non_identity_precedence() {
        // b must precede a; the tie-break keeps everything else ascending.
        let order = derive_order(&[xprog("ba"), xprog("bc")]).unwrap();
        assert_eq!(order.entities(), &[e('b'), e('a'), e('c')]);
        assert!(order.covers_program(&xprog("ba")));
        assert!(!order.covers_program(&xprog("ab")));
    }

    #[test]
    fn inverted_pair_has_no_order_and_reports_the_cycle() {
        let cycles = derive_order(&[xprog("ab"), xprog("ba")]).unwrap_err();
        assert_eq!(cycles, vec![vec![e('a'), e('b')]]);
    }

    #[test]
    fn three_way_rotation_reports_one_shortest_cycle() {
        let cycles = derive_order(&[xprog("ab"), xprog("bc"), xprog("ca")]).unwrap_err();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn independent_cycles_are_each_reported() {
        let cycles =
            derive_order(&[xprog("ab"), xprog("ba"), xprog("cd"), xprog("dc")]).unwrap_err();
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(|c| c.len() == 2));
    }

    /// A raw re-lock/upgrade program (`validate` rejects these, so they
    /// are assembled from parts like the `hold_requests` unlock test).
    fn raw(ops: Vec<Op>) -> TransactionProgram {
        TransactionProgram::from_parts(ops, vec![])
    }

    #[test]
    fn relock_is_a_self_loop_no_strict_order_serves() {
        let relock = raw(vec![
            Op::LockExclusive(e('a')),
            Op::LockExclusive(e('b')),
            Op::LockExclusive(e('a')),
            Op::Commit,
        ]);
        let cycles = derive_order(&[relock]).unwrap_err();
        assert_eq!(cycles, vec![vec![e('a'), e('b')]]);
        // An immediate upgrade is a self-edge: a one-entity cycle.
        let upgrade = raw(vec![Op::LockShared(e('a')), Op::LockExclusive(e('a')), Op::Commit]);
        let cycles = derive_order(&[upgrade]).unwrap_err();
        assert_eq!(cycles, vec![vec![e('a')]]);
    }

    #[test]
    fn coverage_rejects_upgrades_and_relocks() {
        let order = EntityOrder::identity(4);
        let upgrade = raw(vec![Op::LockShared(e('a')), Op::LockExclusive(e('a')), Op::Commit]);
        assert_eq!(order.first_violation(&upgrade), Some((1, e('a'))));
        let relock = raw(vec![
            Op::LockExclusive(e('a')),
            Op::LockExclusive(e('b')),
            Op::LockExclusive(e('a')),
            Op::Commit,
        ]);
        assert_eq!(order.first_violation(&relock), Some((2, e('a'))));
        let outside = xprog("az");
        assert_eq!(order.first_violation(&outside), Some((1, e('z'))));
    }

    #[test]
    fn explicit_order_rejects_duplicates() {
        assert!(EntityOrder::new(vec![e('a'), e('a')]).is_none());
        let id = EntityOrder::identity(3);
        assert_eq!(id.len(), 3);
        assert!(!id.is_empty());
        assert!(EntityOrder::identity(0).is_empty());
    }
}
