//! The lock table: holders, FIFO waiter queues, grant/release logic.

use crate::conflict::{classify_conflict, ConflictType};
use crate::error::LockError;
use pr_model::{EntityId, LockIndex, LockMode, StateIndex, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Grant policy: what happens to a *compatible* request while incompatible
/// waiters are queued.
///
/// The paper's response rules (§2) grant any request compatible with the
/// current holders — queue order never defers a grant. That is
/// [`GrantPolicy::Barging`], the default. Under a steady stream of shared
/// requesters it starves exclusive waiters indefinitely;
/// [`GrantPolicy::FairQueue`] trades a little concurrency for bounded
/// waits by refusing new grants that would overtake an incompatible
/// queued waiter. [`GrantPolicy::Ordered`] keeps the fair queue's grant
/// semantics and additionally signals to the engine that the workload
/// carries a certified total entity acquisition order (see
/// [`crate::order`]), letting it skip deadlock-detection bookkeeping for
/// requests the certificate vouches for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum GrantPolicy {
    /// Paper-faithful (§2): a request compatible with the holders is
    /// granted immediately, even past blocked incompatible waiters.
    #[default]
    Barging,
    /// Anti-starvation: a request is granted only if it is compatible with
    /// the holders *and* no incompatible request is queued ahead of it;
    /// promotion proceeds strictly from the queue front.
    FairQueue,
    /// Certified ordered acquisition: fair-queue grant semantics, with the
    /// engine skipping deadlock detection for transactions covered by an
    /// installed [`crate::order::EntityOrder`]. Uncovered transactions
    /// fall back to the paper's partial-rollback machinery unchanged.
    Ordered,
}

impl GrantPolicy {
    /// The general-purpose policies, for sweeps. `Ordered` is excluded:
    /// it is only meaningful with a certificate installed, so sweeps that
    /// compare it opt in explicitly.
    pub const ALL: [GrantPolicy; 2] = [GrantPolicy::Barging, GrantPolicy::FairQueue];

    /// Stable lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            GrantPolicy::Barging => "barging",
            GrantPolicy::FairQueue => "fair-queue",
            GrantPolicy::Ordered => "ordered",
        }
    }

    /// Whether grants respect queue order: a request is refused while an
    /// incompatible request is queued ahead of it, and promotion stops at
    /// the first blocked waiter. True for every policy except the
    /// paper-faithful [`GrantPolicy::Barging`].
    pub fn queues_fairly(self) -> bool {
        self != GrantPolicy::Barging
    }
}

/// A granted lock, with the §3.1 cost-bookkeeping metadata: the state index
/// from which the transaction issued the request ("the last state … in
/// which T does not hold a lock on A") and the lock index of the lock state
/// the request created.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct HeldLock {
    /// Holder.
    pub txn: TxnId,
    /// Mode held.
    pub mode: LockMode,
    /// State index the holder was at when it requested the lock — rolling
    /// back to this state releases the lock; the rollback cost of §3.1 is
    /// `current state − this`.
    pub requested_from_state: StateIndex,
    /// Lock index of the lock state this request created.
    pub lock_state: LockIndex,
}

/// A pending request, carrying the same metadata so it can be promoted to
/// a [`HeldLock`] unchanged when granted (a blocked transaction does not
/// advance, so the values stay correct while it waits).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WaitingRequest {
    /// Requester.
    pub txn: TxnId,
    /// Mode requested.
    pub mode: LockMode,
    /// State index at request time.
    pub requested_from_state: StateIndex,
    /// Lock index the lock state will have when granted.
    pub lock_state: LockIndex,
}

impl WaitingRequest {
    fn into_held(self) -> HeldLock {
        HeldLock {
            txn: self.txn,
            mode: self.mode,
            requested_from_state: self.requested_from_state,
            lock_state: self.lock_state,
        }
    }
}

/// Outcome of a lock request (§2's response rules 1 and 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RequestOutcome {
    /// Rule 1: no conflicting holder; the lock is granted immediately.
    Granted,
    /// Rule 2: the requester must wait on the listed blockers. Under
    /// [`GrantPolicy::Barging`] these are exactly the incompatible holders
    /// — the new arcs of the concurrency graph; under
    /// [`GrantPolicy::FairQueue`] they additionally include incompatible
    /// requests queued ahead.
    Wait {
        /// Transactions the requester now waits for (incompatible holders
        /// first, then — fair queue only — incompatible queued waiters).
        holders: Vec<TxnId>,
        /// §3.2 classification of the conflict.
        conflict: ConflictType,
    },
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct EntityLock {
    holders: Vec<HeldLock>,
    queue: VecDeque<WaitingRequest>,
}

impl EntityLock {
    fn is_idle(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }

    fn incompatible_holders(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|h| h.txn != txn && !mode.compatible_with(h.mode))
            .map(|h| h.txn)
            .collect()
    }

    /// Incompatible requests queued ahead of position `before` (fair-queue
    /// blockers beyond the holders).
    fn incompatible_queued(&self, mode: LockMode, before: usize) -> Vec<TxnId> {
        self.queue
            .iter()
            .take(before)
            .filter(|w| !mode.compatible_with(w.mode))
            .map(|w| w.txn)
            .collect()
    }

    /// Position of `txn`'s pending request in the FIFO queue, if any — the
    /// single source of truth for queue-position lookups (`blockers_of`,
    /// `waiting_on`, and the invariant check all go through here).
    fn queue_position(&self, txn: TxnId) -> Option<usize> {
        self.queue.iter().position(|w| w.txn == txn)
    }

    /// The transactions blocking the request queued at `pos` under
    /// `policy`: the incompatible holders, plus — fair queue only — the
    /// incompatible requests queued ahead of it. An empty result means the
    /// request is grantable.
    fn blockers_at(&self, pos: usize, policy: GrantPolicy) -> Vec<TxnId> {
        let w = &self.queue[pos];
        let mut blockers = self.incompatible_holders(w.txn, w.mode);
        if policy.queues_fairly() {
            blockers.extend(self.incompatible_queued(w.mode, pos));
        }
        blockers
    }
}

/// The lock manager.
///
/// ```
/// use pr_lock::{LockTable, RequestOutcome};
/// use pr_model::{EntityId, LockIndex, LockMode, StateIndex, TxnId};
///
/// let mut table = LockTable::new();
/// let (t1, t2, a) = (TxnId::new(1), TxnId::new(2), EntityId::new(0));
/// let grant = |tbl: &mut LockTable, t| {
///     tbl.request(t, a, LockMode::Exclusive, StateIndex::ZERO, LockIndex::ZERO).unwrap()
/// };
/// assert_eq!(grant(&mut table, t1), RequestOutcome::Granted);
/// // T2 must wait on the exclusive holder T1…
/// assert!(matches!(grant(&mut table, t2), RequestOutcome::Wait { .. }));
/// // …and is promoted when T1 releases.
/// let promoted = table.release(t1, a).unwrap();
/// assert_eq!(promoted[0].txn, t2);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LockTable {
    entities: BTreeMap<EntityId, EntityLock>,
    /// Grant policy (fixed at construction).
    policy: GrantPolicy,
    /// Grants performed, for metrics.
    grants: u64,
    /// Wait responses issued, for metrics.
    waits: u64,
}

impl LockTable {
    /// Creates an empty lock table with the paper-faithful
    /// [`GrantPolicy::Barging`] policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty lock table with an explicit grant policy.
    pub fn with_policy(policy: GrantPolicy) -> Self {
        LockTable { policy, ..Self::default() }
    }

    /// The table's grant policy.
    pub fn policy(&self) -> GrantPolicy {
        self.policy
    }

    /// Processes a lock request per §2: grants it if no conflicting lock is
    /// held (and — under [`GrantPolicy::FairQueue`] — no incompatible
    /// request is queued), otherwise enqueues the requester and reports the
    /// blockers it must wait for.
    pub fn request(
        &mut self,
        txn: TxnId,
        entity: EntityId,
        mode: LockMode,
        requested_from_state: StateIndex,
        lock_state: LockIndex,
    ) -> Result<RequestOutcome, LockError> {
        let policy = self.policy;
        let slot = self.entities.entry(entity).or_default();
        if slot.holders.iter().any(|h| h.txn == txn) {
            return Err(LockError::AlreadyHeld { txn, entity });
        }
        if slot.queue.iter().any(|w| w.txn == txn) {
            return Err(LockError::AlreadyWaiting { txn, entity });
        }
        let mut blockers = Vec::new();
        let mut blocker_modes = Vec::new();
        for h in slot.holders.iter().filter(|h| h.txn != txn && !mode.compatible_with(h.mode)) {
            blockers.push(h.txn);
            blocker_modes.push(h.mode);
        }
        if policy.queues_fairly() {
            // The new request joins the back, so every incompatible queued
            // request is ahead of it and blocks it.
            for w in slot.queue.iter().filter(|w| !mode.compatible_with(w.mode)) {
                blockers.push(w.txn);
                blocker_modes.push(w.mode);
            }
        }
        if blockers.is_empty() {
            slot.holders.push(HeldLock { txn, mode, requested_from_state, lock_state });
            self.grants += 1;
            Ok(RequestOutcome::Granted)
        } else {
            let conflict =
                classify_conflict(mode, &blocker_modes).expect("blockers imply a conflict");
            slot.queue.push_back(WaitingRequest { txn, mode, requested_from_state, lock_state });
            self.waits += 1;
            Ok(RequestOutcome::Wait { holders: blockers, conflict })
        }
    }

    /// Releases the lock `txn` holds on `entity` and grants every waiter
    /// that is now compatible, in FIFO order. Returns the promoted
    /// requests.
    pub fn release(&mut self, txn: TxnId, entity: EntityId) -> Result<Vec<HeldLock>, LockError> {
        let slot = self.entities.get_mut(&entity).ok_or(LockError::NotHeld { txn, entity })?;
        let before = slot.holders.len();
        slot.holders.retain(|h| h.txn != txn);
        if slot.holders.len() == before {
            return Err(LockError::NotHeld { txn, entity });
        }
        let granted = Self::drain_grantable(slot, self.policy);
        self.grants += granted.len() as u64;
        if self.entities.get(&entity).is_some_and(EntityLock::is_idle) {
            self.entities.remove(&entity);
        }
        Ok(granted)
    }

    /// Cancels `txn`'s pending request on `entity` (used when a waiter is
    /// chosen as a rollback victim). Other waiters may become grantable —
    /// removing an exclusive waiter can unblock nothing under barging
    /// holder-only granting, but it routinely unblocks successors under
    /// the fair queue, and the re-scan keeps the invariant simple.
    pub fn cancel_wait(
        &mut self,
        txn: TxnId,
        entity: EntityId,
    ) -> Result<Vec<HeldLock>, LockError> {
        let slot = self.entities.get_mut(&entity).ok_or(LockError::NotWaiting { txn, entity })?;
        let before = slot.queue.len();
        slot.queue.retain(|w| w.txn != txn);
        if slot.queue.len() == before {
            return Err(LockError::NotWaiting { txn, entity });
        }
        let granted = Self::drain_grantable(slot, self.policy);
        self.grants += granted.len() as u64;
        if self.entities.get(&entity).is_some_and(EntityLock::is_idle) {
            self.entities.remove(&entity);
        }
        Ok(granted)
    }

    /// Grants queued requests that are compatible with the current holders,
    /// scanning in FIFO order. Under [`GrantPolicy::Barging`] the whole
    /// queue is scanned — per the paper's rules a compatible request never
    /// waits, so a shared waiter may be promoted past a blocked exclusive
    /// one. Under [`GrantPolicy::FairQueue`] the scan stops at the first
    /// still-blocked waiter: nobody overtakes it.
    fn drain_grantable(slot: &mut EntityLock, policy: GrantPolicy) -> Vec<HeldLock> {
        let mut granted = Vec::new();
        let mut i = 0;
        while i < slot.queue.len() {
            let w = slot.queue[i];
            if slot.incompatible_holders(w.txn, w.mode).is_empty() {
                let held = slot.queue.remove(i).expect("index in range").into_held();
                slot.holders.push(held);
                granted.push(held);
            } else if policy.queues_fairly() {
                break;
            } else {
                i += 1;
            }
        }
        granted
    }

    /// Transactions currently holding a lock on `entity`.
    pub fn holders_of(&self, entity: EntityId) -> Vec<TxnId> {
        self.entities
            .get(&entity)
            .map(|s| s.holders.iter().map(|h| h.txn).collect())
            .unwrap_or_default()
    }

    /// Full holder records for `entity`.
    pub fn holder_records(&self, entity: EntityId) -> Vec<HeldLock> {
        self.entities.get(&entity).map(|s| s.holders.clone()).unwrap_or_default()
    }

    /// The lock `txn` holds on `entity`, if any.
    pub fn held_by(&self, txn: TxnId, entity: EntityId) -> Option<HeldLock> {
        self.entities.get(&entity)?.holders.iter().find(|h| h.txn == txn).copied()
    }

    /// The pending request `txn` has on `entity`, if any.
    pub fn waiting_on(&self, txn: TxnId, entity: EntityId) -> Option<WaitingRequest> {
        let slot = self.entities.get(&entity)?;
        let pos = slot.queue_position(txn)?;
        slot.queue.get(pos).copied()
    }

    /// All pending requests on `entity`, FIFO order.
    pub fn waiters_of(&self, entity: EntityId) -> Vec<WaitingRequest> {
        self.entities.get(&entity).map(|s| s.queue.iter().copied().collect()).unwrap_or_default()
    }

    /// Current wait-queue depth for `entity`.
    pub fn queue_depth(&self, entity: EntityId) -> usize {
        self.entities.get(&entity).map(|s| s.queue.len()).unwrap_or(0)
    }

    /// The transactions currently blocking `txn`'s queued request on
    /// `entity` under the table's grant policy: the incompatible holders,
    /// plus — fair queue only — incompatible requests queued ahead of it.
    /// Empty if `txn` has no pending request there. This is the arc set
    /// the waits-for graph must carry for `txn`.
    pub fn blockers_of(&self, txn: TxnId, entity: EntityId) -> Vec<TxnId> {
        let Some(slot) = self.entities.get(&entity) else {
            return Vec::new();
        };
        let Some(pos) = slot.queue_position(txn) else {
            return Vec::new();
        };
        slot.blockers_at(pos, self.policy)
    }

    /// Number of entities with at least one holder or waiter.
    pub fn active_entities(&self) -> usize {
        self.entities.len()
    }

    /// Whether `entity` has any holder or waiter. Idle entities are
    /// garbage-collected by [`Self::release`] / [`Self::cancel_wait`], so
    /// this doubles as the *queue-flag handoff* predicate for pr-par's
    /// optimistic fast path: an inflated entity may be handed back to the
    /// lock-word path exactly when this returns `false`, because absence
    /// from the table means no grant or wakeup can be pending here.
    pub fn is_active(&self, entity: EntityId) -> bool {
        self.entities.contains_key(&entity)
    }

    /// Entities with at least one holder or waiter, in id order.
    pub fn entities(&self) -> Vec<EntityId> {
        self.entities.keys().copied().collect()
    }

    /// Forcibly evicts `entity`'s whole lock slot — holders and waiters
    /// alike — returning both so crash recovery can decide each party's
    /// fate (partial rollback past the lost lock state for survivors,
    /// re-request for waiters). Nothing is promoted: the entity's site is
    /// down, so there is no lock to grant. Idempotent — an absent entity
    /// yields two empty vectors.
    pub fn evict_entity(&mut self, entity: EntityId) -> (Vec<HeldLock>, Vec<WaitingRequest>) {
        match self.entities.remove(&entity) {
            Some(slot) => (slot.holders, slot.queue.into_iter().collect()),
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Re-installs a previously evicted grant — the lock re-assertion step
    /// of crash recovery, where a surviving holder that cannot be rolled
    /// back (its shrinking phase began) re-registers its grant from its own
    /// records. Fails if the holder is already registered or the grant
    /// would conflict with a holder installed since the eviction.
    pub fn reinstate(&mut self, entity: EntityId, held: HeldLock) -> Result<(), LockError> {
        let slot = self.entities.entry(entity).or_default();
        if slot.holders.iter().any(|h| h.txn == held.txn) {
            return Err(LockError::AlreadyHeld { txn: held.txn, entity });
        }
        if slot.holders.iter().any(|h| !held.mode.compatible_with(h.mode)) {
            return Err(LockError::AlreadyHeld { txn: held.txn, entity });
        }
        slot.holders.push(held);
        Ok(())
    }

    /// Total grants issued so far.
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Total wait responses issued so far.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Internal invariant check for tests: no transaction both holds and
    /// waits on the same entity; every holder set is mode-consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (entity, slot) in &self.entities {
            let exclusive = slot.holders.iter().filter(|h| h.mode == LockMode::Exclusive).count();
            if exclusive > 1 {
                return Err(format!("{entity}: multiple exclusive holders"));
            }
            if exclusive == 1 && slot.holders.len() > 1 {
                return Err(format!("{entity}: exclusive holder coexists with others"));
            }
            for (pos, w) in slot.queue.iter().enumerate() {
                if slot.holders.iter().any(|h| h.txn == w.txn) {
                    return Err(format!("{entity}: {} both holds and waits", w.txn));
                }
                // A waiter must be blocked by a holder — or, fair queue
                // only, by an incompatible request queued ahead of it.
                if slot.blockers_at(pos, self.policy).is_empty() {
                    return Err(format!("{entity}: grantable request left waiting"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn req(
        tbl: &mut LockTable,
        txn: u32,
        ent: u32,
        mode: LockMode,
    ) -> Result<RequestOutcome, LockError> {
        tbl.request(t(txn), e(ent), mode, StateIndex::new(0), LockIndex::new(0))
    }

    #[test]
    fn exclusive_then_exclusive_waits() {
        let mut tbl = LockTable::new();
        assert_eq!(req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap(), RequestOutcome::Granted);
        match req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap() {
            RequestOutcome::Wait { holders, conflict } => {
                assert_eq!(holders, vec![t(1)]);
                assert_eq!(conflict, ConflictType::Type2);
            }
            other => panic!("expected wait, got {other:?}"),
        }
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_coexist() {
        let mut tbl = LockTable::new();
        assert_eq!(req(&mut tbl, 1, 0, LockMode::Shared).unwrap(), RequestOutcome::Granted);
        assert_eq!(req(&mut tbl, 2, 0, LockMode::Shared).unwrap(), RequestOutcome::Granted);
        assert_eq!(tbl.holders_of(e(0)), vec![t(1), t(2)]);
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_request_waits_on_all_shared_holders() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Shared).unwrap();
        req(&mut tbl, 2, 0, LockMode::Shared).unwrap();
        match req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap() {
            RequestOutcome::Wait { holders, conflict } => {
                assert_eq!(holders, vec![t(1), t(2)]);
                assert_eq!(conflict, ConflictType::Type2);
            }
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn shared_request_vs_exclusive_holder_is_type1() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        match req(&mut tbl, 2, 0, LockMode::Shared).unwrap() {
            RequestOutcome::Wait { holders, conflict } => {
                assert_eq!(holders, vec![t(1)]);
                assert_eq!(conflict, ConflictType::Type1);
            }
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn release_promotes_fifo_waiter() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap();
        let granted = tbl.release(t(1), e(0)).unwrap();
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].txn, t(2));
        assert_eq!(tbl.holders_of(e(0)), vec![t(2)]);
        assert!(tbl.waiting_on(t(3), e(0)).is_some());
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn release_promotes_shared_batch() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Shared).unwrap();
        req(&mut tbl, 3, 0, LockMode::Shared).unwrap();
        let granted = tbl.release(t(1), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(2), t(3)]);
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn shared_waiter_passes_blocked_exclusive_waiter() {
        // Paper semantics: compatible requests are granted regardless of
        // queue order. S2 holds shared; X3 waits; S4's request is granted
        // immediately despite X3 waiting.
        let mut tbl = LockTable::new();
        req(&mut tbl, 2, 0, LockMode::Shared).unwrap();
        assert!(matches!(
            req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap(),
            RequestOutcome::Wait { .. }
        ));
        assert_eq!(req(&mut tbl, 4, 0, LockMode::Shared).unwrap(), RequestOutcome::Granted);
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn cancel_wait_removes_pending_request() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        let granted = tbl.cancel_wait(t(2), e(0)).unwrap();
        assert!(granted.is_empty());
        assert!(tbl.waiting_on(t(2), e(0)).is_none());
        // Releasing now grants nobody.
        assert!(tbl.release(t(1), e(0)).unwrap().is_empty());
        assert_eq!(tbl.active_entities(), 0);
    }

    #[test]
    fn cancelling_blocked_exclusive_lets_release_grant_shared() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 3, 0, LockMode::Shared).unwrap();
        tbl.cancel_wait(t(2), e(0)).unwrap();
        let granted = tbl.release(t(1), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(3)]);
    }

    #[test]
    fn double_request_and_bad_release_error() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Shared).unwrap();
        assert_eq!(
            req(&mut tbl, 1, 0, LockMode::Shared),
            Err(LockError::AlreadyHeld { txn: t(1), entity: e(0) })
        );
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        assert_eq!(
            req(&mut tbl, 2, 0, LockMode::Exclusive),
            Err(LockError::AlreadyWaiting { txn: t(2), entity: e(0) })
        );
        assert_eq!(tbl.release(t(3), e(0)), Err(LockError::NotHeld { txn: t(3), entity: e(0) }));
        assert_eq!(
            tbl.cancel_wait(t(3), e(0)),
            Err(LockError::NotWaiting { txn: t(3), entity: e(0) })
        );
        assert_eq!(
            tbl.cancel_wait(t(3), e(9)),
            Err(LockError::NotWaiting { txn: t(3), entity: e(9) })
        );
    }

    #[test]
    fn metadata_travels_from_request_to_grant() {
        let mut tbl = LockTable::new();
        tbl.request(t(1), e(0), LockMode::Exclusive, StateIndex::new(5), LockIndex::new(2))
            .unwrap();
        tbl.request(t(2), e(0), LockMode::Exclusive, StateIndex::new(8), LockIndex::new(3))
            .unwrap();
        let held = tbl.held_by(t(1), e(0)).unwrap();
        assert_eq!(held.requested_from_state, StateIndex::new(5));
        assert_eq!(held.lock_state, LockIndex::new(2));
        let granted = tbl.release(t(1), e(0)).unwrap();
        assert_eq!(granted[0].requested_from_state, StateIndex::new(8));
        assert_eq!(granted[0].lock_state, LockIndex::new(3));
    }

    #[test]
    fn counters_track_grants_and_waits() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        tbl.release(t(1), e(0)).unwrap();
        assert_eq!(tbl.grant_count(), 2);
        assert_eq!(tbl.wait_count(), 1);
    }

    #[test]
    fn idle_entities_are_garbage_collected() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Shared).unwrap();
        req(&mut tbl, 1, 1, LockMode::Shared).unwrap();
        assert_eq!(tbl.active_entities(), 2);
        tbl.release(t(1), e(0)).unwrap();
        tbl.release(t(1), e(1)).unwrap();
        assert_eq!(tbl.active_entities(), 0);
    }

    #[test]
    fn fair_queue_refuses_shared_grant_behind_exclusive_waiter() {
        // Mirror of `shared_waiter_passes_blocked_exclusive_waiter`: with
        // the fair queue, S4 queues behind X3 instead of barging, and its
        // wait arcs point at the queued X3, not at any holder.
        let mut tbl = LockTable::with_policy(GrantPolicy::FairQueue);
        req(&mut tbl, 2, 0, LockMode::Shared).unwrap();
        assert!(matches!(
            req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap(),
            RequestOutcome::Wait { .. }
        ));
        match req(&mut tbl, 4, 0, LockMode::Shared).unwrap() {
            RequestOutcome::Wait { holders, conflict } => {
                assert_eq!(holders, vec![t(3)]);
                assert_eq!(conflict, ConflictType::Type1);
            }
            other => panic!("expected wait, got {other:?}"),
        }
        assert_eq!(tbl.blockers_of(t(4), e(0)), vec![t(3)]);
        assert_eq!(tbl.blockers_of(t(3), e(0)), vec![t(2)]);
        assert_eq!(tbl.queue_depth(e(0)), 2);
        tbl.check_invariants().unwrap();
        // S2 releases: X3 is promoted alone; S4 stays queued behind it.
        let granted = tbl.release(t(2), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(3)]);
        assert_eq!(tbl.blockers_of(t(4), e(0)), vec![t(3)]);
        tbl.check_invariants().unwrap();
        // X3 releases: now S4 gets the lock.
        let granted = tbl.release(t(3), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(4)]);
    }

    #[test]
    fn fair_queue_drain_stops_at_blocked_front_waiter() {
        // Queue [X2, S3] behind holder X1: releasing X1 promotes only X2;
        // the drain stops at S3, which is incompatible with new holder X2.
        let mut tbl = LockTable::with_policy(GrantPolicy::FairQueue);
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 3, 0, LockMode::Shared).unwrap();
        let granted = tbl.release(t(1), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(2)]);
        assert!(tbl.waiting_on(t(3), e(0)).is_some());
        tbl.check_invariants().unwrap();
    }

    /// Regression for the writer-starvation bug: a continuous stream of
    /// overlapping shared requesters starves one exclusive waiter forever
    /// under `Barging`, but the waiter is granted within a small bounded
    /// number of rounds under `FairQueue`.
    #[test]
    fn continuous_shared_stream_starves_writer_only_under_barging() {
        // One round = a fresh shared requester arrives, then the oldest
        // shared holder releases. The reader population never drops to
        // zero, so under barging the exclusive waiter never sees an empty
        // holder set.
        let writer = 1000u32;
        let rounds = 200u32;
        let run = |policy: GrantPolicy| -> Option<u32> {
            let mut tbl = LockTable::with_policy(policy);
            req(&mut tbl, 1, 0, LockMode::Shared).unwrap();
            assert!(matches!(
                req(&mut tbl, writer, 0, LockMode::Exclusive).unwrap(),
                RequestOutcome::Wait { .. }
            ));
            let mut live: VecDeque<u32> = VecDeque::from([1]);
            for round in 0..rounds {
                let newcomer = 2 + round;
                let _ = req(&mut tbl, newcomer, 0, LockMode::Shared).unwrap();
                if tbl.held_by(t(newcomer), e(0)).is_some() {
                    live.push_back(newcomer);
                }
                let oldest = live.pop_front().expect("stream keeps at least one reader");
                for h in tbl.release(t(oldest), e(0)).unwrap() {
                    if h.txn == t(writer) {
                        return Some(round);
                    }
                    live.push_back(h.txn.raw());
                }
                tbl.check_invariants().unwrap();
            }
            None
        };
        assert_eq!(run(GrantPolicy::Barging), None, "barging must starve the writer");
        let granted_at = run(GrantPolicy::FairQueue).expect("fair queue must grant the writer");
        assert!(granted_at <= 1, "writer granted in round {granted_at}, expected ≤ 1");
    }

    #[test]
    fn evict_entity_returns_holders_and_waiters_without_promotion() {
        let mut tbl = LockTable::new();
        req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 1, 1, LockMode::Shared).unwrap();
        assert_eq!(tbl.entities(), vec![e(0), e(1)]);
        let (holders, waiters) = tbl.evict_entity(e(0));
        assert_eq!(holders.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(1)]);
        assert_eq!(waiters.iter().map(|w| w.txn).collect::<Vec<_>>(), vec![t(2)]);
        // The slot is gone entirely; nobody was promoted into it.
        assert_eq!(tbl.holders_of(e(0)), Vec::new());
        assert_eq!(tbl.active_entities(), 1);
        tbl.check_invariants().unwrap();
        // Idempotent on a missing entity.
        let (h2, w2) = tbl.evict_entity(e(0));
        assert!(h2.is_empty() && w2.is_empty());
    }

    /// FIFO order must survive a mid-queue abort: with holder X1 and
    /// queue [X2, X3, X4], cancelling X3 (a rollback victim) must leave
    /// the survivors' relative order intact — X2 is promoted first, then
    /// X4 — under both grant policies. Pins the behaviour of the shared
    /// queue-position helper after a `retain` reshuffles indices.
    #[test]
    fn fifo_order_survives_mid_queue_abort() {
        for policy in [GrantPolicy::Barging, GrantPolicy::FairQueue, GrantPolicy::Ordered] {
            let mut tbl = LockTable::with_policy(policy);
            req(&mut tbl, 1, 0, LockMode::Exclusive).unwrap();
            req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
            req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap();
            req(&mut tbl, 4, 0, LockMode::Exclusive).unwrap();
            // Mid-queue abort: X3 is cancelled; nothing becomes grantable
            // (X1 still holds), and the survivors close ranks.
            assert!(tbl.cancel_wait(t(3), e(0)).unwrap().is_empty());
            assert_eq!(
                tbl.waiters_of(e(0)).iter().map(|w| w.txn).collect::<Vec<_>>(),
                vec![t(2), t(4)],
                "{policy:?}: survivors must keep FIFO order"
            );
            // The blocker sets reflect the compacted queue: X2 waits only
            // on the holder; X4 waits on the holder (barging) or on the
            // holder *and* X2 (fair queue).
            assert_eq!(tbl.blockers_of(t(2), e(0)), vec![t(1)]);
            let x4_blockers = tbl.blockers_of(t(4), e(0));
            match policy {
                GrantPolicy::Barging => assert_eq!(x4_blockers, vec![t(1)]),
                GrantPolicy::FairQueue | GrantPolicy::Ordered => {
                    assert_eq!(x4_blockers, vec![t(1), t(2)])
                }
            }
            tbl.check_invariants().unwrap();
            // Promotions proceed strictly in surviving FIFO order.
            let granted = tbl.release(t(1), e(0)).unwrap();
            assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(2)]);
            let granted = tbl.release(t(2), e(0)).unwrap();
            assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(4)]);
            tbl.check_invariants().unwrap();
        }
    }

    #[test]
    fn ordered_policy_queues_fairly_at_the_table() {
        // `Ordered` adds engine-side semantics (certificate fast path);
        // at the lock table it must behave exactly like the fair queue:
        // S4 queues behind the blocked X3 instead of barging past it.
        let mut tbl = LockTable::with_policy(GrantPolicy::Ordered);
        assert!(GrantPolicy::Ordered.queues_fairly());
        assert_eq!(GrantPolicy::Ordered.name(), "ordered");
        req(&mut tbl, 2, 0, LockMode::Shared).unwrap();
        assert!(matches!(
            req(&mut tbl, 3, 0, LockMode::Exclusive).unwrap(),
            RequestOutcome::Wait { .. }
        ));
        assert!(matches!(
            req(&mut tbl, 4, 0, LockMode::Shared).unwrap(),
            RequestOutcome::Wait { .. }
        ));
        assert_eq!(tbl.blockers_of(t(4), e(0)), vec![t(3)]);
        let granted = tbl.release(t(2), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(3)]);
        tbl.check_invariants().unwrap();
    }

    #[test]
    fn fair_queue_cancel_of_blocking_waiter_unblocks_successors() {
        // Holder S1, queue [X2, S3]: cancelling X2 must promote S3 even
        // though no lock was released.
        let mut tbl = LockTable::with_policy(GrantPolicy::FairQueue);
        req(&mut tbl, 1, 0, LockMode::Shared).unwrap();
        req(&mut tbl, 2, 0, LockMode::Exclusive).unwrap();
        req(&mut tbl, 3, 0, LockMode::Shared).unwrap();
        let granted = tbl.cancel_wait(t(2), e(0)).unwrap();
        assert_eq!(granted.iter().map(|h| h.txn).collect::<Vec<_>>(), vec![t(3)]);
        tbl.check_invariants().unwrap();
    }
}
