//! # pr-lock — lock manager substrate
//!
//! A shared/exclusive lock table implementing the response rules of §2:
//!
//! 1. a request is **granted** when no *conflicting* lock is held on the
//!    entity (shared requests coexist with shared holders, as §3.2's
//!    examples require);
//! 2. otherwise the requester **waits** on the set of incompatible holders —
//!    exactly the arcs of the paper's concurrency (waits-for) graph;
//! 3. deadlock handling (rule 3) is the caller's job: the engine in
//!    `pr-core` consults `pr-graph` and rolls somebody back.
//!
//! Waiters are kept in FIFO order per entity and re-examined at every
//! release or wait-cancellation; a waiter is granted as soon as it is
//! compatible with the then-current holders. Like the paper (§3.1, which
//! explicitly leaves "unfair scheduling" out of scope) the table does not
//! attempt anti-starvation queue-jump prevention — a shared request may be
//! granted past a blocked exclusive waiter.
//!
//! Each held lock remembers the state index from which it was requested and
//! the lock index of its lock state: precisely the bookkeeping §3.1 needs
//! to price a rollback ("if the system maintains for each locked entity A
//! the index of the last state … then the system can easily compute this
//! cost function").

pub mod conflict;
pub mod error;
pub mod table;

pub use conflict::{classify_conflict, ConflictType};
pub use error::LockError;
pub use table::{HeldLock, LockTable, RequestOutcome, WaitingRequest};
