//! # pr-lock — lock manager substrate
//!
//! A shared/exclusive lock table implementing the response rules of §2:
//!
//! 1. a request is **granted** when no *conflicting* lock is held on the
//!    entity (shared requests coexist with shared holders, as §3.2's
//!    examples require);
//! 2. otherwise the requester **waits** on the set of incompatible holders —
//!    exactly the arcs of the paper's concurrency (waits-for) graph;
//! 3. deadlock handling (rule 3) is the caller's job: the engine in
//!    `pr-core` consults `pr-graph` and rolls somebody back.
//!
//! Waiters are kept in FIFO order per entity and re-examined at every
//! release or wait-cancellation. Granting is governed by a
//! [`GrantPolicy`]: under the default [`GrantPolicy::Barging`] a waiter is
//! granted as soon as it is compatible with the then-current holders —
//! like the paper (§3.1, which explicitly leaves "unfair scheduling" out
//! of scope), a shared request may be granted past a blocked exclusive
//! waiter, so a steady reader stream starves writers.
//! [`GrantPolicy::FairQueue`] closes that hole: a request is refused while
//! any incompatible request is queued ahead of it, and promotion proceeds
//! strictly from the queue front, bounding every waiter's wait by the
//! queue ahead of it. [`GrantPolicy::Ordered`] keeps the fair queue's
//! grant semantics and pairs them with a certified total acquisition
//! order (the [`order`] module) under which deadlock detection can be
//! skipped entirely for covered transactions.
//!
//! Each held lock remembers the state index from which it was requested and
//! the lock index of its lock state: precisely the bookkeeping §3.1 needs
//! to price a rollback ("if the system maintains for each locked entity A
//! the index of the last state … then the system can easily compute this
//! cost function").

pub mod conflict;
pub mod error;
pub mod order;
pub mod table;

pub use conflict::{classify_conflict, ConflictType};
pub use error::LockError;
pub use order::{derive_order, EntityOrder, PrecedenceCycle};
pub use table::{GrantPolicy, HeldLock, LockTable, RequestOutcome, WaitingRequest};
