//! End-to-end server tests over real sockets: an in-process
//! [`Server`], real TCP connections, the full wire protocol, and the
//! post-run serializability oracle — the same stack `pr-load` drives,
//! shrunk to test size.

use pr_model::{EntityId, Expr, Op, Value, VarId};
use pr_server::load::oracle_check;
use pr_server::wire::AbortReason;
use pr_server::{run_load, Client, LoadConfig, Reply, Server, ServerConfig};
use std::time::Duration;

fn start_server(entities: u32, batch_deadline: Duration) -> (Server, String) {
    let config = ServerConfig { entities, batch_deadline, threads: 2, ..ServerConfig::default() };
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// `LX(e); read; write back +delta; unlock; commit` — a delta-additive
/// increment, the same shape the workload generator emits.
fn increment(entity: u32, delta: i64) -> Vec<Op> {
    let e = EntityId::new(entity);
    vec![
        Op::LockExclusive(e),
        Op::Read { entity: e, into: VarId::new(0) },
        Op::Write {
            entity: e,
            expr: Expr::add(Expr::Var(VarId::new(0)), Expr::Const(Value::new(delta))),
        },
        Op::Unlock(e),
        Op::Commit,
    ]
}

#[test]
fn submit_commit_stats_history_round_trip() {
    let (server, addr) = start_server(16, Duration::from_millis(1));
    let mut c = Client::connect(&addr).expect("connect");

    // Pipeline a few increments, then collect the replies.
    let n = 8u64;
    for i in 0..n {
        c.submit(increment((i % 4) as u32, 1)).expect("submit");
    }
    let mut committed = 0;
    for _ in 0..n {
        match c.recv().expect("recv").expect("decode") {
            Reply::Committed { .. } => committed += 1,
            other => panic!("expected Committed, got {other:?}"),
        }
    }
    assert_eq!(committed, n);

    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"schema\":\"pr-server-metrics-v1\""), "stats: {stats}");
    assert!(stats.contains("\"commits\":8"), "stats: {stats}");

    let (accesses, snapshot) = c.history().expect("history");
    assert_eq!(accesses.len(), n as usize, "one access per single-entity txn");
    // Each of entities 0..4 took two +1 increments on top of init 100.
    let by_entity: std::collections::BTreeMap<u32, i64> =
        snapshot.iter().map(|&(e, v)| (e.raw(), v)).collect();
    for e in 0..4 {
        assert_eq!(by_entity[&e], 102, "entity {e}");
    }

    let commits = c.shutdown().expect("shutdown");
    assert_eq!(commits, n);
    let summary = server.wait().expect("quiescent drain");
    assert_eq!(summary.commits, n);
}

#[test]
fn graceful_shutdown_drains_in_flight_transactions() {
    // A long deadline and a large batch keep every submission queued
    // (in flight) when the shutdown request lands behind them.
    let (server, addr) = start_server(16, Duration::from_secs(10));
    let mut c = Client::connect(&addr).expect("connect");

    let n = 20u64;
    for i in 0..n {
        c.submit(increment((i % 8) as u32, 1)).expect("submit");
    }
    // Same connection, so all submissions reach the batcher first: the
    // drain must execute them all, then ack.
    c.send(&pr_server::Request::Shutdown).expect("send shutdown");

    let mut committed = 0;
    let mut acked = false;
    for _ in 0..=n {
        match c.recv().expect("recv").expect("decode") {
            Reply::Committed { .. } => {
                assert!(!acked, "no commit may follow the shutdown ack");
                committed += 1;
            }
            Reply::ShutdownAck { commits } => {
                assert_eq!(commits, n);
                acked = true;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(committed, n, "every queued submission must drain");
    assert!(acked);

    // wait() returns only after Session::finish() asserted EntitySlab
    // quiescence — a wedged lock queue would surface here as Err.
    let summary = server.wait().expect("slab must be quiescent after drain");
    assert_eq!(summary.commits, n);
}

#[test]
fn submissions_after_shutdown_are_aborted_not_dropped() {
    let (server, addr) = start_server(16, Duration::from_millis(1));
    let mut straggler = Client::connect(&addr).expect("connect");
    let mut closer = Client::connect(&addr).expect("connect");

    assert_eq!(closer.shutdown().expect("shutdown"), 0);

    // The straggler's reader thread is still alive; its submission must
    // draw an explicit shutdown abort, not silence.
    let id = straggler.submit(increment(0, 1)).expect("submit");
    match straggler.recv().expect("recv").expect("decode") {
        Reply::Aborted { request_id, reason } => {
            assert_eq!(request_id, id);
            assert_eq!(reason, AbortReason::Shutdown);
        }
        other => panic!("expected shutdown abort, got {other:?}"),
    }
    server.wait().expect("drain");
}

#[test]
fn invalid_and_out_of_universe_programs_are_rejected() {
    let (server, addr) = start_server(8, Duration::from_millis(1));
    let mut c = Client::connect(&addr).expect("connect");

    // Write without an exclusive lock: fails program validation.
    let id = c
        .submit(vec![
            Op::Write { entity: EntityId::new(0), expr: Expr::Const(Value::new(1)) },
            Op::Commit,
        ])
        .expect("submit");
    match c.recv().expect("recv").expect("decode") {
        Reply::Aborted { request_id, reason } => {
            assert_eq!(request_id, id);
            assert_eq!(reason, AbortReason::Invalid);
        }
        other => panic!("expected invalid abort, got {other:?}"),
    }

    // Well-formed program, but entity 100 is outside the 8-entity
    // universe: rejected at admission, before it can poison a batch.
    let id = c.submit(increment(100, 1)).expect("submit");
    match c.recv().expect("recv").expect("decode") {
        Reply::Aborted { request_id, reason } => {
            assert_eq!(request_id, id);
            assert_eq!(reason, AbortReason::Invalid);
        }
        other => panic!("expected invalid abort, got {other:?}"),
    }

    // The connection survives rejections; a valid submission still lands.
    c.submit(increment(3, 1)).expect("submit");
    assert!(matches!(c.recv().expect("recv").expect("decode"), Reply::Committed { .. }));

    c.shutdown().expect("shutdown");
    server.wait().expect("drain");
}

#[test]
fn malformed_frame_draws_error_and_close() {
    let (server, addr) = start_server(8, Duration::from_millis(1));
    let mut c = Client::connect(&addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    c.send_raw(&[1, 0, 0, 0, 0x7F]).expect("send garbage tag");
    match c.recv().expect("recv") {
        Ok(Reply::Error { code: 2, .. }) => {}
        other => panic!("expected protocol error 2, got {other:?}"),
    }
    match c.recv() {
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {}
        other => panic!("expected close after protocol error, got {other:?}"),
    }

    // The server is unaffected: a fresh connection commits normally.
    let mut c2 = Client::connect(&addr).expect("connect");
    c2.submit(increment(0, 1)).expect("submit");
    assert!(matches!(c2.recv().expect("recv").expect("decode"), Reply::Committed { .. }));
    c2.shutdown().expect("shutdown");
    server.wait().expect("drain");
}

/// The whole tentpole in one test: closed-loop load over real sockets,
/// then the differential oracle over the server-reported history.
#[test]
fn closed_loop_load_is_serializable() {
    let (server, addr) = start_server(64, Duration::from_millis(1));
    let cfg = LoadConfig {
        addr,
        clients: 24,
        txns_per_client: 3,
        entities: 64,
        zipf_centi: 120,
        think_us: 100,
        clients_per_conn: 8,
        ..LoadConfig::default()
    };
    let result = run_load(&cfg).expect("load");
    assert_eq!(result.commits, 72);
    assert_eq!(result.aborted, 0);
    assert_eq!(result.latency.count(), 72);

    let mut ctl = Client::connect(&cfg.addr).expect("connect");
    let (accesses, snapshot) = ctl.history().expect("history");
    let report = oracle_check(&cfg, &result.mapping, &accesses, &snapshot).expect("oracle green");
    assert_eq!(report.txns, 72);
    assert!(report.accesses > 0);

    assert_eq!(ctl.shutdown().expect("shutdown"), 72);
    server.wait().expect("drain");
}
