//! The seeded crash matrix: drive the real engine + journal to a
//! deterministic byte-budget failpoint at *every* record boundary the log
//! contains (plus mid-record offsets that tear a frame in half, plus
//! budget 0 — a crash before the first byte), then recover from the
//! surviving image and assert the durability contract via
//! [`pr_server::crashsim::check_crash_case`]:
//!
//! * acknowledged ⇒ replayed, within the flush policy's loss window;
//! * recovery is all-or-nothing per batch and idempotent;
//! * a graceful drain loses nothing under any policy.
//!
//! The full boundary sweep runs under `per-batch` (the strict policy);
//! `every-N`, `off`, the Ordered grant policy, and a two-thread engine
//! each get a coarser sweep. The battery asserts it exercised at least
//! 100 distinct crash cases, the acceptance floor for this invariant.

use pr_core::{GrantPolicy, SystemConfig};
use pr_server::crashsim::{check_crash_case, record_boundaries, run_to_crash, SimConfig};
use pr_storage::wal::{FlushPolicy, MemDir};

/// Dry-runs `cfg` with no failpoint and returns every record-boundary
/// offset plus the total log size — the coordinates of the crash sweep.
fn survey(cfg: &SimConfig) -> (Vec<u64>, u64) {
    let dry = MemDir::new();
    let trace = run_to_crash(cfg, &dry).expect("dry run must complete");
    assert!(!trace.crashed, "dry run has no failpoint");
    assert!(!trace.acked.is_empty(), "dry run must acknowledge batches");
    let bounds = record_boundaries(&dry).expect("dry log must decode");
    assert!(!bounds.is_empty());
    (bounds, dry.persisted_bytes())
}

/// Checks one (budget, lose_unsynced) grid over `cfg`, panicking with the
/// harness's reproduction message on any contract violation. Returns the
/// number of crash cases checked.
fn sweep(cfg: &SimConfig, budgets: &[u64], lose_unsynced: &[bool]) -> usize {
    let mut cases = 0;
    for &budget in budgets {
        for &lose in lose_unsynced {
            check_crash_case(cfg, budget, lose).unwrap_or_else(|e| {
                panic!("durability contract violated: {e}");
            });
            cases += 1;
        }
    }
    cases
}

#[test]
fn crash_matrix_proves_durability_at_every_record_boundary() {
    let mut total_cases = 0;

    // --- per-batch: the strict policy gets the exhaustive sweep ---------
    // Every record boundary, plus offsets 3 bytes before and after each
    // (tearing the previous frame's payload / the next frame's header),
    // plus budget 0 and one budget past the end (the failpoint never
    // fires — the graceful-drain case).
    let per_batch = SimConfig::default();
    let (bounds, log_len) = survey(&per_batch);
    let mut budgets = vec![0, log_len + 64];
    for &b in &bounds {
        budgets.push(b);
        budgets.push(b.saturating_sub(3));
        budgets.push(b + 3);
    }
    budgets.sort_unstable();
    budgets.dedup();
    total_cases += sweep(&per_batch, &budgets, &[false, true]);

    // --- every-N: bounded loss window, boundary sweep -------------------
    let every_n = SimConfig { flush: FlushPolicy::EveryN(4), ..SimConfig::default() };
    let (bounds, _) = survey(&every_n);
    total_cases += sweep(&every_n, &bounds, &[false, true]);

    // --- off: no fsync until drain; only synced bytes are promised ------
    let off = SimConfig { flush: FlushPolicy::Off, ..SimConfig::default() };
    let (bounds, _) = survey(&off);
    let coarse: Vec<u64> = bounds.iter().copied().step_by(2).collect();
    total_cases += sweep(&off, &coarse, &[false, true]);

    // --- Ordered grant policy: different commit interleavings -----------
    let system = SystemConfig { grant_policy: GrantPolicy::Ordered, ..SystemConfig::default() };
    let ordered = SimConfig { system, seed: 7, ..SimConfig::default() };
    let (bounds, _) = survey(&ordered);
    let coarse: Vec<u64> = bounds.iter().copied().step_by(2).collect();
    total_cases += sweep(&ordered, &coarse, &[true]);

    // --- two engine threads: non-deterministic scheduling ----------------
    // (the harness records its own run as ground truth, so the check is
    // sound even though each run may commit in a different order).
    let threaded = SimConfig { threads: 2, seed: 11, ..SimConfig::default() };
    let (bounds, _) = survey(&threaded);
    let coarse: Vec<u64> = bounds.iter().copied().step_by(3).collect();
    total_cases += sweep(&threaded, &coarse, &[true]);

    assert!(
        total_cases >= 100,
        "crash battery must cover >= 100 seeded crash cases, got {total_cases}"
    );
    println!("crash matrix: {total_cases} cases green");
}

/// Tiny segments force rotation mid-run; crashes at rotation edges must
/// not break replay ordering across segment files.
#[test]
fn crash_matrix_survives_segment_rotation() {
    let cfg = SimConfig { segment_max: 512, txns: 48, batch: 6, seed: 3, ..SimConfig::default() };
    let (bounds, _) = survey(&cfg);
    let cases = sweep(&cfg, &bounds, &[false, true]);
    assert!(cases >= 10, "rotation sweep too small: {cases}");
}
