//! The real-crash end of the durability battery: SIGKILL an actual
//! `pr-server` process mid-load, restart it with `--recover`, and prove
//! over the wire that
//!
//! * every transaction a client saw `COMMITTED` before the kill is in the
//!   recovered state (per-batch flush ⇒ zero loss), and
//! * the recovered server resumes the dead process's txn-id/stamp clocks,
//!   so the union of pre-crash durable history and post-crash load passes
//!   the differential serializability oracle as one history.
//!
//! The WAL's request ids are the bridge: each batch record stores the
//! submitters' request ids (`seq << 32 | global_client_id`), so the test
//! regenerates the exact program behind every durable transaction —
//! including durable-but-unacknowledged ones the kill ate the replies
//! for — without any server cooperation.
//!
//! A second test covers the graceful path: under `--wal-flush off`
//! (no fsync at all during the run) a drain-then-restart still loses
//! nothing, because the drain protocol syncs before `SHUTDOWN_ACK`.

use pr_server::load::{client_programs, oracle_check};
use pr_server::{run_load, Client, DurabilityConfig, LoadConfig, Server, ServerConfig};
use pr_storage::wal::{replay, FlushPolicy, FsDir};
use std::collections::HashSet;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pr-kill-recover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the real pr-server binary and scrapes the bound address from
/// its `pr-server listening on ADDR …` line. The returned reader keeps
/// the stdout pipe open for the child's lifetime.
fn spawn_server(extra: &[&str]) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pr-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--entities",
            "64",
            "--init",
            "100",
            "--threads",
            "2",
            "--batch-max",
            "8",
            "--batch-deadline-us",
            "500",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn pr-server");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read pr-server stdout") == 0 {
            panic!("pr-server exited before printing its listening line");
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().expect("address token").to_string();
        }
    };
    (child, reader, addr)
}

/// Polls `STATS` until the server has committed at least `want`
/// transactions (or the load has simply finished). Returns the last
/// observed commit count.
fn wait_for_commits(addr: &str, want: u64) -> u64 {
    let mut c = Client::connect(addr).expect("control connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = c.stats().expect("stats");
        let commits = json_u64(&stats, "commits");
        if commits >= want {
            return commits;
        }
        assert!(Instant::now() < deadline, "server never reached {want} commits: {stats}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Pulls an integer field out of the hand-rolled metrics JSON.
fn json_u64(json: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let rest =
        &json[json.find(&key).unwrap_or_else(|| panic!("no {field} in {json}")) + key.len()..];
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("int field")
}

/// Decodes the durable prefix straight off the on-disk WAL and returns
/// the oracle mapping `(txn, global client, client-local seq)` for every
/// durable transaction — the request ids logged per batch carry `(g,
/// seq)`, and replies (hence txn ids) are issued in request-id order
/// within each batch.
fn durable_mapping(dir: &PathBuf) -> Vec<(u32, u32, u32)> {
    let fs = FsDir::open(dir).expect("open wal dir");
    let outcome = replay(&fs).expect("replay wal");
    let mut mapping = Vec::new();
    for batch in &outcome.batches {
        for (j, rid) in batch.request_ids.iter().enumerate() {
            let txn = batch.txn_base + 1 + j as u32;
            let g = (rid & 0xFFFF_FFFF) as u32;
            let seq = (rid >> 32) as u32;
            mapping.push((txn, g, seq));
        }
    }
    mapping
}

#[test]
fn sigkill_mid_load_recovers_every_acked_txn() {
    let wal = temp_wal_dir("sigkill");
    let wal_arg = wal.to_str().expect("utf-8 temp path").to_string();

    // --- phase 1: load against a durable server, then SIGKILL it -------
    let (mut child, _out, addr) = spawn_server(&["--wal", &wal_arg, "--wal-flush", "per-batch"]);
    let phase1 = LoadConfig {
        addr: addr.clone(),
        clients: 32,
        txns_per_client: 8,
        entities: 64,
        init: 100,
        zipf_centi: 120,
        think_us: 300,
        clients_per_conn: 16,
        seed: 42,
        client_base: 0,
        tolerate_disconnect: true,
    };
    let load = {
        let cfg = phase1.clone();
        std::thread::spawn(move || run_load(&cfg).expect("tolerant load must not error"))
    };
    wait_for_commits(&addr, 48);
    child.kill().expect("SIGKILL pr-server");
    child.wait().expect("reap");
    let acked = load.join().expect("load thread");
    assert!(acked.commits >= 48, "driver saw {} acks before the kill", acked.commits);

    // --- the durable prefix, read straight off disk --------------------
    let wal_map = durable_mapping(&wal);
    let durable: HashSet<(u32, u32, u32)> = wal_map.iter().copied().collect();
    assert_eq!(durable.len(), wal_map.len(), "wal mapping has duplicates");
    // Per-batch flush: acknowledged ⇒ durable, no exceptions. (The
    // converse can be false — the kill may have eaten COMMITTED replies
    // for durable transactions; the oracle below covers those too.)
    for entry in &acked.mapping {
        assert!(
            durable.contains(entry),
            "txn {} (client {}, seq {}) was acknowledged COMMITTED but is not in the \
             durable log — the write-ahead invariant is broken",
            entry.0,
            entry.1,
            entry.2
        );
    }

    // --- phase 2: recover, serve more load, oracle the union -----------
    let (mut child2, _out2, addr2) =
        spawn_server(&["--recover", &wal_arg, "--wal-flush", "per-batch"]);
    let mut control = Client::connect(&addr2).expect("connect recovered server");
    control.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let stats = control.stats().expect("stats");
    assert_eq!(
        json_u64(&stats, "txns_recovered"),
        wal_map.len() as u64,
        "recovered txn count must match the durable prefix: {stats}"
    );

    let phase2 = LoadConfig {
        addr: addr2.clone(),
        clients: 16,
        txns_per_client: 8,
        think_us: 0,
        clients_per_conn: 8,
        client_base: 1000, // disjoint global client ids from phase 1
        tolerate_disconnect: false,
        ..phase1.clone()
    };
    let post = run_load(&phase2).expect("post-recovery load");
    assert_eq!(post.commits, 16 * 8, "recovered server must serve a full clean run");

    // Union history over the wire: recovered accesses + phase-2 accesses,
    // one snapshot. The mapping unions the WAL-derived prefix (which
    // includes durable-but-unacked txns) with phase 2's acks; the oracle
    // rejects any gap or overlap in txn ids, so this also proves the
    // recovered server resumed the txn-id clock exactly.
    let (accesses, snapshot) = control.history().expect("history");
    let mut union = wal_map;
    union.extend_from_slice(&post.mapping);
    let report = oracle_check(&phase1, &union, &accesses, &snapshot)
        .expect("union of durable prefix and post-crash load must serialize");
    assert_eq!(report.txns, union.len());

    // Sanity: the regenerated programs behind the durable prefix are the
    // ones the driver actually submitted (same generator, same seed).
    let sample = union[0];
    let regen = client_programs(phase1.seed, phase1.entities, phase1.zipf_centi, sample.1, 1);
    assert!(!regen.is_empty());

    control.shutdown().expect("drain recovered server");
    child2.wait().expect("reap recovered server");
    let _ = std::fs::remove_dir_all(&wal);
}

#[test]
fn graceful_drain_is_durable_even_with_fsync_off() {
    let wal = temp_wal_dir("drain");

    // flush=off: no fsync during the run at all — durability rides
    // entirely on the drain protocol's final sync before SHUTDOWN_ACK.
    let durability = DurabilityConfig {
        dir: Some(wal.clone()),
        flush: FlushPolicy::Off,
        recover: false,
        ..DurabilityConfig::default()
    };
    let config = ServerConfig {
        entities: 32,
        threads: 2,
        batch_max: 8,
        batch_deadline: Duration::from_micros(500),
        durability,
        ..ServerConfig::default()
    };
    let server = Server::start(config.clone()).expect("start");
    let addr = server.local_addr().to_string();

    let load_cfg = LoadConfig {
        addr,
        clients: 16,
        txns_per_client: 4,
        entities: 32,
        zipf_centi: 120,
        think_us: 0,
        clients_per_conn: 8,
        seed: 9,
        ..LoadConfig::default()
    };
    let result = run_load(&load_cfg).expect("load");
    assert_eq!(result.commits, 16 * 4);

    let mut c = Client::connect(&load_cfg.addr).expect("connect");
    let (_, snapshot_before) = c.history().expect("history");
    let commits = c.shutdown().expect("drain");
    assert_eq!(commits, result.commits);
    server.wait().expect("clean shutdown");

    // Restart from the drained log: every acknowledged txn must be back.
    let recovered = Server::start(ServerConfig {
        durability: DurabilityConfig {
            dir: Some(wal.clone()),
            flush: FlushPolicy::Off,
            recover: true,
            ..DurabilityConfig::default()
        },
        ..config
    })
    .expect("recover");
    let summary = recovered.recovery().expect("recovery summary").clone();
    assert_eq!(summary.txns, result.commits, "drain lost acknowledged txns");
    assert!(!summary.torn_tail, "graceful drain must leave a clean tail");

    let mut c2 = Client::connect(&recovered.local_addr().to_string()).expect("connect");
    let (accesses, snapshot_after) = c2.history().expect("history");
    assert_eq!(snapshot_after, snapshot_before, "recovered state diverges from drained state");
    let report = oracle_check(&load_cfg, &result.mapping, &accesses, &snapshot_after)
        .expect("recovered history must still serialize");
    assert_eq!(report.txns, result.commits as usize);

    c2.shutdown().expect("drain again");
    recovered.wait().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&wal);
}
