//! Wire-protocol properties: every value the codec can produce must
//! round-trip exactly; every mutilated byte stream must come back as a
//! typed [`WireError`] — never a panic, never a hang, never a garbage
//! decode silently accepted.

use pr_model::{EntityId, Expr, Op, TxnId, Value, VarId};
use pr_par::CommittedAccess;
use pr_server::wire::{
    decode_reply, decode_request, encode_reply, encode_request, frame, AbortReason, FrameAssembler,
    WireError, MAX_PAYLOAD,
};
use pr_server::{Reply, Request};
use proptest::prelude::*;

/// splitmix64 — grows one seed into a reproducible value stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic value stream for building random protocol messages.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = mix(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    match if depth >= 6 { g.below(2) } else { g.below(5) } {
        0 => Expr::Const(Value::new(g.next() as i64)),
        1 => Expr::Var(VarId::new(g.below(16) as u16)),
        2 => Expr::add(gen_expr(g, depth + 1), gen_expr(g, depth + 1)),
        3 => Expr::sub(gen_expr(g, depth + 1), gen_expr(g, depth + 1)),
        _ => Expr::mul(gen_expr(g, depth + 1), gen_expr(g, depth + 1)),
    }
}

fn gen_op(g: &mut Gen) -> Op {
    let entity = || EntityId::new(0);
    match g.below(8) {
        0 => Op::LockShared(EntityId::new(g.below(1 << 20) as u32)),
        1 => Op::LockExclusive(EntityId::new(g.below(1 << 20) as u32)),
        2 => Op::Unlock(EntityId::new(g.below(1 << 20) as u32)),
        3 => Op::Read { entity: entity(), into: VarId::new(g.below(64) as u16) },
        4 => Op::Write { entity: entity(), expr: gen_expr(g, 0) },
        5 => Op::Assign { var: VarId::new(g.below(64) as u16), expr: gen_expr(g, 0) },
        6 => Op::Compute(gen_expr(g, 0)),
        _ => Op::Commit,
    }
}

fn gen_request(g: &mut Gen) -> Request {
    match g.below(8) {
        0..=4 => Request::Submit {
            request_id: g.next(),
            ops: (0..g.below(20)).map(|_| gen_op(g)).collect(),
        },
        5 => Request::Stats,
        6 => Request::History,
        _ => Request::Shutdown,
    }
}

fn gen_reply(g: &mut Gen) -> Reply {
    match g.below(6) {
        0 => {
            Reply::Committed { request_id: g.next(), txn: TxnId::new(1 + g.below(1 << 20) as u32) }
        }
        1 => Reply::Aborted {
            request_id: g.next(),
            reason: [AbortReason::Shutdown, AbortReason::Invalid, AbortReason::Engine]
                [g.below(3) as usize],
        },
        2 => Reply::StatsReply {
            json: format!("{{\"schema\":\"pr-server-metrics-v1\",\"n\":{}}}", g.next()),
        },
        3 => Reply::HistoryChunk {
            last: g.below(2) == 0,
            accesses: (0..g.below(30))
                .map(|_| CommittedAccess {
                    txn: TxnId::new(1 + g.below(1 << 16) as u32),
                    entity: EntityId::new(g.below(1 << 16) as u32),
                    mode: if g.below(2) == 0 {
                        pr_model::LockMode::Shared
                    } else {
                        pr_model::LockMode::Exclusive
                    },
                    stamp: g.next(),
                })
                .collect(),
            snapshot: (0..g.below(20))
                .map(|_| (EntityId::new(g.below(1 << 16) as u32), g.next() as i64))
                .collect(),
        },
        4 => Reply::Error { code: g.below(250) as u8, message: format!("err {}", g.next()) },
        _ => Reply::ShutdownAck { commits: g.next() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any encodable request survives encode → frame → reassemble →
    /// decode byte-identically — including through a FrameAssembler fed
    /// in seed-chosen fragment sizes (partial-read reassembly).
    #[test]
    fn requests_round_trip_through_fragmented_frames(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let request = gen_request(&mut g);
        let payload = encode_request(&request);
        prop_assert_eq!(decode_request(&payload).unwrap(), request.clone());

        let framed = frame(&payload);
        let mut asm = FrameAssembler::new();
        let mut cursor = 0;
        let mut decoded = None;
        while cursor < framed.len() {
            let step = 1 + (g.below(7) as usize);
            let end = (cursor + step).min(framed.len());
            asm.feed(&framed[cursor..end]);
            cursor = end;
            if let Some(p) = asm.next_frame().unwrap() {
                prop_assert!(decoded.is_none(), "one frame in, at most one frame out");
                decoded = Some(p);
            }
        }
        prop_assert_eq!(decode_request(&decoded.expect("complete frame")).unwrap(), request);
        prop_assert_eq!(asm.pending(), 0, "no bytes may linger after the frame");
    }

    /// Same for replies, including history chunks with snapshots.
    #[test]
    fn replies_round_trip(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let reply = gen_reply(&mut g);
        let payload = encode_reply(&reply);
        prop_assert_eq!(decode_reply(&payload).unwrap(), reply);
    }

    /// Every strict prefix of a valid payload decodes to `Truncated` —
    /// never panics, never succeeds.
    #[test]
    fn truncated_payloads_are_typed_errors(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let payload = encode_request(&gen_request(&mut g));
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(WireError::Truncated) => {}
                other => prop_assert!(false, "cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    /// A valid payload with random trailing garbage is rejected (either
    /// as trailing bytes or, if the garbage extends a length field's
    /// reach, as some other typed error) — never silently accepted as
    /// the original message.
    #[test]
    fn trailing_garbage_never_decodes_to_the_original(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let request = gen_request(&mut g);
        let mut payload = encode_request(&request);
        for _ in 0..1 + g.below(8) {
            payload.push(g.next() as u8);
        }
        if let Ok(decoded) = decode_request(&payload) {
            prop_assert_ne!(decoded, request);
        }
    }

    /// Byte streams that start with a garbage tag draw `BadTag`.
    #[test]
    fn garbage_tags_are_rejected(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let tag = 0x05 + (g.below(0x7B) as u8); // outside every request tag
        let mut payload = vec![tag];
        for _ in 0..g.below(12) {
            payload.push(g.next() as u8);
        }
        prop_assert_eq!(decode_request(&payload), Err(WireError::BadTag { tag }));
    }
}

/// An oversized length prefix is rejected the moment the prefix is
/// complete — the assembler must not buffer toward an impossible frame.
#[test]
fn oversized_declaration_rejected_before_buffering() {
    let mut asm = FrameAssembler::new();
    let declared = (MAX_PAYLOAD + 1) as u32;
    asm.feed(&declared.to_le_bytes());
    match asm.next_frame() {
        Err(WireError::Oversized { declared }) => {
            assert_eq!(declared, MAX_PAYLOAD + 1);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// Two frames arriving in one read() are both produced, in order.
#[test]
fn back_to_back_frames_split_correctly() {
    let a = encode_request(&Request::Stats);
    let b = encode_request(&Request::History);
    let mut bytes = frame(&a);
    bytes.extend_from_slice(&frame(&b));
    let mut asm = FrameAssembler::new();
    asm.feed(&bytes);
    assert_eq!(asm.next_frame().unwrap().as_deref(), Some(&a[..]));
    assert_eq!(asm.next_frame().unwrap().as_deref(), Some(&b[..]));
    assert_eq!(asm.next_frame().unwrap(), None);
}

/// A deeply nested expression is a `LimitExceeded`, not a stack overflow.
#[test]
fn expression_bomb_is_depth_limited() {
    let mut expr = Expr::Const(Value::new(1));
    for _ in 0..200 {
        expr = Expr::add(expr, Expr::Const(Value::new(1)));
    }
    let payload = encode_request(&Request::Submit { request_id: 1, ops: vec![Op::Compute(expr)] });
    match decode_request(&payload) {
        Err(WireError::LimitExceeded(what)) => assert_eq!(what, "expression nesting"),
        other => panic!("expected LimitExceeded, got {other:?}"),
    }
}
