//! # pr-server — the networked multi-client front end
//!
//! Exposes the pr-par engine over a length-prefixed binary protocol on
//! plain std TCP: no async runtime, no serialisation framework, just
//! frames, threads, and the [`pr_par::Session`] submission API. The
//! design goal is the paper's setting at production shape — many clients
//! concurrently submitting short transactions against one lock manager
//! with partial-rollback deadlock resolution — while keeping every piece
//! auditable by the same differential serializability oracle the
//! in-process experiments use: the server records the grant-stamped
//! access history across batches, and `pr-load` fetches it post-run and
//! replays a serial reference against it.
//!
//! * [`wire`] — frame format, request/reply codecs, incremental
//!   reassembly, and the hard limits that make malformed input a typed
//!   error instead of a panic;
//! * [`batch`] — the group-commit coalescer (flush on fill or deadline);
//! * [`server`] — accept loop, per-connection readers, the single
//!   batch-executor thread, and the drain-then-quiesce shutdown;
//! * [`client`] — a small blocking client (control plane, tests, probes);
//! * [`load`] — the closed-loop multi-client load driver behind
//!   `pr-load`: Zipf skew, think times, latency histograms, multi-process
//!   fan-out, and the post-run oracle check;
//! * [`durable`] — the group-commit journal over `pr_storage::wal` and
//!   the `--recover` crash-recovery replay;
//! * [`crashsim`] — the in-process crash-injection harness behind the
//!   crash-matrix tests and `pr-load --crash-soak`.

pub mod batch;
pub mod client;
pub mod crashsim;
pub mod durable;
pub mod load;
pub mod server;
pub mod wire;

pub use batch::{Batcher, FlushReason};
pub use client::{Client, HistoryDump};
pub use durable::{recover, DurabilityConfig, Journal, Recovery, RecoverySummary};
pub use load::{run_load, LoadConfig, LoadResult};
pub use server::{Server, ServerConfig, ServerSummary};
pub use wire::{FrameAssembler, Reply, Request, WireError};
