//! The group-commit coalescer.
//!
//! Readers push work items as frames arrive; one executor thread pulls
//! **batches**. A batch flushes when it reaches `batch_max` items or when
//! `deadline` has elapsed since its first item arrived — the classic
//! group-commit trade: a bounded latency contribution buys the engine
//! larger batches, which amortise worker-thread startup and give the
//! resolver real concurrency to work with.
//!
//! The structure is a plain `Mutex<Vec<T>>` + `Condvar` pair. Both sides
//! are cheap: a push is a lock, a `Vec::push`, and a notify; the executor
//! blocks on the condvar with a timeout equal to the open batch's
//! remaining deadline. After [`Batcher::close`], pushes fail and
//! [`Batcher::next_batch`] drains whatever is queued, then returns `None`
//! forever — the shutdown path's "drain, then stop".

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a batch was flushed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushReason {
    /// The batch reached `batch_max` items.
    Full,
    /// The group-commit deadline expired with a partial batch.
    Deadline,
    /// The batcher was closed; this is (part of) the final drain.
    Drain,
}

struct State<T> {
    queue: Vec<T>,
    /// When the oldest queued item arrived (deadline anchor).
    opened: Option<Instant>,
    closed: bool,
}

/// A multi-producer, single-consumer batch queue with a fill-or-deadline
/// flush policy. See the module docs.
pub struct Batcher<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    batch_max: usize,
    deadline: Duration,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `batch_max` items or `deadline` after the
    /// first queued item, whichever comes first.
    pub fn new(batch_max: usize, deadline: Duration) -> Self {
        Batcher {
            state: Mutex::new(State { queue: Vec::new(), opened: None, closed: false }),
            cond: Condvar::new(),
            batch_max: batch_max.max(1),
            deadline,
        }
    }

    /// Enqueues one item. Returns `false` (item given back via `Err`)
    /// if the batcher is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("batcher mutex poisoned");
        if s.closed {
            return Err(item);
        }
        if s.queue.is_empty() {
            s.opened = Some(Instant::now());
        }
        s.queue.push(item);
        // The executor sleeps on the deadline once a batch is open; only
        // emptiness→first-item and the full threshold change what it
        // would do, but notifying every push is cheap and simpler.
        self.cond.notify_one();
        Ok(())
    }

    /// Takes at most `batch_max` items off the queue. The cap holds even
    /// when work piled up while the executor was busy — oversized engine
    /// runs would trade unbounded latency for the tail of the queue. A
    /// nonempty remainder re-anchors the deadline (and will typically
    /// flush again immediately via the fill check anyway).
    fn take_batch(&self, s: &mut State<T>) -> Vec<T> {
        if s.queue.len() <= self.batch_max {
            s.opened = None;
            return std::mem::take(&mut s.queue);
        }
        let rest = s.queue.split_off(self.batch_max);
        s.opened = Some(Instant::now());
        std::mem::replace(&mut s.queue, rest)
    }

    /// Blocks until a batch is ready and returns it with the flush
    /// reason; `None` once the batcher is closed and drained.
    pub fn next_batch(&self) -> Option<(Vec<T>, FlushReason)> {
        let mut s = self.state.lock().expect("batcher mutex poisoned");
        loop {
            if s.closed {
                if s.queue.is_empty() {
                    return None;
                }
                return Some((self.take_batch(&mut s), FlushReason::Drain));
            }
            if s.queue.len() >= self.batch_max {
                return Some((self.take_batch(&mut s), FlushReason::Full));
            }
            match s.opened {
                None => {
                    s = self.cond.wait(s).expect("batcher mutex poisoned");
                }
                Some(opened) => {
                    let elapsed = opened.elapsed();
                    if elapsed >= self.deadline {
                        return Some((self.take_batch(&mut s), FlushReason::Deadline));
                    }
                    let (guard, _timeout) = self
                        .cond
                        .wait_timeout(s, self.deadline - elapsed)
                        .expect("batcher mutex poisoned");
                    s = guard;
                }
            }
        }
    }

    /// Stops accepting new items; the executor drains what is queued and
    /// then sees `None`.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("batcher mutex poisoned");
        s.closed = true;
        drop(s);
        self.cond.notify_all();
    }

    /// Whether [`Batcher::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("batcher mutex poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fills_trigger_before_deadline() {
        let b = Batcher::new(3, Duration::from_secs(60));
        for i in 0..3 {
            b.push(i).unwrap();
        }
        let (batch, reason) = b.next_batch().unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(reason, FlushReason::Full);
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let b = Arc::new(Batcher::new(1000, Duration::from_millis(20)));
        b.push(7).unwrap();
        let start = Instant::now();
        let (batch, reason) = b.next_batch().unwrap();
        assert_eq!(batch, vec![7]);
        assert_eq!(reason, FlushReason::Deadline);
        assert!(start.elapsed() >= Duration::from_millis(15), "flushed too early");
    }

    #[test]
    fn close_drains_then_ends() {
        let b = Batcher::new(1000, Duration::from_secs(60));
        b.push(1).unwrap();
        b.push(2).unwrap();
        b.close();
        assert_eq!(b.push(3), Err(3));
        let (batch, reason) = b.next_batch().unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(reason, FlushReason::Drain);
        assert!(b.next_batch().is_none());
        assert!(b.next_batch().is_none(), "closed batcher stays closed");
    }

    #[test]
    fn flushes_never_exceed_batch_max() {
        let b = Batcher::new(4, Duration::from_secs(60));
        for i in 0..11 {
            b.push(i).unwrap();
        }
        b.close();
        let mut sizes = Vec::new();
        let mut got = Vec::new();
        while let Some((batch, _)) = b.next_batch() {
            sizes.push(batch.len());
            got.extend(batch);
        }
        assert!(sizes.iter().all(|&n| n <= 4), "oversized flush: {sizes:?}");
        assert_eq!(got, (0..11).collect::<Vec<_>>(), "cap must preserve order and lose nothing");
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let b = Arc::new(Batcher::new(64, Duration::from_millis(5)));
        let consumer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((batch, _)) = b.next_batch() {
                    got.extend(batch);
                }
                got
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        b.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        b.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        let mut expected: Vec<i32> =
            (0..4).flat_map(|p| (0..250).map(move |i| p * 1000 + i)).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}
