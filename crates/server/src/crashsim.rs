//! In-process crash-injection harness for the durability invariant.
//!
//! The e2e test kills a real `pr-server` process once; this module makes
//! the same experiment cheap enough to run *hundreds* of times by swapping
//! the filesystem for [`MemDir`]'s deterministic failpoint. One simulated
//! run drives the real engine ([`pr_par::Session`]) and the real
//! [`Journal`] batch by batch, recording each acknowledged batch's
//! snapshot as it goes — the run is its own ground truth, so the check
//! stays sound even when the engine schedules non-deterministically. When
//! the byte budget fires mid-append (a torn write, exactly like SIGKILL
//! inside `write(2)`), the harness recovers from the surviving disk image
//! — optionally dropping never-fsynced bytes, the page-cache-loss model —
//! and [`check_crash_case`] asserts the whole durability contract:
//!
//! * recovery never fails and never invents batches (`recovered ≤ acked`);
//! * recovery is all-or-nothing per batch — the recovered store equals
//!   *exactly* the snapshot after some acknowledged batch prefix;
//! * the loss window matches the flush policy: `per-batch` loses nothing
//!   acknowledged, `every-N` loses at most N−1 whole acked batches, and a
//!   graceful (non-crashed) drain loses nothing under any policy;
//! * recovery is idempotent — a second replay of the sealed log agrees.

use crate::durable::{recover, Journal};
use crate::DurabilityConfig;
use pr_core::SystemConfig;
use pr_model::Value;
use pr_par::{ParConfig, Session};
use pr_sim::generator::{GeneratorConfig, ProgramGenerator};
use pr_storage::wal::{decode_stream, FailPlan, FlushPolicy, LogDir, MemDir, WalError};
use pr_storage::{GlobalStore, Snapshot};
use std::sync::Arc;

/// One simulated server lifetime's shape.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Workload seed.
    pub seed: u64,
    /// WAL fsync policy under test.
    pub flush: FlushPolicy,
    /// Engine knobs (grant policy, strategy, victim).
    pub system: SystemConfig,
    /// Engine worker threads per batch.
    pub threads: usize,
    /// Entity universe size.
    pub entities: u32,
    /// Initial entity value.
    pub init: i64,
    /// Zipf skew ×100 for the generated workload.
    pub zipf_centi: u16,
    /// Total transactions the run submits.
    pub txns: usize,
    /// Transactions per group-commit batch.
    pub batch: usize,
    /// WAL segment size — small, so crash points cover rotation too.
    pub segment_max: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            flush: FlushPolicy::PerBatch,
            system: SystemConfig::default(),
            threads: 1,
            entities: 64,
            init: 100,
            zipf_centi: 120,
            txns: 96,
            batch: 8,
            segment_max: 4096,
        }
    }
}

/// One acknowledged batch: what the durable log must be able to restore.
pub struct BatchMark {
    /// Store state after this batch published.
    pub snapshot: Snapshot,
    /// Transactions the batch committed.
    pub txns: u32,
}

/// What one simulated run produced before the crash (or completion).
pub struct SimTrace {
    /// Batches whose `log_batch` returned `Ok` — the acknowledged prefix.
    pub acked: Vec<BatchMark>,
    /// Whether the failpoint fired (false = ran to graceful drain).
    pub crashed: bool,
}

/// Runs the engine + journal over `dir` until the workload completes or
/// the failpoint fires. A completed run syncs the journal, modelling the
/// graceful drain every real shutdown performs.
pub fn run_to_crash(cfg: &SimConfig, dir: &MemDir) -> Result<SimTrace, String> {
    let gen_config = GeneratorConfig {
        num_entities: cfg.entities,
        skew_centi: cfg.zipf_centi,
        ..GeneratorConfig::default()
    };
    let programs = ProgramGenerator::new(gen_config, cfg.seed).generate_workload(cfg.txns);
    let store = GlobalStore::with_entities(cfg.entities, Value::new(cfg.init));
    let par_config =
        ParConfig { threads: cfg.threads, shards: 0, system: cfg.system, fast_path: true };
    let mut session = Session::new(&store, par_config);
    let durability = DurabilityConfig {
        dir: None,
        flush: cfg.flush,
        recover: false,
        segment_max: cfg.segment_max,
    };
    let mut journal = Journal::open(Arc::new(dir.clone()), &durability, store.snapshot(), 0)
        .map_err(|e| format!("journal open: {e}"))?;

    let mut trace = SimTrace { acked: Vec::new(), crashed: false };
    for (i, chunk) in programs.chunks(cfg.batch.max(1)).enumerate() {
        let base = session.admitted();
        let outcome = session.execute(chunk).map_err(|e| format!("engine batch {i}: {e}"))?;
        let request_ids: Vec<u64> =
            (0..chunk.len()).map(|j| (base as u64 + j as u64) << 32).collect();
        match journal.log_batch(
            base,
            &request_ids,
            session.stamp(),
            &outcome.snapshot,
            &outcome.accesses,
        ) {
            Ok(_) => trace
                .acked
                .push(BatchMark { snapshot: outcome.snapshot.clone(), txns: chunk.len() as u32 }),
            Err(WalError::Crashed) => {
                trace.crashed = true;
                return Ok(trace);
            }
            Err(e) => return Err(format!("journal batch {i}: {e}")),
        }
    }
    match journal.sync() {
        Ok(()) => Ok(trace),
        Err(WalError::Crashed) => {
            trace.crashed = true;
            Ok(trace)
        }
        Err(e) => Err(format!("drain sync: {e}")),
    }
}

/// Every record boundary in `dir`, as cumulative append-order byte
/// offsets — the exact budgets at which a crash tears *between* records.
/// Offsets strictly inside a record are torn-frame crash points instead;
/// the matrix sweeps both.
pub fn record_boundaries(dir: &MemDir) -> Result<Vec<u64>, String> {
    let mut base = 0u64;
    let mut out = Vec::new();
    for name in dir.list().map_err(|e| e.to_string())? {
        let bytes = dir.read(&name).map_err(|e| e.to_string())?;
        let (records, _tail) = decode_stream(&bytes);
        for (_, end) in records {
            out.push(base + end as u64);
        }
        base += bytes.len() as u64;
    }
    Ok(out)
}

/// What one verified crash case established.
#[derive(Clone, Copy, Debug)]
pub struct Verdict {
    /// Batches acknowledged before the crash.
    pub acked: usize,
    /// Batches recovery replayed.
    pub recovered: u64,
    /// Whether the failpoint actually fired at this budget.
    pub crashed: bool,
}

/// Runs one full crash case — run, crash at `budget` appended bytes,
/// recover from the surviving image — and checks the durability contract.
/// Returns `Err` with a reproduction message on any violation.
pub fn check_crash_case(
    cfg: &SimConfig,
    budget: u64,
    lose_unsynced: bool,
) -> Result<Verdict, String> {
    let ctx = |what: &str| {
        format!(
            "{what} [seed={} flush={} budget={budget} lose_unsynced={lose_unsynced} \
             txns={} batch={} seg={}]",
            cfg.seed, cfg.flush, cfg.txns, cfg.batch, cfg.segment_max
        )
    };
    let dir = MemDir::with_plan(FailPlan { crash_after_bytes: Some(budget) });
    let trace = run_to_crash(cfg, &dir).map_err(|e| ctx(&e))?;
    let surviving = dir.surviving(lose_unsynced);
    let rec = recover(&surviving, cfg.entities, cfg.init)
        .map_err(|e| ctx(&format!("recovery failed: {e}")))?;

    let acked = trace.acked.len() as u64;
    let recovered = rec.summary.batches;
    if recovered > acked {
        return Err(ctx(&format!(
            "recovery invented batches: {recovered} recovered, only {acked} acknowledged"
        )));
    }
    // Loss window per policy. A graceful (non-crashed) drain synced, so
    // nothing acknowledged may be lost under *any* policy; under a crash,
    // per-batch still loses nothing, every-N at most N−1 whole batches.
    let lost = acked - recovered;
    let allowed = if !trace.crashed || !lose_unsynced {
        Some(0)
    } else {
        cfg.flush.loss_window().map(u64::from)
    };
    if let Some(allowed) = allowed {
        if lost > allowed {
            return Err(ctx(&format!(
                "lost {lost} acknowledged batches (policy allows {allowed}): \
                 acked {acked}, recovered {recovered}"
            )));
        }
    }
    // All-or-nothing: the recovered store equals exactly the snapshot
    // after the recovered batch prefix — never a partially applied batch.
    let expected = match recovered {
        0 => GlobalStore::with_entities(cfg.entities, Value::new(cfg.init)).snapshot(),
        n => trace.acked[n as usize - 1].snapshot.clone(),
    };
    if rec.store.snapshot() != expected {
        return Err(ctx(&format!(
            "recovered store diverges from the snapshot after batch {recovered}"
        )));
    }
    let expected_txns: u64 =
        trace.acked[..recovered as usize].iter().map(|b| u64::from(b.txns)).sum();
    if rec.summary.txns != expected_txns {
        return Err(ctx(&format!("recovered {} txns, expected {expected_txns}", rec.summary.txns)));
    }
    // Idempotence: the seal left a log whose replay is stable.
    let again = recover(&surviving, cfg.entities, cfg.init)
        .map_err(|e| ctx(&format!("second recovery failed: {e}")))?;
    if again.summary.batches != recovered
        || again.summary.torn_tail
        || again.store.snapshot() != expected
    {
        return Err(ctx("recovery is not idempotent after sealing"));
    }
    Ok(Verdict { acked: trace.acked.len(), recovered, crashed: trace.crashed })
}
