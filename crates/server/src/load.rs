//! The closed-loop multi-client load driver behind `pr-load`.
//!
//! Simulates many **logical clients** multiplexed over a smaller number
//! of TCP connections: each connection gets one writer thread (sends the
//! next submission of whichever client's think time expires first) and
//! one reader thread (matches pipelined replies back to clients by
//! request id, records end-to-end latency, and schedules the client's
//! next submission). Closed loop means a client never has more than one
//! transaction in flight: offered load is `clients / (think + latency)`,
//! the classic interactive model, and tail latency is honest — a slow
//! reply holds that client back rather than piling more load on.
//!
//! **Determinism for the oracle.** Every logical client `g` generates
//! its whole program sequence up front from seed
//! `mix(seed, g)` — so after the run, anyone holding the run's
//! `(txn → (client, seq))` mapping (from the `COMMITTED` replies) can
//! regenerate the exact programs and hand
//! [`check_server_history`](pr_sim::oracle::check_server_history()) the
//! admission-ordered program list without a single program ever being
//! shipped back over the wire. Multi-process runs ship the compact
//! mapping and histogram buckets instead of programs.
//!
//! Latency is recorded in **microseconds of wall clock** from the moment
//! the submission frame is written to the moment its reply is decoded —
//! it includes the socket, the group-commit wait, and the engine run,
//! which is exactly the end-to-end number the bench table reports.

use crate::wire::{encode_request, frame, read_reply, FrameAssembler, Reply, Request};
use pr_core::{LogHistogram, SystemConfig};
use pr_model::{TransactionProgram, Value};
use pr_sim::generator::{GeneratorConfig, ProgramGenerator};
use pr_sim::oracle::{check_server_history, OracleReport};
use pr_storage::{GlobalStore, Snapshot};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One load run's knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address to connect to.
    pub addr: String,
    /// Logical clients this process simulates.
    pub clients: usize,
    /// Transactions each client submits.
    pub txns_per_client: usize,
    /// Entity universe size (must match the server's).
    pub entities: u32,
    /// Initial entity value (must match the server's; the oracle replays
    /// from it).
    pub init: i64,
    /// Zipf exponent ×100 for entity skew (0 = uniform).
    pub zipf_centi: u16,
    /// Mean think time between a reply and the client's next submission,
    /// in microseconds (actual: uniform in `[think/2, 3·think/2)`).
    pub think_us: u64,
    /// Logical clients multiplexed per TCP connection.
    pub clients_per_conn: usize,
    /// Workload seed; client `g` derives its own stream from it.
    pub seed: u64,
    /// Global id of this process's first client (multi-process offset).
    pub client_base: usize,
    /// Treat a mid-run disconnect (server death) as the end of the run
    /// instead of an error, returning whatever was acknowledged before
    /// the connection dropped. The kill-and-recover test uses this: the
    /// partial result is exactly the set of commits the server must be
    /// able to replay after `kill -9`.
    pub tolerate_disconnect: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            clients: 512,
            txns_per_client: 4,
            entities: 256,
            init: 100,
            zipf_centi: 0,
            think_us: 500,
            clients_per_conn: 256,
            seed: 1,
            client_base: 0,
            tolerate_disconnect: false,
        }
    }
}

/// What one load run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadResult {
    /// Submissions answered `COMMITTED`.
    pub commits: u64,
    /// Submissions answered `ABORTED` (any reason) — nonzero only around
    /// shutdown races or invalid programs, both failures for a bench run.
    pub aborted: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// End-to-end submission latency, microseconds.
    pub latency: LogHistogram,
    /// `(global txn id, global client id, client-local seq)` per commit —
    /// the oracle's key for regenerating the admitted program list.
    pub mapping: Vec<(u32, u32, u32)>,
}

impl LoadResult {
    /// Committed transactions per second of wall clock.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.commits as f64 / secs
        }
    }

    /// Folds a concurrent run (another process's share of the clients)
    /// into this one. Durations take the max — the runs overlapped.
    pub fn merge(&mut self, other: &LoadResult) {
        self.commits += other.commits;
        self.aborted += other.aborted;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latency.merge(&other.latency);
        self.mapping.extend_from_slice(&other.mapping);
    }
}

/// splitmix64 — the driver's only randomness (think-time jitter and
/// per-client seed derivation); keeps the driver free of RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workload shape every client draws from.
fn generator_config(entities: u32, zipf_centi: u16) -> GeneratorConfig {
    GeneratorConfig { num_entities: entities, skew_centi: zipf_centi, ..GeneratorConfig::default() }
}

/// Deterministically regenerates client `g`'s full submission sequence —
/// the same function the driver uses to create it, so the oracle side
/// needs only `(seed, entities, zipf, txns_per_client)` and `g`.
pub fn client_programs(
    seed: u64,
    entities: u32,
    zipf_centi: u16,
    g: u32,
    txns: usize,
) -> Vec<TransactionProgram> {
    let client_seed = mix(seed ^ u64::from(g).wrapping_mul(0x01000193));
    ProgramGenerator::new(generator_config(entities, zipf_centi), client_seed)
        .generate_workload(txns)
}

/// Think-time draw for client `g`'s submission `seq`: uniform in
/// `[think/2, 3·think/2)`, deterministic per (seed, g, seq).
fn think_delay(cfg: &LoadConfig, g: u32, seq: u32) -> Duration {
    if cfg.think_us == 0 {
        return Duration::ZERO;
    }
    let jitter = mix(cfg.seed ^ (u64::from(g) << 32) ^ u64::from(seq)) % cfg.think_us;
    Duration::from_micros(cfg.think_us / 2 + jitter)
}

/// Reader→writer wake queue: `(not-before, local client idx)` entries
/// plus the "no more submissions will be scheduled" flag.
struct Wake {
    ready: Mutex<Vec<(Instant, usize)>>,
    cond: Condvar,
    finished: AtomicBool,
}

/// Drives one connection's worth of clients to completion.
fn drive_conn(cfg: &LoadConfig, first_local: usize, count: usize) -> Result<LoadResult, String> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut read_half = stream.try_clone().map_err(|e| e.to_string())?;

    // Pre-generate every client's submission sequence (closed loop sends
    // them one at a time).
    let programs: Vec<Vec<TransactionProgram>> = (0..count)
        .map(|i| {
            let g = (cfg.client_base + first_local + i) as u32;
            client_programs(cfg.seed, cfg.entities, cfg.zipf_centi, g, cfg.txns_per_client)
        })
        .collect();

    let wake = Wake {
        ready: Mutex::new(Vec::new()),
        cond: Condvar::new(),
        finished: AtomicBool::new(false),
    };
    let sent_at: Mutex<Vec<Instant>> = Mutex::new(vec![Instant::now(); count]);
    let result = Mutex::new(LoadResult::default());
    let error: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        // Reader: match replies, record latency, schedule the next
        // submission after the client's think time.
        scope.spawn(|| {
            let mut asm = FrameAssembler::new();
            let mut remaining: u64 = (count * cfg.txns_per_client) as u64;
            while remaining > 0 {
                let reply = match read_reply(&mut read_half, &mut asm) {
                    Ok(Ok(r)) => r,
                    Ok(Err(e)) => {
                        *error.lock().unwrap() = Some(format!("wire error: {e}"));
                        break;
                    }
                    Err(e) => {
                        // The socket died mid-run. Under tolerate_disconnect
                        // that IS the experiment (the server was killed);
                        // the partial result is the answer.
                        if !cfg.tolerate_disconnect {
                            *error.lock().unwrap() = Some(format!("read: {e}"));
                        }
                        break;
                    }
                };
                let now = Instant::now();
                match reply {
                    Reply::Committed { request_id, txn } => {
                        remaining -= 1;
                        let g = (request_id & 0xFFFF_FFFF) as u32;
                        let seq = (request_id >> 32) as u32;
                        let local = g as usize - cfg.client_base - first_local;
                        let us =
                            now.duration_since(sent_at.lock().unwrap()[local]).as_micros() as u64;
                        let mut r = result.lock().unwrap();
                        r.commits += 1;
                        r.latency.record(us);
                        r.mapping.push((txn.raw(), g, seq));
                        drop(r);
                        if (seq as usize) + 1 < cfg.txns_per_client {
                            let at = now + think_delay(cfg, g, seq + 1);
                            wake.ready.lock().unwrap().push((at, local));
                            wake.cond.notify_one();
                        }
                    }
                    Reply::Aborted { request_id, .. } => {
                        remaining -= 1;
                        let seq = (request_id >> 32) as u32;
                        // The aborted client stops submitting; drop its
                        // unsent remainder from the expectation.
                        remaining -= (cfg.txns_per_client as u64) - u64::from(seq) - 1;
                        result.lock().unwrap().aborted += 1;
                    }
                    Reply::Error { code, message } => {
                        *error.lock().unwrap() = Some(format!("server error {code}: {message}"));
                        break;
                    }
                    other => {
                        *error.lock().unwrap() = Some(format!("unexpected reply: {other:?}"));
                        break;
                    }
                }
            }
            wake.finished.store(true, Ordering::SeqCst);
            wake.cond.notify_all();
        });

        // Writer: earliest-deadline-first over the clients whose think
        // time has expired.
        let mut write_half = stream;
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, usize)>> =
            std::collections::BinaryHeap::new();
        let mut next_seq: Vec<u32> = vec![0; count];
        // Stagger the initial submissions across one mean think time so
        // 10k clients don't form a synchronized thundering herd at t=0.
        let now = Instant::now();
        for local in 0..count {
            if cfg.txns_per_client == 0 {
                continue;
            }
            let g = (cfg.client_base + first_local + local) as u32;
            let stagger = if cfg.think_us == 0 {
                Duration::ZERO
            } else {
                Duration::from_micros(mix(cfg.seed ^ u64::from(g) ^ 0xA5A5) % cfg.think_us)
            };
            heap.push(std::cmp::Reverse((now + stagger, local)));
        }
        loop {
            // Finished covers both clean completion (all replies in, so
            // every send already happened) and reader failure.
            if wake.finished.load(Ordering::SeqCst) {
                break;
            }
            {
                let mut ready = wake.ready.lock().unwrap();
                loop {
                    for (at, local) in ready.drain(..) {
                        heap.push(std::cmp::Reverse((at, local)));
                    }
                    if !heap.is_empty() || wake.finished.load(Ordering::SeqCst) {
                        break;
                    }
                    ready = wake.cond.wait(ready).unwrap();
                }
            }
            let Some(&std::cmp::Reverse((at, _))) = heap.peek() else {
                if wake.finished.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            };
            let now = Instant::now();
            if at > now {
                // Sleep to the deadline, but wake early if the reader
                // schedules something sooner.
                let guard = wake.ready.lock().unwrap();
                let (mut guard, _) = wake.cond.wait_timeout(guard, at - now).unwrap();
                for (at, local) in guard.drain(..) {
                    heap.push(std::cmp::Reverse((at, local)));
                }
                continue;
            }
            let std::cmp::Reverse((_, local)) = heap.pop().expect("peeked nonempty");
            let seq = next_seq[local];
            next_seq[local] += 1;
            let ops = programs[local][seq as usize].ops().to_vec();
            // The low half is the *global* client id: request ids reach
            // the server's WAL as idempotence tokens, and a recovery-side
            // reader must be able to regenerate the program behind each
            // durable transaction from (g, seq) alone.
            let g = (cfg.client_base + first_local + local) as u32;
            let request_id = u64::from(seq) << 32 | u64::from(g);
            let bytes = frame(&encode_request(&Request::Submit { request_id, ops }));
            sent_at.lock().unwrap()[local] = Instant::now();
            if let Err(e) = write_half.write_all(&bytes) {
                if !cfg.tolerate_disconnect {
                    *error.lock().unwrap() = Some(format!("write: {e}"));
                }
                // Unblock the reader (it would otherwise wait forever for
                // replies to submissions that never went out).
                let _ = write_half.shutdown(std::net::Shutdown::Both);
                break;
            }
        }
    });

    if let Some(e) = error.into_inner().unwrap() {
        return Err(e);
    }
    Ok(result.into_inner().unwrap())
}

/// Runs the full closed loop: all clients, all connections, one process.
/// The result's `elapsed` spans connect to last reply.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadResult, String> {
    if cfg.clients == 0 || cfg.txns_per_client == 0 {
        return Ok(LoadResult::default());
    }
    let per_conn = cfg.clients_per_conn.max(1);
    let start = Instant::now();
    let mut merged = LoadResult::default();
    let results: Vec<Result<LoadResult, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut first = 0;
        while first < cfg.clients {
            let count = per_conn.min(cfg.clients - first);
            handles.push(scope.spawn(move || drive_conn(cfg, first, count)));
            first += count;
        }
        handles.into_iter().map(|h| h.join().expect("conn driver panicked")).collect()
    });
    for r in results {
        merged.merge(&r?);
    }
    merged.elapsed = start.elapsed();
    Ok(merged)
}

/// Rebuilds the admission-ordered program list from the run's mapping and
/// replays the differential oracle against the server-reported history
/// and snapshot. `mapping` must cover txn ids `1..=mapping.len()` with no
/// gaps — exactly what a clean run's `COMMITTED` replies produce.
pub fn oracle_check(
    cfg: &LoadConfig,
    mapping: &[(u32, u32, u32)],
    accesses: &[pr_par::CommittedAccess],
    snapshot_pairs: &[(pr_model::EntityId, i64)],
) -> Result<OracleReport, String> {
    let total = mapping.len();
    let mut programs: Vec<Option<TransactionProgram>> = vec![None; total];
    let mut per_client: BTreeMap<u32, Vec<TransactionProgram>> = BTreeMap::new();
    for &(txn, g, seq) in mapping {
        let idx = txn as usize;
        if idx == 0 || idx > total {
            return Err(format!(
                "mapping names txn {txn} outside the contiguous range 1..={total}"
            ));
        }
        let list = per_client.entry(g).or_insert_with(|| {
            client_programs(cfg.seed, cfg.entities, cfg.zipf_centi, g, cfg.txns_per_client)
        });
        let program = list
            .get(seq as usize)
            .ok_or_else(|| format!("client {g} has no submission #{seq}"))?
            .clone();
        if programs[idx - 1].replace(program).is_some() {
            return Err(format!("txn {txn} appears twice in the mapping"));
        }
    }
    let programs: Vec<TransactionProgram> = programs
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.ok_or(format!("no commit mapped to txn {}", i + 1)))
        .collect::<Result<_, _>>()?;

    let initial = GlobalStore::with_entities(cfg.entities, Value::new(cfg.init));
    let snapshot = Snapshot::from_pairs(snapshot_pairs.iter().map(|&(e, v)| (e, Value::new(v))));
    check_server_history(&programs, &initial, &SystemConfig::default(), accesses, &snapshot)
        .map_err(|v| format!("oracle violation: {v}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_programs_are_deterministic_and_distinct() {
        let a = client_programs(42, 64, 120, 7, 4);
        let b = client_programs(42, 64, 120, 7, 4);
        assert_eq!(a, b, "same (seed, client) must regenerate identically");
        let c = client_programs(42, 64, 120, 8, 4);
        assert_ne!(a, c, "different clients draw different programs");
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(pr_model::validate::is_valid));
    }

    #[test]
    fn think_delays_are_bounded_and_deterministic() {
        let cfg = LoadConfig { think_us: 1000, ..LoadConfig::default() };
        for g in 0..50 {
            for seq in 0..5 {
                let d = think_delay(&cfg, g, seq);
                assert_eq!(d, think_delay(&cfg, g, seq));
                assert!(d >= Duration::from_micros(500) && d < Duration::from_micros(1500));
            }
        }
        let zero = LoadConfig { think_us: 0, ..LoadConfig::default() };
        assert_eq!(think_delay(&zero, 1, 1), Duration::ZERO);
    }
}
