//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! A **frame** is a `u32` little-endian payload length followed by that
//! many payload bytes; the first payload byte is a tag. Requests use tags
//! `0x01..=0x04`, replies `0x81..=0x87` — a stream is either all requests
//! (client→server) or all replies, so the spaces never mix. All integers
//! are little-endian fixed width; there is no varint, no alignment, no
//! compression. The format is deliberately dumb: a client in any language
//! needs ~50 lines to speak it.
//!
//! ```text
//! SUBMIT       0x01  request_id:u64  op_count:u16  ops…
//! STATS        0x02
//! HISTORY      0x03
//! SHUTDOWN     0x04
//!
//! COMMITTED    0x81  request_id:u64  txn:u32
//! ABORTED      0x82  request_id:u64  reason:u8    (1 shutdown, 2 invalid, 3 engine)
//! STATS_REPLY  0x83  len:u32  json-bytes
//! HISTORY_CHUNK 0x84 last:u8  n:u32  (txn:u32 entity:u32 mode:u8 stamp:u64)×n
//!                    [if last: m:u32 (entity:u32 value:i64)×m]
//! ERROR        0x86  code:u8  len:u16  utf8-message
//! SHUTDOWN_ACK 0x87  commits:u64
//! ```
//!
//! Transaction programs travel as their raw [`Op`] list (tags 0–7);
//! expressions are a recursive prefix encoding (tags 0–4) with hard depth
//! and node-count limits, so a malicious frame cannot blow the decoder's
//! stack or memory. Every decode failure is a typed [`WireError`] — the
//! server answers with an `ERROR` frame and drops the connection instead
//! of panicking or hanging, and the framing tests drive exactly those
//! paths (oversized, truncated, garbage).
//!
//! [`FrameAssembler`] handles the read side: TCP delivers byte soup, so
//! the assembler buffers partial reads and yields complete frames as the
//! length prefix is satisfied, rejecting oversized declarations before
//! buffering their payload.

use pr_model::{EntityId, Expr, LockMode, Op, TxnId, Value, VarId};
use pr_par::CommittedAccess;
use std::fmt;

/// Hard cap on a frame's payload length. Requests stay far below this;
/// the server chunks history replies to fit.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Most operations a submitted program may carry.
pub const MAX_OPS: usize = 4096;
/// Deepest expression nesting the decoder will follow.
pub const MAX_EXPR_DEPTH: usize = 32;
/// Accesses per `HISTORY_CHUNK` frame (keeps chunks ≈ 1/2 `MAX_PAYLOAD`).
pub const HISTORY_CHUNK_ACCESSES: usize = 24_000;

/// Why a frame or payload could not be decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The length prefix declares a payload above [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        declared: usize,
    },
    /// The payload ended before the structure it declared.
    Truncated,
    /// An unknown frame, op, or expression tag.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A structural limit was exceeded (op count, expression depth).
    LimitExceeded(&'static str),
    /// Bytes remained after a complete request/reply was decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { declared } => {
                write!(f, "frame declares {declared} payload bytes (max {MAX_PAYLOAD})")
            }
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag { tag } => write!(f, "unknown tag 0x{tag:02x}"),
            WireError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a submission was aborted rather than committed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// The server is shutting down; the transaction was never admitted.
    Shutdown,
    /// The program failed validation (unknown entity, malformed 2PL).
    Invalid,
    /// The engine rejected the batch (an internal error; the server is
    /// about to terminate).
    Engine,
}

impl AbortReason {
    fn to_byte(self) -> u8 {
        match self {
            AbortReason::Shutdown => 1,
            AbortReason::Invalid => 2,
            AbortReason::Engine => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(AbortReason::Shutdown),
            2 => Ok(AbortReason::Invalid),
            3 => Ok(AbortReason::Engine),
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// A client→server message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Submit one transaction program for execution. `request_id` is an
    /// opaque correlation token echoed in the reply — connections are
    /// pipelined, so replies may arrive out of submission order.
    Submit {
        /// Client-chosen correlation id.
        request_id: u64,
        /// The program's operations (validated server-side).
        ops: Vec<Op>,
    },
    /// Ask for the server metrics JSON.
    Stats,
    /// Ask for the full committed access history and final snapshot.
    History,
    /// Ask the server to drain, quiesce, and exit.
    Shutdown,
}

/// A server→client message.
#[derive(Clone, PartialEq, Debug)]
pub enum Reply {
    /// The submission committed as global transaction `txn`.
    Committed {
        /// Echoed correlation id.
        request_id: u64,
        /// The global transaction id the engine assigned.
        txn: TxnId,
    },
    /// The submission was not executed.
    Aborted {
        /// Echoed correlation id.
        request_id: u64,
        /// Why it was not executed.
        reason: AbortReason,
    },
    /// Server metrics as JSON.
    StatsReply {
        /// `pr-server-metrics-v1` JSON object.
        json: String,
    },
    /// One slice of the committed access history; the final chunk
    /// (`last`) carries the database snapshot.
    HistoryChunk {
        /// Whether this is the final chunk.
        last: bool,
        /// Accesses in this chunk (stamp order across chunks).
        accesses: Vec<CommittedAccess>,
        /// Final `(entity, value)` pairs — only on the last chunk.
        snapshot: Vec<(EntityId, i64)>,
    },
    /// Protocol error; the server closes the connection after sending.
    Error {
        /// Coarse error class (1 = framing, 2 = decode).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// Shutdown accepted and completed; the process exits after sending.
    ShutdownAck {
        /// Transactions committed over the server's lifetime.
        commits: u64,
    },
}

// ---------------------------------------------------------------------
// Primitive readers/writers

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked cursor over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes { extra: self.buf.len() - self.at })
        }
    }
}

// ---------------------------------------------------------------------
// Expression and op codecs

fn encode_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Const(v) => {
            out.push(0);
            put_i64(out, v.raw());
        }
        Expr::Var(v) => {
            out.push(1);
            put_u16(out, v.raw());
        }
        Expr::Add(a, b) => {
            out.push(2);
            encode_expr(out, a);
            encode_expr(out, b);
        }
        Expr::Sub(a, b) => {
            out.push(3);
            encode_expr(out, a);
            encode_expr(out, b);
        }
        Expr::Mul(a, b) => {
            out.push(4);
            encode_expr(out, a);
            encode_expr(out, b);
        }
    }
}

fn decode_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, WireError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(WireError::LimitExceeded("expression nesting"));
    }
    match r.u8()? {
        0 => Ok(Expr::Const(Value::new(r.i64()?))),
        1 => Ok(Expr::Var(VarId::new(r.u16()?))),
        tag @ 2..=4 => {
            let a = decode_expr(r, depth + 1)?;
            let b = decode_expr(r, depth + 1)?;
            Ok(match tag {
                2 => Expr::add(a, b),
                3 => Expr::sub(a, b),
                _ => Expr::mul(a, b),
            })
        }
        tag => Err(WireError::BadTag { tag }),
    }
}

fn encode_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::LockShared(e) => {
            out.push(0);
            put_u32(out, e.raw());
        }
        Op::LockExclusive(e) => {
            out.push(1);
            put_u32(out, e.raw());
        }
        Op::Unlock(e) => {
            out.push(2);
            put_u32(out, e.raw());
        }
        Op::Read { entity, into } => {
            out.push(3);
            put_u32(out, entity.raw());
            put_u16(out, into.raw());
        }
        Op::Write { entity, expr } => {
            out.push(4);
            put_u32(out, entity.raw());
            encode_expr(out, expr);
        }
        Op::Assign { var, expr } => {
            out.push(5);
            put_u16(out, var.raw());
            encode_expr(out, expr);
        }
        Op::Compute(expr) => {
            out.push(6);
            encode_expr(out, expr);
        }
        Op::Commit => out.push(7),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, WireError> {
    match r.u8()? {
        0 => Ok(Op::LockShared(EntityId::new(r.u32()?))),
        1 => Ok(Op::LockExclusive(EntityId::new(r.u32()?))),
        2 => Ok(Op::Unlock(EntityId::new(r.u32()?))),
        3 => Ok(Op::Read { entity: EntityId::new(r.u32()?), into: VarId::new(r.u16()?) }),
        4 => Ok(Op::Write { entity: EntityId::new(r.u32()?), expr: decode_expr(r, 0)? }),
        5 => Ok(Op::Assign { var: VarId::new(r.u16()?), expr: decode_expr(r, 0)? }),
        6 => Ok(Op::Compute(decode_expr(r, 0)?)),
        7 => Ok(Op::Commit),
        tag => Err(WireError::BadTag { tag }),
    }
}

// ---------------------------------------------------------------------
// Request / reply codecs

/// Serialises a request payload (no length prefix — see [`frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Submit { request_id, ops } => {
            out.push(0x01);
            put_u64(&mut out, *request_id);
            put_u16(&mut out, ops.len() as u16);
            for op in ops {
                encode_op(&mut out, op);
            }
        }
        Request::Stats => out.push(0x02),
        Request::History => out.push(0x03),
        Request::Shutdown => out.push(0x04),
    }
    out
}

/// Decodes one request payload, rejecting trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        0x01 => {
            let request_id = r.u64()?;
            let count = r.u16()? as usize;
            if count > MAX_OPS {
                return Err(WireError::LimitExceeded("op count"));
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                ops.push(decode_op(&mut r)?);
            }
            Request::Submit { request_id, ops }
        }
        0x02 => Request::Stats,
        0x03 => Request::History,
        0x04 => Request::Shutdown,
        tag => return Err(WireError::BadTag { tag }),
    };
    r.finish()?;
    Ok(req)
}

/// Serialises a reply payload (no length prefix — see [`frame`]).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Reply::Committed { request_id, txn } => {
            out.push(0x81);
            put_u64(&mut out, *request_id);
            put_u32(&mut out, txn.raw());
        }
        Reply::Aborted { request_id, reason } => {
            out.push(0x82);
            put_u64(&mut out, *request_id);
            out.push(reason.to_byte());
        }
        Reply::StatsReply { json } => {
            out.push(0x83);
            put_u32(&mut out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Reply::HistoryChunk { last, accesses, snapshot } => {
            out.push(0x84);
            out.push(u8::from(*last));
            put_u32(&mut out, accesses.len() as u32);
            for a in accesses {
                put_u32(&mut out, a.txn.raw());
                put_u32(&mut out, a.entity.raw());
                out.push(match a.mode {
                    LockMode::Shared => 0,
                    LockMode::Exclusive => 1,
                });
                put_u64(&mut out, a.stamp);
            }
            // The snapshot section is always present (empty on non-final
            // chunks): a conditional section would make the codec lossy
            // for values it can represent.
            put_u32(&mut out, snapshot.len() as u32);
            for (entity, value) in snapshot {
                put_u32(&mut out, entity.raw());
                put_i64(&mut out, *value);
            }
        }
        Reply::Error { code, message } => {
            out.push(0x86);
            out.push(*code);
            put_u16(&mut out, message.len().min(u16::MAX as usize) as u16);
            out.extend_from_slice(&message.as_bytes()[..message.len().min(u16::MAX as usize)]);
        }
        Reply::ShutdownAck { commits } => {
            out.push(0x87);
            put_u64(&mut out, *commits);
        }
    }
    out
}

/// Decodes one reply payload, rejecting trailing bytes.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let mut r = Reader::new(payload);
    let reply = match r.u8()? {
        0x81 => Reply::Committed { request_id: r.u64()?, txn: TxnId::new(r.u32()?) },
        0x82 => {
            let request_id = r.u64()?;
            let reason = AbortReason::from_byte(r.u8()?)?;
            Reply::Aborted { request_id, reason }
        }
        0x83 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let json = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?.to_string();
            Reply::StatsReply { json }
        }
        0x84 => {
            let last = r.u8()? != 0;
            let n = r.u32()? as usize;
            if n > MAX_PAYLOAD / 8 {
                return Err(WireError::LimitExceeded("history chunk size"));
            }
            let mut accesses = Vec::with_capacity(n.min(HISTORY_CHUNK_ACCESSES));
            for _ in 0..n {
                let txn = TxnId::new(r.u32()?);
                let entity = EntityId::new(r.u32()?);
                let mode = match r.u8()? {
                    0 => LockMode::Shared,
                    1 => LockMode::Exclusive,
                    tag => return Err(WireError::BadTag { tag }),
                };
                let stamp = r.u64()?;
                accesses.push(CommittedAccess { txn, entity, mode, stamp });
            }
            let m = r.u32()? as usize;
            if m > MAX_PAYLOAD / 8 {
                return Err(WireError::LimitExceeded("snapshot size"));
            }
            let mut snapshot = Vec::with_capacity(m.min(1024));
            for _ in 0..m {
                let entity = EntityId::new(r.u32()?);
                let value = r.i64()?;
                snapshot.push((entity, value));
            }
            Reply::HistoryChunk { last, accesses, snapshot }
        }
        0x86 => {
            let code = r.u8()?;
            let len = r.u16()? as usize;
            let bytes = r.take(len)?;
            let message = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?.to_string();
            Reply::Error { code, message }
        }
        0x87 => Reply::ShutdownAck { commits: r.u64()? },
        tag => return Err(WireError::BadTag { tag }),
    };
    r.finish()?;
    Ok(reply)
}

/// Wraps a payload in its length-prefix frame, ready to write to a
/// socket.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD, "frame payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly over a byte stream: feed whatever the
/// socket delivered, pull out complete payloads. Oversized length
/// declarations are rejected *before* their payload is buffered, so a
/// hostile peer cannot make the assembler allocate [`MAX_PAYLOAD`]-dodging
/// amounts of memory.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pops the next complete frame payload, `Ok(None)` if more bytes are
    /// needed. After an `Err` the stream is unrecoverable — close the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Err(WireError::Oversized { declared });
        }
        if self.buf.len() < 4 + declared {
            return Ok(None);
        }
        let payload = self.buf[4..4 + declared].to_vec();
        self.buf.drain(..4 + declared);
        Ok(Some(payload))
    }

    /// Bytes currently buffered (partial frame in flight).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Reads frames from a blocking stream, decoding replies — the client
/// half's receive loop in one call.
pub fn read_reply(
    stream: &mut impl std::io::Read,
    assembler: &mut FrameAssembler,
) -> std::io::Result<Result<Reply, WireError>> {
    loop {
        match assembler.next_frame() {
            Ok(Some(payload)) => return Ok(decode_reply(&payload)),
            Ok(None) => {}
            Err(e) => return Ok(Err(e)),
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        assembler.feed(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::Submit {
            request_id: 0xDEAD_BEEF_0042,
            ops: vec![
                Op::LockExclusive(EntityId::new(3)),
                Op::Read { entity: EntityId::new(3), into: VarId::new(0) },
                Op::Assign {
                    var: VarId::new(0),
                    expr: Expr::add(Expr::var(VarId::new(0)), Expr::lit(7)),
                },
                Op::Write { entity: EntityId::new(3), expr: Expr::var(VarId::new(0)) },
                Op::Commit,
            ],
        };
        assert_eq!(decode_request(&encode_request(&req)), Ok(req));
        for req in [Request::Stats, Request::History, Request::Shutdown] {
            assert_eq!(decode_request(&encode_request(&req)), Ok(req));
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = vec![
            Reply::Committed { request_id: 9, txn: TxnId::new(77) },
            Reply::Aborted { request_id: 10, reason: AbortReason::Shutdown },
            Reply::Aborted { request_id: 11, reason: AbortReason::Invalid },
            Reply::StatsReply { json: "{\"commits\":3}".into() },
            Reply::HistoryChunk {
                last: false,
                accesses: vec![CommittedAccess {
                    txn: TxnId::new(1),
                    entity: EntityId::new(2),
                    mode: LockMode::Exclusive,
                    stamp: 42,
                }],
                snapshot: vec![],
            },
            Reply::HistoryChunk {
                last: true,
                accesses: vec![],
                snapshot: vec![(EntityId::new(0), -5), (EntityId::new(1), 100)],
            },
            Reply::Error { code: 2, message: "bad tag".into() },
            Reply::ShutdownAck { commits: 12345 },
        ];
        for reply in replies {
            assert_eq!(decode_reply(&encode_reply(&reply)), Ok(reply));
        }
    }

    #[test]
    fn deep_expression_is_rejected_not_overflowed() {
        let mut e = Expr::lit(1);
        for _ in 0..(MAX_EXPR_DEPTH + 5) {
            e = Expr::add(e, Expr::lit(1));
        }
        let payload = encode_request(&Request::Submit { request_id: 1, ops: vec![Op::Compute(e)] });
        assert_eq!(decode_request(&payload), Err(WireError::LimitExceeded("expression nesting")));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let full = encode_request(&Request::Submit {
            request_id: 5,
            ops: vec![Op::LockShared(EntityId::new(1)), Op::Commit],
        });
        for cut in 1..full.len() {
            let err = decode_request(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadTag { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        let mut padded = full.clone();
        padded.push(0);
        assert_eq!(decode_request(&padded), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn assembler_handles_arbitrary_fragmentation() {
        let payloads: Vec<Vec<u8>> = vec![
            encode_request(&Request::Stats),
            encode_request(&Request::Submit {
                request_id: 1,
                ops: vec![Op::LockExclusive(EntityId::new(9)), Op::Commit],
            }),
            encode_request(&Request::Shutdown),
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        // Feed one byte at a time — the worst possible fragmentation.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.feed(&[b]);
            while let Some(p) = asm.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_rejects_oversized_declaration_immediately() {
        let mut asm = FrameAssembler::new();
        asm.feed(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(asm.next_frame(), Err(WireError::Oversized { declared: MAX_PAYLOAD + 1 }));
    }
}
