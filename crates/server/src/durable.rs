//! Durability: the group-commit journal and crash recovery.
//!
//! This module is the bridge between the engine's batch outcomes and the
//! storage crate's write-ahead log. [`Journal`] turns each executed batch
//! into one redo record (net entity deltas against the previous batch's
//! snapshot, the committed access history, and the client request ids as
//! idempotence tokens) plus a commit marker, appended **before** the
//! batch's COMMITTED replies publish. [`recover`] replays the durable
//! prefix of a log directory into a fresh store and hands back everything
//! a server needs to resume exactly where the dead process stopped: txn
//! and stamp high-water marks, the recovered access history for the
//! HISTORY surface, and the sealed log ready for further appends.
//!
//! The invariant the test battery proves: under the `per-batch` flush
//! policy, **acknowledged ⇒ replayed** — any transaction whose COMMITTED
//! reply was ever observable survives `kill -9`, and recovery is
//! all-or-nothing per batch. `every-N` widens the loss window to at most
//! N−1 *whole* acknowledged batches; `off` leaves durability to graceful
//! drain (which always syncs before SHUTDOWN_ACK).

use pr_model::{EntityId, LockMode, TxnId, Value};
use pr_par::CommittedAccess;
use pr_storage::wal::{replay, seal, FlushPolicy, LogDir, Wal, WalAccess, WalError, WalStats};
use pr_storage::{BatchRecord, GlobalStore, Snapshot};
use std::path::PathBuf;
use std::sync::Arc;

/// Durability knobs, part of the server configuration.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Redo-log directory. `None` disables the journal entirely.
    pub dir: Option<PathBuf>,
    /// When appended records are fsynced.
    pub flush: FlushPolicy,
    /// Replay the durable prefix of `dir` before serving.
    pub recover: bool,
    /// Segment size before the writer rolls to a new file.
    pub segment_max: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            dir: None,
            flush: FlushPolicy::PerBatch,
            recover: false,
            segment_max: pr_storage::wal::DEFAULT_SEGMENT_MAX,
        }
    }
}

/// What `recover` replayed out of the log.
#[derive(Clone, Debug, Default)]
pub struct RecoverySummary {
    /// Batches in the durable prefix.
    pub batches: u64,
    /// Transactions in the durable prefix.
    pub txns: u64,
    /// Highest recovered txn id — the resumed session's admission base.
    pub txn_hwm: u32,
    /// Highest recovered grant stamp — the resumed session's clock base.
    pub stamp_hwm: u64,
    /// Highest recovered batch id — the journal continues at `+1`.
    pub last_batch_id: u64,
    /// Whether the scan stopped at a torn tail (sealed away) rather than
    /// the clean end of the log.
    pub torn_tail: bool,
}

/// Full recovery state: the summary plus the rebuilt store and history.
pub struct Recovery {
    /// Counters for logs and metrics.
    pub summary: RecoverySummary,
    /// The store with every durable batch's deltas applied.
    pub store: GlobalStore,
    /// The recovered access history, typed for the HISTORY surface and
    /// the serializability oracle.
    pub accesses: Vec<CommittedAccess>,
}

/// Replays the durable prefix of `dir` over a fresh
/// `GlobalStore::with_entities(entities, init)` and seals the log so a
/// reopened writer appends strictly after valid data.
pub fn recover(dir: &dyn LogDir, entities: u32, init: i64) -> Result<Recovery, WalError> {
    let outcome = replay(dir)?;
    let mut store = GlobalStore::with_entities(entities, Value::new(init));
    outcome.apply(&mut store)?;
    seal(dir, &outcome)?;
    let accesses = outcome
        .batches
        .iter()
        .flat_map(|b| b.accesses.iter())
        .map(|a| CommittedAccess {
            txn: TxnId::new(a.txn),
            entity: EntityId::new(a.entity),
            mode: if a.exclusive { LockMode::Exclusive } else { LockMode::Shared },
            stamp: a.stamp,
        })
        .collect();
    Ok(Recovery {
        summary: RecoverySummary {
            batches: outcome.batches.len() as u64,
            txns: outcome.commits(),
            txn_hwm: outcome.txn_hwm(),
            stamp_hwm: outcome.stamp_hwm(),
            last_batch_id: outcome.last_batch_id(),
            torn_tail: !outcome.tail.is_clean(),
        },
        store,
        accesses,
    })
}

/// The group-commit journal: owns the WAL writer plus the previous
/// batch's snapshot (for delta extraction) and the batch-id sequence.
pub struct Journal {
    wal: Wal,
    next_batch_id: u64,
    last: Snapshot,
}

impl Journal {
    /// Opens the journal for appending. `baseline` is the store state the
    /// *next* batch executes against (the recovered snapshot, or the
    /// initial store on a fresh start); `last_batch_id` continues the
    /// recovered sequence (0 on a fresh start).
    pub fn open(
        dir: Arc<dyn LogDir>,
        config: &DurabilityConfig,
        baseline: Snapshot,
        last_batch_id: u64,
    ) -> Result<Journal, WalError> {
        let wal = Wal::open(dir, config.flush, config.segment_max)?;
        Ok(Journal { wal, next_batch_id: last_batch_id + 1, last: baseline })
    }

    /// Logs one executed batch: redo record + commit marker, flush policy
    /// applied. Returns `true` when the marker was fsynced (the acks that
    /// follow are then crash-proof). On error the batch MUST NOT be
    /// acknowledged — the caller treats it like an engine failure.
    pub fn log_batch(
        &mut self,
        txn_base: u32,
        request_ids: &[u64],
        stamp_hwm: u64,
        snapshot: &Snapshot,
        accesses: &[CommittedAccess],
    ) -> Result<bool, WalError> {
        let deltas: Vec<(EntityId, Value)> =
            snapshot.iter().filter(|&(id, v)| self.last.get(id) != Some(v)).collect();
        let record = BatchRecord {
            batch_id: self.next_batch_id,
            txn_base,
            txn_count: request_ids.len() as u32,
            stamp_hwm,
            request_ids: request_ids.to_vec(),
            deltas,
            accesses: accesses
                .iter()
                .map(|a| WalAccess {
                    txn: a.txn.raw(),
                    entity: a.entity.raw(),
                    exclusive: a.mode == LockMode::Exclusive,
                    stamp: a.stamp,
                })
                .collect(),
        };
        self.wal.append_batch(&record)?;
        let synced = self.wal.commit_batch(self.next_batch_id)?;
        self.next_batch_id += 1;
        self.last = snapshot.clone();
        Ok(synced)
    }

    /// Fsyncs the tail segment unconditionally — the graceful-drain call
    /// that makes SHUTDOWN_ACK imply durability under every policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync()
    }

    /// Writer counters, for `ServerMetrics`.
    pub fn stats(&self) -> WalStats {
        self.wal.stats()
    }
}
