//! A minimal blocking client for the wire protocol — used by the load
//! driver's control plane (stats, history, shutdown), the malformed-frame
//! probe, and the end-to-end tests. The load driver's data plane drives
//! sockets directly for pipelining; this type is deliberately
//! synchronous one-request-at-a-time except for `submit`, which only
//! writes (replies are pulled with [`Client::recv`]).

use crate::wire::{encode_request, frame, read_reply, FrameAssembler, Reply, Request, WireError};
use pr_model::{EntityId, Op};
use pr_par::CommittedAccess;
use std::io::Write;
use std::net::TcpStream;

/// What [`Client::history`] returns: the server's full stamped access
/// history plus the final `(entity, value)` snapshot.
pub type HistoryDump = (Vec<CommittedAccess>, Vec<(EntityId, i64)>);

/// One blocking connection to a pr-server.
pub struct Client {
    stream: TcpStream,
    assembler: FrameAssembler,
    next_id: u64,
}

impl Client {
    /// Connects (with `TCP_NODELAY`; the protocol is request/response
    /// and Nagle would serialise pipelining on round trips).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, assembler: FrameAssembler::new(), next_id: 0 })
    }

    /// Writes one `SUBMIT` frame (no waiting) and returns its request id.
    pub fn submit(&mut self, ops: Vec<Op>) -> std::io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        self.send(&Request::Submit { request_id: id, ops })?;
        Ok(id)
    }

    /// Writes any request frame.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.stream.write_all(&frame(&encode_request(request)))
    }

    /// Writes raw bytes, bypassing the framing layer — the malformed
    /// probe's tool.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Blocks for the next reply frame.
    pub fn recv(&mut self) -> std::io::Result<Result<Reply, WireError>> {
        read_reply(&mut self.stream, &mut self.assembler)
    }

    /// `STATS` round trip. Must not be called with submits in flight —
    /// the next reply is assumed to be the stats reply.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Ok(Reply::StatsReply { json }) => Ok(json),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// `HISTORY` round trip: reassembles all chunks into the full access
    /// history and the final snapshot. Same no-in-flight caveat as
    /// [`Client::stats`].
    pub fn history(&mut self) -> std::io::Result<HistoryDump> {
        self.send(&Request::History)?;
        let mut all = Vec::new();
        loop {
            match self.recv()? {
                Ok(Reply::HistoryChunk { last, accesses, snapshot }) => {
                    all.extend(accesses);
                    if last {
                        return Ok((all, snapshot));
                    }
                }
                other => return Err(unexpected("HistoryChunk", &other)),
            }
        }
    }

    /// `SHUTDOWN` round trip; returns the server's lifetime commit count.
    pub fn shutdown(&mut self) -> std::io::Result<u64> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Ok(Reply::ShutdownAck { commits }) => Ok(commits),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }

    /// Splits into independently owned read/write halves (the load
    /// driver's reader thread takes one).
    pub fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Bounds every blocking read — the malformed-frame probe uses this
    /// so a server that wrongly hangs turns into a visible timeout.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Half-closes the write side (sends FIN); the read side stays open
    /// for whatever the server still sends.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

fn unexpected(wanted: &str, got: &impl std::fmt::Debug) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("expected {wanted}, got {got:?}"))
}
