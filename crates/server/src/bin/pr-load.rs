//! The pr-load binary: closed-loop multi-client load against a pr-server,
//! with the post-run serializability oracle, the committed bench grid,
//! the CI perf gate, the malformed-frame probe, and the nightly soak.
//!
//! ```text
//! cargo run -p pr-server --release --bin pr-load -- --clients 12288 --zipf 120
//! cargo run -p pr-server --release --bin pr-load -- --bench
//! cargo run -p pr-server --release --bin pr-load -- --gate-server BENCH_server.json
//! ```
//!
//! Exit codes: 0 success (run clean and oracle green, gate passed, probe
//! contract held), 1 failure, 2 usage error.

use pr_core::{GrantPolicy, LogHistogram, StrategyKind, SystemConfig, VictimPolicyKind};
use pr_model::Value;
use pr_par::{run_parallel, ParConfig};
use pr_server::load::oracle_check;
use pr_server::{Client, LoadConfig, LoadResult, Server, ServerConfig};
use pr_sim::generator::{GeneratorConfig, ProgramGenerator};
use pr_sim::oracle::OracleReport;
use pr_storage::GlobalStore;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: pr-load [MODE] [OPTIONS]
modes (default: drive one load cell and oracle-check it)
  --bench              run the committed bench grid, write BENCH_server.json
  --gate-server PATH   perf gate: calibrated live re-measure vs the committed grid
  --gate-durability PATH  durability gate: flush-policy rows + live per-batch re-measure
  --crash-soak N       seeded in-process crash-injection battery (N cases)
  --probe-malformed ADDR  malformed-frame protocol probe (exit 0 = contract held)
  --soak               extended randomized soak, multi-process, both policies
  --shutdown ADDR      drain a live server and report its commit count
  --child              internal: one process's share of a --procs run
options
  --connect ADDR       drive an already-running server instead of self-hosting
  --clients N          logical clients (default 512)
  --txns N             transactions per client (default 4)
  --entities N         entity universe size (default 256; must match the server)
  --init V             initial entity value (default 100; must match the server)
  --zipf CENTI         Zipf exponent x100 for entity skew (default 0)
  --think-us N         mean client think time, microseconds (default 500)
  --clients-per-conn N logical clients multiplexed per TCP connection (default 256)
  --seed N             workload seed (default 1)
  --client-base N      first global client id (child mode)
  --procs N            worker processes; >1 self-hosts and fans out (default 1)
  --policy NAME        self-hosted grant policy: barging | fair-queue | ordered
  --strategy NAME      self-hosted rollback strategy:
                       total | mcs | sdg | repair | bounded-K (default mcs)
  --threads N          self-hosted engine threads per batch (default 8)
  --batch-max N        self-hosted group-commit flush threshold (default 256)
  --batch-deadline-us N  self-hosted group-commit deadline (default 2000)
  --out PATH           bench output path (default BENCH_server.json)
  --no-oracle          skip the post-run serializability check
  --wal DIR            self-hosted server writes a redo log to DIR
  --wal-flush POLICY   fsync policy for --wal: per-batch | every-N | off";

enum Mode {
    Run,
    Bench,
    Gate(std::path::PathBuf),
    GateDurability(std::path::PathBuf),
    CrashSoak(usize),
    Probe(String),
    Soak,
    Shutdown(String),
    Child,
}

struct Options {
    mode: Mode,
    connect: Option<String>,
    load: LoadConfig,
    policy: GrantPolicy,
    strategy: StrategyKind,
    threads: usize,
    batch_max: usize,
    batch_deadline_us: u64,
    procs: usize,
    out: std::path::PathBuf,
    oracle: bool,
    durability: pr_server::DurabilityConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        mode: Mode::Run,
        connect: None,
        load: LoadConfig::default(),
        policy: GrantPolicy::FairQueue,
        strategy: StrategyKind::Mcs,
        threads: 8,
        batch_max: 256,
        batch_deadline_us: 2_000,
        procs: 1,
        out: std::path::PathBuf::from("BENCH_server.json"),
        oracle: true,
        durability: pr_server::DurabilityConfig::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--bench" => o.mode = Mode::Bench,
            "--gate-server" => o.mode = Mode::Gate(value("--gate-server")?.into()),
            "--gate-durability" => {
                o.mode = Mode::GateDurability(value("--gate-durability")?.into())
            }
            "--crash-soak" => {
                o.mode = Mode::CrashSoak(
                    value("--crash-soak")?.parse().map_err(|_| "--crash-soak needs a count")?,
                )
            }
            "--probe-malformed" => o.mode = Mode::Probe(value("--probe-malformed")?.into()),
            "--soak" => o.mode = Mode::Soak,
            "--shutdown" => o.mode = Mode::Shutdown(value("--shutdown")?.into()),
            "--child" => o.mode = Mode::Child,
            "--connect" => o.connect = Some(value("--connect")?.into()),
            "--clients" => {
                o.load.clients =
                    value("--clients")?.parse().map_err(|_| "--clients needs a count")?
            }
            "--txns" => {
                o.load.txns_per_client =
                    value("--txns")?.parse().map_err(|_| "--txns needs a count")?
            }
            "--entities" => {
                o.load.entities =
                    value("--entities")?.parse().map_err(|_| "--entities needs a count")?
            }
            "--init" => {
                o.load.init = value("--init")?.parse().map_err(|_| "--init needs an integer")?
            }
            "--zipf" => {
                o.load.zipf_centi =
                    value("--zipf")?.parse().map_err(|_| "--zipf needs centi-exponent")?
            }
            "--think-us" => {
                o.load.think_us =
                    value("--think-us")?.parse().map_err(|_| "--think-us needs microseconds")?
            }
            "--clients-per-conn" => {
                o.load.clients_per_conn = value("--clients-per-conn")?
                    .parse()
                    .map_err(|_| "--clients-per-conn needs a count")?
            }
            "--seed" => o.load.seed = value("--seed")?.parse().map_err(|_| "--seed needs a u64")?,
            "--client-base" => {
                o.load.client_base =
                    value("--client-base")?.parse().map_err(|_| "--client-base needs a count")?
            }
            "--procs" => {
                o.procs = value("--procs")?.parse().map_err(|_| "--procs needs a count")?
            }
            "--policy" => {
                o.policy = match value("--policy")? {
                    "barging" => GrantPolicy::Barging,
                    "fair-queue" => GrantPolicy::FairQueue,
                    "ordered" => GrantPolicy::Ordered,
                    other => return Err(format!("unknown grant policy {other:?}")),
                }
            }
            "--strategy" => {
                let name = value("--strategy")?;
                o.strategy = StrategyKind::parse(name)
                    .ok_or_else(|| format!("unknown strategy {name:?}"))?;
            }
            "--threads" => {
                o.threads = value("--threads")?.parse().map_err(|_| "--threads needs a count")?
            }
            "--batch-max" => {
                o.batch_max =
                    value("--batch-max")?.parse().map_err(|_| "--batch-max needs a count")?
            }
            "--batch-deadline-us" => {
                o.batch_deadline_us = value("--batch-deadline-us")?
                    .parse()
                    .map_err(|_| "--batch-deadline-us needs microseconds")?
            }
            "--out" => o.out = value("--out")?.into(),
            "--no-oracle" => o.oracle = false,
            "--wal" => o.durability.dir = Some(value("--wal")?.into()),
            "--wal-flush" => o.durability.flush = value("--wal-flush")?.parse()?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if o.procs == 0 {
        return Err("--procs needs at least 1".into());
    }
    Ok(o)
}

fn server_config(o: &Options) -> ServerConfig {
    let mut system = SystemConfig::new(o.strategy, VictimPolicyKind::PartialOrder);
    system.grant_policy = o.policy;
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        entities: o.load.entities,
        init: o.load.init,
        threads: o.threads,
        shards: 0,
        system,
        fast_path: true,
        batch_max: o.batch_max,
        batch_deadline: Duration::from_micros(o.batch_deadline_us),
        durability: o.durability.clone(),
    }
}

/// Fans the client range out over `procs` child processes (re-exec of
/// this binary in `--child` mode) and merges their results. Children
/// report their commit mapping and histogram raw parts over stdout —
/// compact, and enough for the parent to run the oracle.
fn run_multiproc(cfg: &LoadConfig, procs: usize) -> Result<LoadResult, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let share = cfg.clients.div_ceil(procs);
    let mut children = Vec::new();
    let mut first = 0usize;
    while first < cfg.clients {
        let count = share.min(cfg.clients - first);
        let child = std::process::Command::new(&exe)
            .args([
                "--child".to_string(),
                "--connect".to_string(),
                cfg.addr.clone(),
                "--clients".to_string(),
                count.to_string(),
                "--client-base".to_string(),
                (cfg.client_base + first).to_string(),
                "--txns".to_string(),
                cfg.txns_per_client.to_string(),
                "--entities".to_string(),
                cfg.entities.to_string(),
                "--init".to_string(),
                cfg.init.to_string(),
                "--zipf".to_string(),
                cfg.zipf_centi.to_string(),
                "--think-us".to_string(),
                cfg.think_us.to_string(),
                "--clients-per-conn".to_string(),
                cfg.clients_per_conn.to_string(),
                "--seed".to_string(),
                cfg.seed.to_string(),
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn child: {e}"))?;
        children.push(child);
        first += count;
    }
    let mut merged = LoadResult::default();
    for child in children {
        let out = child.wait_with_output().map_err(|e| format!("child wait: {e}"))?;
        if !out.status.success() {
            return Err(format!("child exited with {}", out.status));
        }
        let text = String::from_utf8_lossy(&out.stdout);
        merged.merge(&parse_child_output(&text)?);
    }
    Ok(merged)
}

/// Serialises one child's result for the parent: the commit mapping (one
/// line per commit) and a single summary line carrying the histogram's
/// raw parts.
fn print_child_result(result: &LoadResult) {
    let mut out = String::new();
    for &(txn, g, seq) in &result.mapping {
        let _ = writeln!(out, "map {txn} {g} {seq}");
    }
    let buckets: Vec<String> = result.latency.bucket_counts().iter().map(u64::to_string).collect();
    let _ = writeln!(
        out,
        "child-result commits={} aborted={} elapsed_us={} hist_sum={} hist_max={} hist_buckets={}",
        result.commits,
        result.aborted,
        result.elapsed.as_micros(),
        result.latency.sum(),
        result.latency.max(),
        buckets.join(",")
    );
    print!("{out}");
}

fn kv_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("{key}=");
    let at = line.find(&pat).ok_or_else(|| format!("child result missing {key}"))? + pat.len();
    let rest = &line[at..];
    Ok(rest.split_whitespace().next().unwrap_or(rest))
}

fn parse_child_output(text: &str) -> Result<LoadResult, String> {
    let mut result = LoadResult::default();
    let mut summarised = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("map ") {
            let mut it = rest.split_whitespace();
            let mut next = || {
                it.next()
                    .and_then(|t| t.parse::<u32>().ok())
                    .ok_or_else(|| format!("malformed map line: {line}"))
            };
            let (txn, g, seq) = (next()?, next()?, next()?);
            result.mapping.push((txn, g, seq));
        } else if line.starts_with("child-result ") {
            let int = |key: &str| -> Result<u64, String> {
                kv_field(line, key)?.parse().map_err(|_| format!("bad {key} in child result"))
            };
            result.commits = int("commits")?;
            result.aborted = int("aborted")?;
            result.elapsed = Duration::from_micros(int("elapsed_us")?);
            let sum = int("hist_sum")?;
            let max = int("hist_max")?;
            let buckets: Vec<u64> = kv_field(line, "hist_buckets")?
                .split(',')
                .map(|t| t.parse().map_err(|_| "bad hist bucket".to_string()))
                .collect::<Result<_, _>>()?;
            result.latency = LogHistogram::from_raw_parts(buckets, sum, max);
            summarised = true;
        }
    }
    if !summarised {
        return Err("child produced no result line".into());
    }
    Ok(result)
}

/// What one fully checked cell produced, bench-row shaped.
struct CellOutcome {
    result: LoadResult,
    report: Option<OracleReport>,
    batches: u64,
}

/// Drives one cell end to end: self-host (or connect), run the closed
/// loop, fetch the history, run the oracle, and — when self-hosted —
/// drain the server and assert quiescence.
fn run_cell(o: &Options) -> Result<CellOutcome, String> {
    let mut cfg = o.load.clone();
    let server = match &o.connect {
        Some(addr) => {
            cfg.addr = addr.clone();
            None
        }
        None => {
            let server =
                Server::start(server_config(o)).map_err(|e| format!("server start: {e}"))?;
            cfg.addr = server.local_addr().to_string();
            Some(server)
        }
    };

    let result =
        if o.procs > 1 { run_multiproc(&cfg, o.procs)? } else { pr_server::run_load(&cfg)? };

    let mut ctl = Client::connect(&cfg.addr).map_err(|e| format!("control connect: {e}"))?;
    let report = if o.oracle {
        let (accesses, snapshot) = ctl.history().map_err(|e| format!("history fetch: {e}"))?;
        Some(oracle_check(&cfg, &result.mapping, &accesses, &snapshot)?)
    } else {
        None
    };

    let mut batches = 0;
    if let Some(server) = server {
        let commits = ctl.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        if commits != result.commits {
            return Err(format!(
                "server acked {commits} commits but the driver saw {}",
                result.commits
            ));
        }
        let summary = server.wait().map_err(|e| format!("server drain: {e}"))?;
        batches = summary.batches;
    }
    Ok(CellOutcome { result, report, batches })
}

fn print_cell(o: &Options, cell: &CellOutcome) {
    let r = &cell.result;
    println!(
        "pr-load: {} clients zipf {:.2} policy {}: {} commits, {} aborted in {:.2}s \
         ({:.0} tx/s) latency p50={}us p95={}us p99={}us{}{}",
        o.load.clients,
        f64::from(o.load.zipf_centi) / 100.0,
        o.policy.name(),
        r.commits,
        r.aborted,
        r.elapsed.as_secs_f64(),
        r.throughput(),
        r.latency.p50(),
        r.latency.p95(),
        r.latency.p99(),
        match &cell.report {
            Some(rep) => format!(
                ", oracle green ({} accesses, {} conflict edges)",
                rep.accesses, rep.conflict_edges
            ),
            None => String::new(),
        },
        if cell.batches > 0 { format!(", {} batches", cell.batches) } else { String::new() },
    );
}

fn run_default(o: &Options) -> ExitCode {
    match run_cell(o) {
        Ok(cell) => {
            print_cell(o, &cell);
            let expected = (o.load.clients * o.load.txns_per_client) as u64;
            if cell.result.commits != expected {
                eprintln!(
                    "pr-load: expected {expected} commits, saw {} ({} aborted)",
                    cell.result.commits, cell.result.aborted
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pr-load: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Bench grid
// ---------------------------------------------------------------------------

/// `(clients, zipf_centi, policy, txns_per_client, clients_per_conn,
/// wal)` — the committed grid. The 12288-client cell is the ISSUE's 10k+
/// bar; it multiplexes wider so connection count stays modest. The last
/// three cells hold the workload fixed and sweep the durability axis:
/// `per-batch` fsyncs once per group commit, `every-8` amortises further,
/// and `per-txn` (batch_max 1, fsync each) is the degenerate ungrouped
/// baseline group commit exists to beat.
const BENCH_CELLS: &[(usize, u16, &str, usize, usize, &str)] = &[
    (512, 0, "fair-queue", 4, 256, "off"),
    (512, 120, "fair-queue", 4, 256, "off"),
    (4096, 0, "fair-queue", 4, 256, "off"),
    (4096, 120, "fair-queue", 4, 256, "off"),
    (12288, 120, "fair-queue", 2, 1024, "off"),
    (512, 120, "ordered", 4, 256, "off"),
    (512, 120, "fair-queue", 4, 256, "per-batch"),
    (512, 120, "fair-queue", 4, 256, "every-8"),
    (512, 120, "fair-queue", 4, 256, "per-txn"),
];

/// Scratch WAL directory for one bench cell (unique per process + cell,
/// removed around each run so stale segments never replay into a bench).
fn bench_wal_dir(wal: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pr-load-bench-wal-{}-{wal}", std::process::id()))
}

struct BenchRow {
    clients: usize,
    zipf_centi: u16,
    policy: String,
    wal: String,
    txns: u64,
    commits: u64,
    elapsed_us: u128,
    throughput: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    batches: u64,
    oracle_accesses: usize,
    conflict_edges: usize,
}

/// A fixed in-process engine workload whose throughput calibrates this
/// machine against the one that committed the grid: the gate compares
/// server numbers only after normalising by the calibration ratio, so a
/// slower CI box does not read as a regression.
fn calibrate() -> Result<f64, String> {
    // Single-threaded on purpose: an oversubscribed multi-thread run
    // carries scheduler noise larger than the machine-speed signal the
    // calibration exists to capture.
    let config = ParConfig {
        threads: 1,
        shards: 0,
        system: SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::PartialOrder),
        fast_path: true,
    };
    let gen_config =
        GeneratorConfig { num_entities: 64, skew_centi: 120, ..GeneratorConfig::default() };
    let mut best = 0.0f64;
    for attempt in 0..5u64 {
        let programs = ProgramGenerator::new(gen_config, 7 + attempt).generate_workload(256);
        let store = GlobalStore::with_entities(64, Value::new(100));
        let start = Instant::now();
        let outcome =
            run_parallel(&programs, store, &config).map_err(|e| format!("calibration: {e}"))?;
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            best = best.max(outcome.commits() as f64 / secs);
        }
    }
    if best <= 0.0 {
        return Err("calibration produced zero throughput".into());
    }
    Ok(best)
}

fn cell_options(o: &Options, cell: &(usize, u16, &str, usize, usize, &str)) -> Options {
    let &(clients, zipf, policy, txns, per_conn, wal) = cell;
    // The durability axis: "off" disables the journal; "per-txn" is
    // per-batch flushing with group commit disabled (every transaction
    // its own batch and fsync) — the baseline the amortised cells beat.
    let (durability, batch_max) = match wal {
        "off" => (pr_server::DurabilityConfig::default(), o.batch_max),
        _ => {
            let flush = match wal {
                "per-txn" => "per-batch",
                other => other,
            };
            let durability = pr_server::DurabilityConfig {
                dir: Some(bench_wal_dir(wal)),
                flush: flush.parse().expect("bench wal cells carry valid policies"),
                ..pr_server::DurabilityConfig::default()
            };
            (durability, if wal == "per-txn" { 1 } else { o.batch_max })
        }
    };
    Options {
        mode: Mode::Run,
        connect: None,
        load: LoadConfig {
            clients,
            zipf_centi: zipf,
            txns_per_client: txns,
            clients_per_conn: per_conn,
            ..o.load.clone()
        },
        policy: match policy {
            "ordered" => GrantPolicy::Ordered,
            "barging" => GrantPolicy::Barging,
            _ => GrantPolicy::FairQueue,
        },
        strategy: o.strategy,
        threads: o.threads,
        batch_max,
        batch_deadline_us: o.batch_deadline_us,
        procs: 1,
        out: o.out.clone(),
        oracle: true,
        durability,
    }
}

fn bench_row(o: &Options, cell: &CellOutcome, wal: &str) -> BenchRow {
    let r = &cell.result;
    let report = cell.report.as_ref();
    BenchRow {
        clients: o.load.clients,
        zipf_centi: o.load.zipf_centi,
        policy: o.policy.name().to_string(),
        wal: wal.to_string(),
        txns: (o.load.clients * o.load.txns_per_client) as u64,
        commits: r.commits,
        elapsed_us: r.elapsed.as_micros(),
        throughput: r.throughput(),
        p50_us: r.latency.p50(),
        p95_us: r.latency.p95(),
        p99_us: r.latency.p99(),
        batches: cell.batches,
        oracle_accesses: report.map_or(0, |rep| rep.accesses),
        conflict_edges: report.map_or(0, |rep| rep.conflict_edges),
    }
}

/// Serialises the grid as `BENCH_server.json` (hand-rolled JSON, same
/// discipline as `BENCH_parallel.json`: static keys, numeric values, one
/// row per line so the gate can scrape lines).
fn server_json(calib: f64, rows: &[BenchRow]) -> String {
    let mut out = String::from(
        "{\n  \"schema\": \"bench-server-v1\",\n  \"units\": {\
         \"throughput\": \"committed transactions per second, wall clock\", \
         \"latency\": \"end-to-end submit-to-reply, microseconds\", \
         \"calib_throughput\": \"fixed in-process engine workload, tx/s\"},\n",
    );
    let _ = writeln!(out, "  \"calib_throughput\": {calib:.1},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"clients\":{},\"zipf_centi\":{},\"policy\":\"{}\",\"wal\":\"{}\",\
             \"txns\":{},\"commits\":{},\"elapsed_us\":{},\
             \"throughput\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
             \"batches\":{},\"oracle_accesses\":{},\"conflict_edges\":{}}}{}",
            r.clients,
            r.zipf_centi,
            r.policy,
            r.wal,
            r.txns,
            r.commits,
            r.elapsed_us,
            r.throughput,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.batches,
            r.oracle_accesses,
            r.conflict_edges,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_bench(o: &Options) -> ExitCode {
    let calib = match calibrate() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pr-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pr-load: calibration {calib:.0} tx/s (fixed in-process workload)");
    let mut rows = Vec::new();
    for cell in BENCH_CELLS {
        let wal = cell.5;
        if wal != "off" {
            let _ = std::fs::remove_dir_all(bench_wal_dir(wal));
        }
        let cell_o = cell_options(o, cell);
        let outcome = run_cell(&cell_o);
        if wal != "off" {
            let _ = std::fs::remove_dir_all(bench_wal_dir(wal));
        }
        match outcome {
            Ok(out) => {
                print_cell(&cell_o, &out);
                let expected = (cell_o.load.clients * cell_o.load.txns_per_client) as u64;
                if out.result.commits != expected {
                    eprintln!(
                        "pr-load: bench cell lost transactions: expected {expected}, \
                         committed {} ({} aborted)",
                        out.result.commits, out.result.aborted
                    );
                    return ExitCode::FAILURE;
                }
                rows.push(bench_row(&cell_o, &out, wal));
            }
            Err(e) => {
                eprintln!("pr-load: bench cell failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&o.out, server_json(calib, &rows)) {
        eprintln!("pr-load: cannot write {}: {e}", o.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} rows, all oracle-checked)", o.out.display(), rows.len());
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Perf gate
// ---------------------------------------------------------------------------

/// Extracts `"key":value` from one serialized row — same scraping the
/// scaling gate uses; valid because this binary wrote the file.
fn row_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').parse().ok()
}

fn row_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The server perf gate: re-measure the committed 4096-client / zipf 1.2
/// / fair-queue cell live and fail on >20% calibrated regression in
/// throughput or p99. Calibration (a fixed in-process engine workload on
/// both sides) normalises out machine speed, so the bar tracks the
/// server stack itself — framing, batching, group commit — not the CI
/// box of the day.
fn run_gate(o: &Options, path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pr-load: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // Line-by-line: the units stanza also mentions the key (with a
    // string value that fails to parse), so scan for the numeric line.
    let Some(committed_calib) =
        text.lines().find_map(|l| row_field(l, "calib_throughput")).filter(|c| *c > 0.0)
    else {
        eprintln!("pr-load: no calib_throughput in {}", path.display());
        return ExitCode::FAILURE;
    };
    let gate_cell = &BENCH_CELLS[3]; // 4096 clients, zipf 1.2, fair-queue, wal off
    let committed = text.lines().find(|l| {
        row_field(l, "clients") == Some(gate_cell.0 as f64)
            && row_field(l, "zipf_centi") == Some(f64::from(gate_cell.1))
            && row_str_field(l, "policy").as_deref() == Some(gate_cell.2)
            && row_str_field(l, "wal").as_deref() == Some(gate_cell.5)
    });
    let Some(committed) = committed else {
        eprintln!("pr-load: gate cell not found in {}", path.display());
        return ExitCode::FAILURE;
    };
    let (Some(committed_thr), Some(committed_p99)) =
        (row_field(committed, "throughput"), row_field(committed, "p99_us"))
    else {
        eprintln!("pr-load: malformed gate row in {}", path.display());
        return ExitCode::FAILURE;
    };

    let live_calib = match calibrate() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pr-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    // scale < 1 means this machine is slower than the one that committed
    // the grid: expect proportionally less throughput and more latency.
    // Clamped to at most 1.0 — a faster (or noisily fast-reading) box
    // must never *raise* the bars above the committed numbers — and to
    // at least 0.25 so a bogus near-zero calibration can't wave a real
    // regression through.
    let scale = (live_calib / committed_calib).clamp(0.25, 1.0);
    let need_thr = 0.8 * committed_thr * scale;
    let allow_p99 = 1.2 * committed_p99 / scale;

    // Two attempts, pass on either: single-run server cells on a shared
    // box carry scheduler noise the calibration cannot see.
    let mut last = String::new();
    for attempt in 1..=2 {
        let cell_o = cell_options(o, gate_cell);
        let cell = match run_cell(&cell_o) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("pr-load: gate cell failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let thr = cell.result.throughput();
        let p99 = cell.result.latency.p99() as f64;
        if thr >= need_thr && p99 <= allow_p99 {
            println!(
                "server gate passed (attempt {attempt}): {thr:.0} tx/s >= {need_thr:.0} \
                 and p99 {p99:.0}us <= {allow_p99:.0}us \
                 (committed {committed_thr:.0} tx/s / {committed_p99:.0}us, \
                 calibration scale {scale:.2})"
            );
            return ExitCode::SUCCESS;
        }
        last = format!(
            "{thr:.0} tx/s (need >= {need_thr:.0}), p99 {p99:.0}us (allow <= {allow_p99:.0}us)"
        );
        eprintln!("pr-load: gate attempt {attempt} outside bars: {last}");
    }
    eprintln!(
        "pr-load: SERVER GATE: live cell regressed vs committed grid \
         (committed {committed_thr:.0} tx/s / p99 {committed_p99:.0}us, \
         calibration scale {scale:.2}, live {last})"
    );
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// Durability gate
// ---------------------------------------------------------------------------

/// The durability arm of the perf gate. Two checks against the committed
/// grid's flush-policy cells (512 clients / zipf 1.2 / fair-queue):
///
/// 1. **Amortisation holds in the committed numbers**: the `per-batch`
///    cell (one fsync per group commit) must out-run the `per-txn` cell
///    (group commit disabled, one fsync per transaction). If it doesn't,
///    group commit stopped paying for itself and the grid must not be
///    committed.
/// 2. **The journalled path hasn't regressed**: re-measure the
///    `per-batch` cell live with the same calibrated bars the server
///    gate uses (≥80% throughput, ≤120% p99 after machine-speed
///    normalisation, best of two attempts).
fn run_gate_durability(o: &Options, path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pr-load: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let find_row = |wal: &str| {
        text.lines().find(|l| {
            row_field(l, "clients") == Some(512.0)
                && row_field(l, "zipf_centi") == Some(120.0)
                && row_str_field(l, "policy").as_deref() == Some("fair-queue")
                && row_str_field(l, "wal").as_deref() == Some(wal)
        })
    };
    let (Some(per_batch), Some(per_txn)) = (find_row("per-batch"), find_row("per-txn")) else {
        eprintln!(
            "pr-load: durability rows (wal per-batch / per-txn) not found in {}",
            path.display()
        );
        return ExitCode::FAILURE;
    };
    let (Some(pb_thr), Some(pb_p99), Some(pt_thr)) = (
        row_field(per_batch, "throughput"),
        row_field(per_batch, "p99_us"),
        row_field(per_txn, "throughput"),
    ) else {
        eprintln!("pr-load: malformed durability rows in {}", path.display());
        return ExitCode::FAILURE;
    };
    if pb_thr <= pt_thr {
        eprintln!(
            "pr-load: DURABILITY GATE: group commit is not amortising fsyncs — \
             committed per-batch {pb_thr:.0} tx/s <= per-txn {pt_thr:.0} tx/s"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "durability grid sane: per-batch {pb_thr:.0} tx/s > per-txn {pt_thr:.0} tx/s \
         ({:.1}x fsync amortisation)",
        pb_thr / pt_thr
    );

    let Some(committed_calib) =
        text.lines().find_map(|l| row_field(l, "calib_throughput")).filter(|c| *c > 0.0)
    else {
        eprintln!("pr-load: no calib_throughput in {}", path.display());
        return ExitCode::FAILURE;
    };
    let live_calib = match calibrate() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pr-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = (live_calib / committed_calib).clamp(0.25, 1.0);
    let need_thr = 0.8 * pb_thr * scale;
    let allow_p99 = 1.2 * pb_p99 / scale;
    let gate_cell = &BENCH_CELLS[6]; // 512 clients, zipf 1.2, fair-queue, per-batch
    let mut last = String::new();
    for attempt in 1..=2 {
        let _ = std::fs::remove_dir_all(bench_wal_dir(gate_cell.5));
        let cell_o = cell_options(o, gate_cell);
        let cell = run_cell(&cell_o);
        let _ = std::fs::remove_dir_all(bench_wal_dir(gate_cell.5));
        let cell = match cell {
            Ok(c) => c,
            Err(e) => {
                eprintln!("pr-load: durability gate cell failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let thr = cell.result.throughput();
        let p99 = cell.result.latency.p99() as f64;
        if thr >= need_thr && p99 <= allow_p99 {
            println!(
                "durability gate passed (attempt {attempt}): per-batch {thr:.0} tx/s >= \
                 {need_thr:.0} and p99 {p99:.0}us <= {allow_p99:.0}us \
                 (committed {pb_thr:.0} tx/s / {pb_p99:.0}us, calibration scale {scale:.2})"
            );
            return ExitCode::SUCCESS;
        }
        last = format!(
            "{thr:.0} tx/s (need >= {need_thr:.0}), p99 {p99:.0}us (allow <= {allow_p99:.0}us)"
        );
        eprintln!("pr-load: durability gate attempt {attempt} outside bars: {last}");
    }
    eprintln!(
        "pr-load: DURABILITY GATE: journalled per-batch cell regressed vs committed grid \
         (committed {pb_thr:.0} tx/s / p99 {pb_p99:.0}us, calibration scale {scale:.2}, \
         live {last})"
    );
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// Crash soak
// ---------------------------------------------------------------------------

/// The nightly crash-injection battery: `cases` seeded in-process crash
/// points over the [`pr_server::crashsim`] harness, sweeping flush
/// policy, grant policy, engine threads, page-cache-loss mode, and the
/// crash byte offset. Every case asserts the full durability contract
/// (acknowledged ⇒ replayed within the policy's loss window,
/// all-or-nothing recovery, idempotent replay). A failure writes its
/// reproduction recipe to `crash-soak-failure.txt` for artifact upload.
fn run_crash_soak(o: &Options, cases: usize) -> ExitCode {
    use pr_server::crashsim::{check_crash_case, run_to_crash, SimConfig};
    use pr_storage::wal::MemDir;

    let start = Instant::now();
    let mut crashed = 0usize;
    let mut completed = 0usize;
    for i in 0..cases {
        let seed = o.load.seed.wrapping_add(i as u64);
        let flush =
            ["per-batch", "every-4", "off"][i % 3].parse().expect("soak flush policies are valid");
        let mut system = SystemConfig::new(o.strategy, VictimPolicyKind::PartialOrder);
        system.grant_policy = [GrantPolicy::FairQueue, GrantPolicy::Ordered][(i / 3) % 2];
        let lose_unsynced = (i / 6) % 2 == 1;
        let cfg = SimConfig { seed, flush, system, threads: 1 + i % 2, ..SimConfig::default() };

        // A dry run of the same case shape tells us how many bytes the
        // log grows to, so the seeded crash budget always lands inside
        // (or just past — the run-to-completion case) the real log.
        let fail = |why: String| {
            let body = format!(
                "pr-load crash-soak failure\ncase: {i}\nseed: {seed}\nflush: {flush}\n\
                 policy: {}\nthreads: {}\nlose_unsynced: {lose_unsynced}\nreason: {why}\n\
                 replay: pr-load --crash-soak {} --seed {}\n",
                system.grant_policy.name(),
                1 + i % 2,
                i + 1,
                o.load.seed,
            );
            let path = "crash-soak-failure.txt";
            if std::fs::write(path, &body).is_ok() {
                eprintln!("pr-load: wrote failing case to {path}");
            }
            eprintln!("pr-load: CRASH SOAK FAILED (case {i}): {why}");
            ExitCode::FAILURE
        };
        let dry = MemDir::new();
        if let Err(e) = run_to_crash(&cfg, &dry) {
            return fail(format!("dry run: {e}"));
        }
        let total = dry.persisted_bytes().max(1);
        let budget =
            1 + seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) % (total + total / 8);
        match check_crash_case(&cfg, budget, lose_unsynced) {
            Ok(v) if v.crashed => crashed += 1,
            Ok(_) => completed += 1,
            Err(e) => return fail(e),
        }
        if (i + 1) % 32 == 0 {
            println!(
                "crash soak: {}/{cases} cases green ({crashed} crashed, {completed} complete)",
                i + 1
            );
        }
    }
    println!(
        "crash soak passed: {cases} cases green ({crashed} crashed mid-log, {completed} ran \
         to drain) in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Malformed-frame probe
// ---------------------------------------------------------------------------

fn expect_error_and_close(c: &mut Client, want_code: u8, what: &str) -> Result<(), String> {
    match c.recv() {
        Ok(Ok(pr_server::Reply::Error { code, message })) if code == want_code => {
            println!("  {what}: rejected with protocol error {code} ({message})");
        }
        other => return Err(format!("{what}: expected error {want_code}, got {other:?}")),
    }
    // The server must close after a protocol error; a subsequent read
    // sees EOF, not a hang.
    match c.recv() {
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(()),
        other => Err(format!("{what}: expected connection close, got {other:?}")),
    }
}

/// Exercises the malformed-input contract against a live server: each
/// probe must draw a typed protocol error (or a clean close), never a
/// hang, and the server must keep serving fresh connections afterwards.
fn run_probe(addr: &str) -> ExitCode {
    let result = (|| -> Result<(), String> {
        let timeout = Some(Duration::from_secs(5));

        // 1. Oversized declaration: 4-byte prefix claiming 2 MiB.
        let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        c.set_read_timeout(timeout).map_err(|e| e.to_string())?;
        c.send_raw(&(2u32 * 1024 * 1024).to_le_bytes()).map_err(|e| e.to_string())?;
        expect_error_and_close(&mut c, 1, "oversized frame")?;

        // 2. Garbage tag inside a well-formed frame.
        let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        c.set_read_timeout(timeout).map_err(|e| e.to_string())?;
        c.send_raw(&[1, 0, 0, 0, 0xEE]).map_err(|e| e.to_string())?;
        expect_error_and_close(&mut c, 2, "garbage tag")?;

        // 3. Truncated frame then half-close: the server must treat the
        // EOF as a clean disconnect (no reply, no hang, no crash).
        let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        c.set_read_timeout(timeout).map_err(|e| e.to_string())?;
        c.send_raw(&[16, 0, 0, 0, 0x01, 0x02, 0x03]).map_err(|e| e.to_string())?;
        c.shutdown_write().map_err(|e| e.to_string())?;
        match c.recv() {
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                println!("  truncated frame: clean close, no reply");
            }
            other => return Err(format!("truncated frame: expected close, got {other:?}")),
        }

        // 4. The server survived all of it: a fresh connection still
        // answers STATS.
        let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        c.set_read_timeout(timeout).map_err(|e| e.to_string())?;
        let stats = c.stats().map_err(|e| format!("post-probe stats: {e}"))?;
        if !stats.contains("\"protocol_errors\"") {
            return Err(format!("post-probe stats reply malformed: {stats}"));
        }
        println!("  server still serving after probes (stats OK)");
        Ok(())
    })();
    match result {
        Ok(()) => {
            println!("malformed-frame probe passed: all rejections typed, no hangs");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pr-load: PROBE FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Soak
// ---------------------------------------------------------------------------

/// The nightly soak: the 10k+-client cell under both grant policies,
/// multi-process, fully oracle-checked. A failure writes the cell's
/// reproduction recipe to `soak-failure-<policy>.txt` for CI artifact
/// upload.
fn run_soak(o: &Options) -> ExitCode {
    let start = Instant::now();
    for policy in [GrantPolicy::FairQueue, GrantPolicy::Ordered] {
        let cell_o = Options {
            mode: Mode::Run,
            connect: None,
            load: LoadConfig {
                clients: 12_288,
                txns_per_client: 2,
                zipf_centi: 120,
                clients_per_conn: 1024,
                ..o.load.clone()
            },
            policy,
            strategy: o.strategy,
            threads: o.threads,
            batch_max: o.batch_max,
            batch_deadline_us: o.batch_deadline_us,
            procs: o.procs.max(2),
            out: o.out.clone(),
            oracle: true,
            durability: o.durability.clone(),
        };
        match run_cell(&cell_o) {
            Ok(cell) => {
                print_cell(&cell_o, &cell);
                let expected = (cell_o.load.clients * cell_o.load.txns_per_client) as u64;
                if cell.result.commits == expected {
                    continue;
                }
                let why = format!(
                    "expected {expected} commits, saw {} ({} aborted)",
                    cell.result.commits, cell.result.aborted
                );
                write_soak_trace(&cell_o, &why);
                eprintln!("pr-load: SOAK FAILED ({}): {why}", policy.name());
                return ExitCode::FAILURE;
            }
            Err(e) => {
                write_soak_trace(&cell_o, &e);
                eprintln!("pr-load: SOAK FAILED ({}): {e}", policy.name());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("soak passed: both policies clean in {:.1}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// Everything needed to replay a failed soak cell by hand: the workload
/// is regenerable from (seed, entities, zipf, txns), so the recipe IS
/// the trace.
fn write_soak_trace(o: &Options, why: &str) {
    let path = format!("soak-failure-{}.txt", o.policy.name());
    let body = format!(
        "pr-load soak failure\n\
         reason: {why}\n\
         policy: {}\nclients: {}\ntxns_per_client: {}\nentities: {}\ninit: {}\n\
         zipf_centi: {}\nthink_us: {}\nclients_per_conn: {}\nseed: {}\nprocs: {}\n\
         threads: {}\nbatch_max: {}\nbatch_deadline_us: {}\n\
         replay: pr-load --clients {} --txns {} --entities {} --zipf {} --seed {} \
         --policy {} --procs {}\n",
        o.policy.name(),
        o.load.clients,
        o.load.txns_per_client,
        o.load.entities,
        o.load.init,
        o.load.zipf_centi,
        o.load.think_us,
        o.load.clients_per_conn,
        o.load.seed,
        o.procs,
        o.threads,
        o.batch_max,
        o.batch_deadline_us,
        o.load.clients,
        o.load.txns_per_client,
        o.load.entities,
        o.load.zipf_centi,
        o.load.seed,
        o.policy.name(),
        o.procs,
    );
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("pr-load: cannot write {path}: {e}");
    } else {
        eprintln!("pr-load: wrote failing trace to {path}");
    }
}

// ---------------------------------------------------------------------------

fn run_shutdown(addr: &str) -> ExitCode {
    match Client::connect(addr).and_then(|mut c| c.shutdown()) {
        Ok(commits) => {
            println!("pr-load: server drained after {commits} commits");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pr-load: shutdown: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_child(o: &Options) -> ExitCode {
    let Some(addr) = &o.connect else {
        eprintln!("pr-load: --child needs --connect");
        return ExitCode::from(2);
    };
    let mut cfg = o.load.clone();
    cfg.addr = addr.clone();
    match pr_server::run_load(&cfg) {
        Ok(result) => {
            print_child_result(&result);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pr-load: child: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pr-load: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match &o.mode {
        Mode::Run => run_default(&o),
        Mode::Bench => run_bench(&o),
        Mode::Gate(path) => run_gate(&o, &path.clone()),
        Mode::GateDurability(path) => run_gate_durability(&o, &path.clone()),
        Mode::CrashSoak(cases) => run_crash_soak(&o, *cases),
        Mode::Probe(addr) => run_probe(addr),
        Mode::Soak => run_soak(&o),
        Mode::Shutdown(addr) => run_shutdown(addr),
        Mode::Child => run_child(&o),
    }
}
