//! The pr-server binary: bind, serve, drain, quiesce, exit.
//!
//! ```text
//! cargo run -p pr-server --release --bin pr-server -- --addr 127.0.0.1:7878
//! ```
//!
//! Prints one `pr-server listening on ADDR …` line once bound (scripts
//! scrape it — with `--addr host:0` the kernel picks the port), then runs
//! until a `SHUTDOWN` request completes the drain protocol. Exit codes:
//! 0 clean shutdown with slab quiescence verified, 1 engine or bind
//! failure, 2 usage error.

use pr_core::{GrantPolicy, StrategyKind, SystemConfig, VictimPolicyKind};
use pr_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: pr-server [OPTIONS]
  --addr HOST:PORT     bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --entities N         entity universe size (default 256)
  --init V             initial entity value (default 100)
  --threads N          engine worker threads per batch (default 8)
  --shards N           lock-table shards (default 0 = auto)
  --strategy NAME      rollback strategy: total | mcs | sdg (default mcs)
  --victim NAME        victim policy: min-cost | partial-order | youngest | causer
  --policy NAME        grant policy: barging | fair-queue | ordered (default fair-queue)
  --batch-max N        group-commit flush threshold (default 256)
  --batch-deadline-us N  group-commit deadline in microseconds (default 2000)
  --no-fast-path       force every lock through the shard-mutex path
  --wal DIR            write-ahead redo log directory (durability on)
  --recover DIR        replay DIR's durable prefix before serving (implies --wal DIR)
  --wal-flush POLICY   fsync policy: per-batch | every-N | off (default per-batch)";

struct Options {
    config: ServerConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".into(), ..ServerConfig::default() };
    let mut system = SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
    system.grant_policy = GrantPolicy::FairQueue;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.into(),
            "--entities" => {
                config.entities =
                    value("--entities")?.parse().map_err(|_| "--entities needs a count")?
            }
            "--init" => {
                config.init = value("--init")?.parse().map_err(|_| "--init needs an integer")?
            }
            "--threads" => {
                config.threads =
                    value("--threads")?.parse().map_err(|_| "--threads needs a count")?
            }
            "--shards" => {
                config.shards = value("--shards")?.parse().map_err(|_| "--shards needs a count")?
            }
            "--strategy" => {
                system.strategy = match value("--strategy")? {
                    "total" => StrategyKind::Total,
                    "mcs" => StrategyKind::Mcs,
                    "sdg" => StrategyKind::Sdg,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--victim" => {
                system.victim = match value("--victim")? {
                    "min-cost" => VictimPolicyKind::MinCost,
                    "partial-order" => VictimPolicyKind::PartialOrder,
                    "youngest" => VictimPolicyKind::Youngest,
                    "causer" => VictimPolicyKind::ConflictCauser,
                    other => return Err(format!("unknown victim policy {other:?}")),
                }
            }
            "--policy" => {
                system.grant_policy = match value("--policy")? {
                    "barging" => GrantPolicy::Barging,
                    "fair-queue" => GrantPolicy::FairQueue,
                    "ordered" => GrantPolicy::Ordered,
                    other => return Err(format!("unknown grant policy {other:?}")),
                }
            }
            "--batch-max" => {
                config.batch_max =
                    value("--batch-max")?.parse().map_err(|_| "--batch-max needs a count")?
            }
            "--batch-deadline-us" => {
                let us: u64 = value("--batch-deadline-us")?
                    .parse()
                    .map_err(|_| "--batch-deadline-us needs microseconds")?;
                config.batch_deadline = Duration::from_micros(us);
            }
            "--no-fast-path" => config.fast_path = false,
            "--wal" => config.durability.dir = Some(value("--wal")?.into()),
            "--recover" => {
                config.durability.dir = Some(value("--recover")?.into());
                config.durability.recover = true;
            }
            "--wal-flush" => config.durability.flush = value("--wal-flush")?.parse()?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    config.system = system;
    Ok(Options { config })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pr-server: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let batch_max = o.config.batch_max;
    let deadline_us = o.config.batch_deadline.as_micros();
    let strategy = o.config.system.strategy.name();
    let policy = o.config.system.grant_policy.name();
    let entities = o.config.entities;
    let threads = o.config.threads;
    let wal = o
        .config
        .durability
        .dir
        .as_ref()
        .map(|d| format!(" wal={} flush={}", d.display(), o.config.durability.flush));
    let server = match Server::start(o.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pr-server: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The recovery line prints before the listening line scripts scrape,
    // so anything driving the server knows what it resumed from.
    if let Some(r) = server.recovery() {
        println!(
            "pr-server recovered {} txns in {} batches (txn_hwm={} stamp_hwm={} \
             last_batch_id={}{})",
            r.txns,
            r.batches,
            r.txn_hwm,
            r.stamp_hwm,
            r.last_batch_id,
            if r.torn_tail { ", torn tail sealed" } else { "" }
        );
    }
    println!(
        "pr-server listening on {} entities={entities} threads={threads} \
         strategy={strategy} policy={policy} batch_max={batch_max} \
         batch_deadline_us={deadline_us}{}",
        server.local_addr(),
        wal.unwrap_or_default()
    );
    match server.wait() {
        Ok(summary) => {
            println!(
                "pr-server shut down cleanly: {} commits in {} batches, \
                 slab quiescent ({} fast grants, {} inflations)",
                summary.commits, summary.batches, summary.fast.fast_grants, summary.fast.inflations
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pr-server: engine failure: {e}");
            ExitCode::FAILURE
        }
    }
}
