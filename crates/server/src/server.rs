//! The TCP server: accept loop, per-connection readers, and the single
//! batch-executor thread that drives a [`pr_par::Session`].
//!
//! Threading model (std only, no async runtime):
//!
//! * **accept thread** — non-blocking accept loop; hands each connection
//!   a reader thread and a shared writer handle.
//! * **reader threads** (one per connection) — reassemble frames, decode
//!   requests, validate submissions, and push work to the [`Batcher`].
//!   Replies to protocol errors and `STATS` are written directly; all
//!   engine-touching requests go through the executor so the session
//!   stays single-owner.
//! * **executor thread** — pulls batches, runs each through
//!   [`Session::execute`] (one quiescent engine run per batch), and
//!   writes `COMMITTED` replies for the whole batch after the run — that
//!   is the group commit: no client hears success before its whole batch
//!   is durable in the slab.
//!
//! Connection writers are a `Mutex<TcpStream>` per connection: frames
//! are written whole under the lock, so replies from the executor and the
//! reader interleave at frame granularity, never inside a frame.
//!
//! **Shutdown** is the drain protocol the ISSUE's fix demands: the
//! `SHUTDOWN` request sets the refuse-new-work flag, closes the batcher
//! (queued submissions still execute), and the executor — after the final
//! drain — asserts slab quiescence via [`Session::finish`]
//! (`check_quiescent`), replies `SHUTDOWN_ACK`, and returns. Submissions
//! arriving after the flag flips are answered `ABORTED(shutdown)` instead
//! of being silently dropped.

use crate::batch::{Batcher, FlushReason};
use crate::durable::{recover, DurabilityConfig, Journal, Recovery};
use crate::wire::{
    decode_request, encode_reply, frame, AbortReason, FrameAssembler, Reply, Request,
    HISTORY_CHUNK_ACCESSES,
};
use pr_core::{ServerMetrics, SystemConfig};
use pr_model::Value;
use pr_model::{TransactionProgram, TxnId};
use pr_par::{CommittedAccess, FastPathStats, ParConfig, ParError, Session};
use pr_storage::wal::{FsDir, LogDir};
use pr_storage::GlobalStore;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything the server needs to come up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks an ephemeral port;
    /// the bound address is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Entity universe size — entities `0..entities` exist, nothing else.
    pub entities: u32,
    /// Initial value of every entity.
    pub init: i64,
    /// Engine worker threads per batch.
    pub threads: usize,
    /// Lock-table shards (0 = auto).
    pub shards: usize,
    /// Strategy / victim / grant-policy knobs.
    pub system: SystemConfig,
    /// Lock-word fast path on/off.
    pub fast_path: bool,
    /// Batch flush threshold.
    pub batch_max: usize,
    /// Group-commit deadline for partial batches.
    pub batch_deadline: Duration,
    /// Write-ahead-log and crash-recovery knobs.
    pub durability: DurabilityConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            entities: 256,
            init: 100,
            threads: 8,
            shards: 0,
            system: SystemConfig::default(),
            fast_path: true,
            batch_max: 256,
            batch_deadline: Duration::from_millis(2),
            durability: DurabilityConfig::default(),
        }
    }
}

/// What the executor processes, in arrival order within a batch.
enum Work {
    Txn { program: TransactionProgram, request_id: u64, conn: Arc<ConnWriter>, enqueued: Instant },
    History { conn: Arc<ConnWriter> },
    Shutdown { conn: Arc<ConnWriter> },
}

/// The write half of one connection. Frames are written whole under the
/// mutex; write errors mark the peer dead and are not retried (the
/// reader will see the hangup and clean up).
pub struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn send(&self, shared: &Shared, reply: &Reply) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let bytes = frame(&encode_reply(reply));
        let mut stream = self.stream.lock().expect("conn writer poisoned");
        if stream.write_all(&bytes).is_err() {
            self.dead.store(true, Ordering::Relaxed);
            return;
        }
        shared.frames_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by every thread of one server instance. Hot counters are
/// atomics; the executor-owned aggregates live behind the mutexed
/// [`ServerMetrics`], updated once per batch.
struct Shared {
    batcher: Batcher<Work>,
    shutdown: AtomicBool,
    entities: u32,
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    protocol_errors: AtomicU64,
    submissions: AtomicU64,
    rejected: AtomicU64,
    aborted_on_shutdown: AtomicU64,
    batch_metrics: Mutex<ServerMetrics>,
}

impl Shared {
    /// Composes the full metrics record: executor-owned aggregates plus
    /// the live counter values.
    fn metrics(&self) -> ServerMetrics {
        let mut m = self.batch_metrics.lock().expect("metrics poisoned").clone();
        m.connections = self.connections.load(Ordering::Relaxed);
        m.frames_in = self.frames_in.load(Ordering::Relaxed);
        m.frames_out = self.frames_out.load(Ordering::Relaxed);
        m.protocol_errors = self.protocol_errors.load(Ordering::Relaxed);
        m.submissions = self.submissions.load(Ordering::Relaxed);
        m.rejected = self.rejected.load(Ordering::Relaxed);
        m.aborted_on_shutdown = self.aborted_on_shutdown.load(Ordering::Relaxed);
        m
    }
}

/// What a clean server lifetime produced — returned by [`Server::wait`].
#[derive(Clone, Copy, Debug)]
pub struct ServerSummary {
    /// Transactions committed.
    pub commits: u64,
    /// Batches executed.
    pub batches: u64,
    /// Cumulative lock-word fast-path counters at quiescence.
    pub fast: FastPathStats,
}

/// A running server: bound address plus the executor's join handle.
pub struct Server {
    local_addr: std::net::SocketAddr,
    executor: std::thread::JoinHandle<Result<ServerSummary, ParError>>,
    accept: std::thread::JoinHandle<()>,
    shared: Arc<Shared>,
    recovery: Option<crate::durable::RecoverySummary>,
}

impl Server {
    /// Binds, spawns the accept and executor threads, and returns
    /// immediately. The server runs until a `SHUTDOWN` request arrives
    /// (or [`Server::request_shutdown`] is called in-process).
    ///
    /// When a log directory is configured with `recover`, the durable
    /// prefix is replayed *before* the listener accepts anyone, so the
    /// first client already sees recovered state over STATS/HISTORY.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        // Recovery and log-directory setup happen synchronously so a bad
        // log refuses startup here, not asynchronously mid-serve.
        let wal_io = |e: pr_storage::WalError| std::io::Error::other(e.to_string());
        let log_dir: Option<Arc<dyn LogDir>> = match &config.durability.dir {
            Some(path) => Some(Arc::new(FsDir::open(path).map_err(wal_io)?)),
            None => None,
        };
        let recovered: Option<Recovery> = match (&log_dir, config.durability.recover) {
            (Some(dir), true) => {
                Some(recover(dir.as_ref(), config.entities, config.init).map_err(wal_io)?)
            }
            _ => None,
        };
        let recovery = recovered.as_ref().map(|r| r.summary.clone());

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            batcher: Batcher::new(config.batch_max, config.batch_deadline),
            shutdown: AtomicBool::new(false),
            entities: config.entities,
            connections: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            aborted_on_shutdown: AtomicU64::new(0),
            batch_metrics: Mutex::new(ServerMetrics::default()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(&config, shared, log_dir, recovered))
        };
        Ok(Server { local_addr, executor, accept, shared, recovery })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// What `--recover` replayed at startup, if recovery ran.
    pub fn recovery(&self) -> Option<&crate::durable::RecoverySummary> {
        self.recovery.as_ref()
    }

    /// Initiates the drain protocol without a network peer (tests).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.batcher.close();
    }

    /// Blocks until the executor finishes (post-`SHUTDOWN` drain and
    /// quiescence check) and returns its summary.
    pub fn wait(self) -> Result<ServerSummary, ParError> {
        let result = self.executor.join().expect("executor thread panicked");
        self.accept.join().expect("accept thread panicked");
        result
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || serve_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// One connection's reader loop: frames in, work out.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let conn =
        Arc::new(ConnWriter { stream: Mutex::new(write_half), dead: AtomicBool::new(false) });
    let mut read_half = stream;
    let mut asm = FrameAssembler::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match asm.next_frame() {
                Ok(Some(payload)) => {
                    shared.frames_in.fetch_add(1, Ordering::Relaxed);
                    if !handle_frame(&payload, &conn, &shared) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    conn.send(&shared, &Reply::Error { code: 1, message: e.to_string() });
                    return;
                }
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => asm.feed(&chunk[..n]),
        }
    }
}

/// Handles one decoded frame; returns `false` when the connection must
/// close.
fn handle_frame(payload: &[u8], conn: &Arc<ConnWriter>, shared: &Arc<Shared>) -> bool {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.send(shared, &Reply::Error { code: 2, message: e.to_string() });
            return false;
        }
    };
    match request {
        Request::Submit { request_id, ops } => {
            if shared.shutdown.load(Ordering::Relaxed) {
                shared.aborted_on_shutdown.fetch_add(1, Ordering::Relaxed);
                conn.send(shared, &Reply::Aborted { request_id, reason: AbortReason::Shutdown });
                return true;
            }
            let program = match TransactionProgram::try_from(ops) {
                Ok(p) => p,
                Err(_) => {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    conn.send(shared, &Reply::Aborted { request_id, reason: AbortReason::Invalid });
                    return true;
                }
            };
            // Entity universe check at admission, so one stray program
            // cannot poison a whole batch inside the session.
            if program.locked_entities().iter().any(|e| e.raw() >= shared.entities) {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                conn.send(shared, &Reply::Aborted { request_id, reason: AbortReason::Invalid });
                return true;
            }
            let work =
                Work::Txn { program, request_id, conn: Arc::clone(conn), enqueued: Instant::now() };
            match shared.batcher.push(work) {
                Ok(()) => {
                    shared.submissions.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    shared.aborted_on_shutdown.fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        shared,
                        &Reply::Aborted { request_id, reason: AbortReason::Shutdown },
                    );
                }
            }
            true
        }
        Request::Stats => {
            conn.send(shared, &Reply::StatsReply { json: shared.metrics().to_json() });
            true
        }
        Request::History => {
            if shared.batcher.push(Work::History { conn: Arc::clone(conn) }).is_err() {
                conn.send(
                    shared,
                    &Reply::Error { code: 3, message: "server is shutting down".into() },
                );
            }
            true
        }
        Request::Shutdown => {
            // Push first, then flip the flag and close: the push must not
            // race the close, and queued submissions still execute.
            let pushed = shared.batcher.push(Work::Shutdown { conn: Arc::clone(conn) });
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.batcher.close();
            if pushed.is_err() {
                conn.send(
                    shared,
                    &Reply::Error { code: 3, message: "shutdown already in progress".into() },
                );
            }
            true
        }
    }
}

/// The executor: one engine run per batch, replies after the run — group
/// commit. Owns the [`Session`] (and the journal, when durability is on)
/// for the server's whole lifetime.
fn executor_loop(
    config: &ServerConfig,
    shared: Arc<Shared>,
    log_dir: Option<Arc<dyn LogDir>>,
    recovered: Option<Recovery>,
) -> Result<ServerSummary, ParError> {
    let par_config = ParConfig {
        threads: config.threads,
        shards: config.shards,
        system: config.system,
        fast_path: config.fast_path,
    };
    let wal_fatal = |ctx: &str, e: pr_storage::WalError| {
        ParError::Inconsistent(format!("write-ahead log {ctx}: {e}"))
    };
    // A recovered server resumes the dead process's txn-id and stamp
    // clocks, so post-crash commits extend the recovered history into one
    // valid oracle input.
    let (store, mut history, mut commits, last_batch_id, session) = match recovered {
        Some(rec) => {
            let session =
                Session::resume(&rec.store, par_config, rec.summary.txn_hwm, rec.summary.stamp_hwm);
            {
                let mut m = shared.batch_metrics.lock().expect("metrics poisoned");
                m.batches_recovered = rec.summary.batches;
                m.txns_recovered = rec.summary.txns;
                m.commits = rec.summary.txns;
            }
            (rec.store, rec.accesses, rec.summary.txns, rec.summary.last_batch_id, session)
        }
        None => {
            let store = GlobalStore::with_entities(config.entities, Value::new(config.init));
            let session = Session::new(&store, par_config);
            (store, Vec::new(), 0u64, 0u64, session)
        }
    };
    let mut session = session;
    let mut journal = match log_dir {
        Some(dir) => Some(
            Journal::open(dir, &config.durability, store.snapshot(), last_batch_id)
                .map_err(|e| wal_fatal("open", e))?,
        ),
        None => None,
    };
    let mut batches: u64 = 0;
    let mut ack_to: Option<Arc<ConnWriter>> = None;

    while let Some((batch, reason)) = shared.batcher.next_batch() {
        let mut programs = Vec::new();
        let mut submitters: Vec<(u64, Arc<ConnWriter>)> = Vec::new();
        let mut controls: Vec<Work> = Vec::new();
        let flush_started = Instant::now();
        let mut wait_us: Vec<u64> = Vec::new();
        for item in batch {
            match item {
                Work::Txn { program, request_id, conn, enqueued } => {
                    wait_us.push(flush_started.duration_since(enqueued).as_micros() as u64);
                    programs.push(program);
                    submitters.push((request_id, conn));
                }
                control => controls.push(control),
            }
        }

        if !programs.is_empty() {
            let base = session.admitted();
            let fail_batch = |e: ParError, shared: &Shared| {
                // An engine (or journal) error on validated input is an
                // invariant violation: answer everyone, then surface it.
                // Nothing is acknowledged COMMITTED, so the durability
                // invariant is vacuously preserved.
                for (request_id, conn) in &submitters {
                    conn.send(
                        shared,
                        &Reply::Aborted { request_id: *request_id, reason: AbortReason::Engine },
                    );
                }
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.batcher.close();
                e
            };
            match session.execute(&programs) {
                Ok(outcome) => {
                    // Write-ahead: the batch's redo record and commit
                    // marker are appended (and fsynced, per policy)
                    // *before* any COMMITTED reply publishes.
                    if let Some(j) = journal.as_mut() {
                        let request_ids: Vec<u64> =
                            submitters.iter().map(|(rid, _)| *rid).collect();
                        if let Err(e) = j.log_batch(
                            base,
                            &request_ids,
                            session.stamp(),
                            &outcome.snapshot,
                            &outcome.accesses,
                        ) {
                            return Err(fail_batch(wal_fatal("append", e), &shared));
                        }
                    }
                    commits += outcome.commits() as u64;
                    history.extend(outcome.accesses);
                    // Group commit: every reply in the batch goes out
                    // after the whole batch reached quiescence.
                    for (i, (request_id, conn)) in submitters.iter().enumerate() {
                        let txn = TxnId::new(base + i as u32 + 1);
                        conn.send(&shared, &Reply::Committed { request_id: *request_id, txn });
                    }
                }
                Err(e) => return Err(fail_batch(e, &shared)),
            }
            batches += 1;
            let mut m = shared.batch_metrics.lock().expect("metrics poisoned");
            m.batches = batches;
            m.commits = commits;
            m.batch_fill.record(programs.len() as u64);
            if let Some(j) = &journal {
                let s = j.stats();
                m.wal_appends = s.appends;
                m.wal_fsyncs = s.syncs;
                m.wal_bytes = s.bytes;
            }
            for us in wait_us {
                m.group_wait_us.record(us);
            }
            match reason {
                FlushReason::Full => m.flushes_full += 1,
                FlushReason::Deadline => m.flushes_deadline += 1,
                FlushReason::Drain => {}
            }
        }

        for control in controls {
            match control {
                Work::History { conn } => send_history(&conn, &shared, &history, &session),
                Work::Shutdown { conn } => ack_to = Some(conn),
                Work::Txn { .. } => unreachable!("txns were split out above"),
            }
        }
    }

    // Drained and closed: graceful drain implies durability — the tail
    // segment is fsynced whatever the flush policy, so everything the
    // server ever acknowledged survives a post-shutdown restart. Only
    // then is quiescence asserted and SHUTDOWN_ACK sent.
    if let Some(j) = journal.as_mut() {
        j.sync().map_err(|e| wal_fatal("drain sync", e))?;
        let s = j.stats();
        let mut m = shared.batch_metrics.lock().expect("metrics poisoned");
        m.wal_fsyncs = s.syncs;
    }
    let fast = session.finish()?;
    if let Some(conn) = ack_to {
        conn.send(&shared, &Reply::ShutdownAck { commits });
    }
    Ok(ServerSummary { commits, batches, fast })
}

/// Streams the full history in bounded chunks; the last chunk carries
/// the snapshot.
fn send_history(
    conn: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
    history: &[CommittedAccess],
    session: &Session,
) {
    let mut chunks = history.chunks(HISTORY_CHUNK_ACCESSES).peekable();
    if chunks.peek().is_none() {
        let snapshot: Vec<_> = session.snapshot().iter().map(|(e, v)| (e, v.raw())).collect();
        conn.send(shared, &Reply::HistoryChunk { last: true, accesses: vec![], snapshot });
        return;
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        let snapshot = if last {
            session.snapshot().iter().map(|(e, v)| (e, v.raw())).collect()
        } else {
            Vec::new()
        };
        conn.send(shared, &Reply::HistoryChunk { last, accesses: chunk.to_vec(), snapshot });
    }
}
