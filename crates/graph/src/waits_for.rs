//! The concurrency (waits-for) graph `G(T)` of §3.
//!
//! "If at a given time t, a transaction T_i … is waiting to lock an entity
//! A which is locked by another transaction T_j, then we say T_j → T_i."
//! Arcs therefore point **holder → waiter** and carry the contested entity
//! as their label.
//!
//! A transaction is a sequential process, so it waits on at most one entity
//! at a time — but (with shared locks) possibly on *several holders* of
//! that entity, which is what makes the graph a general digraph rather
//! than a forest.

use pr_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The labelled concurrency graph.
///
/// ```
/// use pr_graph::WaitsForGraph;
/// use pr_model::{EntityId, TxnId};
///
/// let (t1, t2, t3) = (TxnId::new(1), TxnId::new(2), TxnId::new(3));
/// let mut g = WaitsForGraph::new();
/// g.set_wait(t2, EntityId::new(0), &[t1]); // T2 waits for T1 on a
/// g.set_wait(t3, EntityId::new(1), &[t2]); // T3 waits for T2 on b
/// // §3.1's deadlock test: would T1 waiting on T3 close a cycle?
/// assert!(g.reaches_any(t1, &[t3]));
/// assert!(g.is_forest(), "exclusive-only waits form a forest (Theorem 1)");
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WaitsForGraph {
    /// `out[holder]` = arcs holder → waiter (waiter waits for holder).
    out: BTreeMap<TxnId, BTreeSet<TxnId>>,
    /// `wait[waiter]` = (entity, holders) — the single pending request.
    wait: BTreeMap<TxnId, (EntityId, BTreeSet<TxnId>)>,
}

impl WaitsForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers that `waiter` now waits for `entity`, currently held by
    /// `holders`. Replaces any previous wait of `waiter` (a transaction has
    /// at most one pending request).
    pub fn set_wait(&mut self, waiter: TxnId, entity: EntityId, holders: &[TxnId]) {
        self.clear_wait(waiter);
        let mut set = BTreeSet::new();
        for &h in holders {
            debug_assert_ne!(h, waiter, "a transaction cannot wait on itself");
            self.out.entry(h).or_default().insert(waiter);
            set.insert(h);
        }
        self.wait.insert(waiter, (entity, set));
    }

    /// Removes `waiter`'s pending wait (granted, cancelled, or rolled
    /// back). A no-op if it was not waiting.
    pub fn clear_wait(&mut self, waiter: TxnId) {
        if let Some((_, holders)) = self.wait.remove(&waiter) {
            for h in holders {
                if let Some(set) = self.out.get_mut(&h) {
                    set.remove(&waiter);
                    if set.is_empty() {
                        self.out.remove(&h);
                    }
                }
            }
        }
    }

    /// Removes one arc `holder → waiter` — used when `holder` releases the
    /// entity but `waiter` still waits on other holders (shared case).
    pub fn remove_arc(&mut self, holder: TxnId, waiter: TxnId) {
        if let Some(set) = self.out.get_mut(&holder) {
            set.remove(&waiter);
            if set.is_empty() {
                self.out.remove(&holder);
            }
        }
        let mut now_empty = false;
        if let Some((_, holders)) = self.wait.get_mut(&waiter) {
            holders.remove(&holder);
            now_empty = holders.is_empty();
        }
        if now_empty {
            self.wait.remove(&waiter);
        }
    }

    /// Removes a transaction entirely (commit or total restart): its wait
    /// and every arc it participates in as a holder. Returns the waiters
    /// that were waiting on it (the engine re-evaluates their requests).
    pub fn remove_txn(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.clear_wait(txn);
        let waiters: Vec<TxnId> =
            self.out.remove(&txn).map(|s| s.into_iter().collect()).unwrap_or_default();
        for w in &waiters {
            let mut now_empty = false;
            if let Some((_, holders)) = self.wait.get_mut(w) {
                holders.remove(&txn);
                now_empty = holders.is_empty();
            }
            if now_empty {
                self.wait.remove(w);
            }
        }
        waiters
    }

    /// The entity and holders `txn` currently waits for, if any.
    pub fn wait_of(&self, txn: TxnId) -> Option<(EntityId, Vec<TxnId>)> {
        self.wait.get(&txn).map(|(e, hs)| (*e, hs.iter().copied().collect()))
    }

    /// Whether `txn` is blocked.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.wait.contains_key(&txn)
    }

    /// Transactions waiting on `holder`.
    pub fn waiters_on(&self, holder: TxnId) -> Vec<TxnId> {
        self.out.get(&holder).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// Out-neighbours of `txn` (its waiters), for traversal.
    pub fn successors(&self, txn: TxnId) -> impl Iterator<Item = TxnId> + '_ {
        self.out.get(&txn).into_iter().flatten().copied()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.out.values().map(BTreeSet::len).sum()
    }

    /// Number of waiting transactions.
    pub fn waiting_count(&self) -> usize {
        self.wait.len()
    }

    /// Whether any of `targets` is reachable from `from` along
    /// holder → waiter arcs. This is §3.1's deadlock test: a wait response
    /// to `T_j`'s request deadlocks iff the requested entity "is already
    /// locked by a descendant of T_j" — i.e. some holder is reachable from
    /// `T_j`.
    pub fn reaches_any(&self, from: TxnId, targets: &[TxnId]) -> bool {
        if targets.contains(&from) {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        seen.insert(from);
        while let Some(v) = queue.pop_front() {
            for s in self.successors(v) {
                if targets.contains(&s) {
                    return true;
                }
                if seen.insert(s) {
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// Whether the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colours over the vertices that have out-arcs.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let verts: Vec<TxnId> = self.out.keys().copied().collect();
        let mut colour: BTreeMap<TxnId, Colour> = BTreeMap::new();
        for &v in &verts {
            if colour.get(&v).copied().unwrap_or(Colour::White) != Colour::White {
                continue;
            }
            // stack of (vertex, iterator position)
            let mut stack = vec![(v, 0usize)];
            colour.insert(v, Colour::Grey);
            while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
                let succs: Vec<TxnId> = self.successors(u).collect();
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match colour.get(&next).copied().unwrap_or(Colour::White) {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour.insert(next, Colour::Grey);
                            stack.push((next, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour.insert(u, Colour::Black);
                    stack.pop();
                }
            }
        }
        false
    }

    /// Theorem 1's structural check for exclusive-only systems: the graph
    /// is a forest iff, viewed as an undirected graph, it is acyclic. (With
    /// exclusive locks every waiter has exactly one in-arc, so an
    /// undirected cycle implies a directed one and vice versa.)
    pub fn is_forest(&self) -> bool {
        // Union-find over the arcs.
        let mut parent: BTreeMap<TxnId, TxnId> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<TxnId, TxnId>, x: TxnId) -> TxnId {
            let p = *parent.get(&x).unwrap_or(&x);
            if p == x {
                x
            } else {
                let root = find(parent, p);
                parent.insert(x, root);
                root
            }
        }
        for (&holder, waiters) in &self.out {
            for &waiter in waiters {
                let a = find(&mut parent, holder);
                let b = find(&mut parent, waiter);
                if a == b {
                    return false;
                }
                parent.insert(a, b);
            }
        }
        true
    }

    /// All vertices that appear in some arc, for diagnostics.
    pub fn vertices(&self) -> Vec<TxnId> {
        let mut set: BTreeSet<TxnId> = self.out.keys().copied().collect();
        for (w, (_, hs)) in &self.wait {
            set.insert(*w);
            set.extend(hs.iter().copied());
        }
        set.into_iter().collect()
    }

    /// Renders the graph in Graphviz DOT format, with arcs labelled by
    /// the contested entity — paste into `dot -Tsvg` to visualise a
    /// deadlock exactly as the paper draws its figures.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph waits_for {\n  rankdir=LR;\n");
        for v in self.vertices() {
            out.push_str(&format!("  \"{v}\";\n"));
        }
        for (waiter, (entity, holders)) in &self.wait {
            for holder in holders {
                out.push_str(&format!("  \"{holder}\" -> \"{waiter}\" [label=\"{entity}\"];\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// A simple directed path from `from` to `to` along holder → waiter
    /// arcs, if one exists — the diagnostic companion to
    /// [`Self::reaches_any`].
    pub fn find_path(&self, from: TxnId, to: TxnId) -> Option<Vec<TxnId>> {
        let mut prev: BTreeMap<TxnId, TxnId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(v) = queue.pop_front() {
            if v == to && v != from {
                break;
            }
            for s in self.successors(v) {
                if seen.insert(s) {
                    prev.insert(s, v);
                    if s == to {
                        queue.clear();
                        queue.push_back(s);
                        break;
                    }
                    queue.push_back(s);
                }
            }
        }
        if !prev.contains_key(&to) && from != to {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = *prev.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Structural self-check (feature `invariants`): the `out` arc map and
    /// the `wait` request map must describe the same set of arcs, every
    /// set must be non-empty, and no transaction may wait on itself. Any
    /// divergence means an engine mutation went through one map but not
    /// the other — exactly the corruption the runtime sentinel exists to
    /// catch before it turns into a lost wakeup or a phantom deadlock.
    #[cfg(feature = "invariants")]
    pub fn check_consistent(&self) -> Result<(), String> {
        for (holder, waiters) in &self.out {
            if waiters.is_empty() {
                return Err(format!("out[{holder}] is an empty set (should be pruned)"));
            }
            for waiter in waiters {
                if waiter == holder {
                    return Err(format!("self-arc {holder} -> {holder}"));
                }
                match self.wait.get(waiter) {
                    None => {
                        return Err(format!(
                            "arc {holder} -> {waiter} has no wait record for {waiter}"
                        ));
                    }
                    Some((entity, holders)) if !holders.contains(holder) => {
                        return Err(format!(
                            "arc {holder} -> {waiter} missing from {waiter}'s holder set \
                             (waiting on {entity})"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        for (waiter, (entity, holders)) in &self.wait {
            if holders.is_empty() {
                return Err(format!(
                    "{waiter} waits on {entity} with an empty holder set (should be pruned)"
                ));
            }
            for holder in holders {
                if holder == waiter {
                    return Err(format!("{waiter} records itself as a holder of {entity}"));
                }
                if !self.out.get(holder).is_some_and(|s| s.contains(waiter)) {
                    return Err(format!(
                        "{waiter} waits on {entity} held by {holder}, but the arc \
                         {holder} -> {waiter} is missing"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Deliberately inserts an arc into the `out` map *without* recording
    /// the matching wait — corrupting the graph. Exists only so negative
    /// tests can prove the sentinel catches a forged back-edge; never call
    /// this from engine code.
    #[cfg(feature = "invariants")]
    pub fn forge_arc_unchecked(&mut self, holder: TxnId, waiter: TxnId) {
        self.out.entry(holder).or_default().insert(waiter);
    }

    /// Renders the graph as `holder -entity-> waiter` lines, for test
    /// failure messages and the figure-reproduction examples.
    pub fn render(&self) -> String {
        let mut lines = Vec::new();
        for (waiter, (entity, holders)) in &self.wait {
            for holder in holders {
                lines.push(format!("{holder} -{entity}-> {waiter}"));
            }
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn set_wait_creates_arcs_from_all_holders() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(0), &[t(1), t(2)]);
        assert_eq!(g.waiters_on(t(1)), vec![t(3)]);
        assert_eq!(g.waiters_on(t(2)), vec![t(3)]);
        assert_eq!(g.wait_of(t(3)), Some((e(0), vec![t(1), t(2)])));
        assert_eq!(g.arc_count(), 2);
        assert!(g.is_waiting(t(3)));
    }

    #[test]
    fn set_wait_replaces_previous_wait() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(2)]);
        assert_eq!(g.waiters_on(t(1)), Vec::<TxnId>::new());
        assert_eq!(g.wait_of(t(3)), Some((e(1), vec![t(2)])));
        assert_eq!(g.arc_count(), 1);
    }

    #[test]
    fn clear_wait_removes_all_arcs() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(0), &[t(1), t(2)]);
        g.clear_wait(t(3));
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.waiting_count(), 0);
        // Idempotent.
        g.clear_wait(t(3));
    }

    #[test]
    fn remove_arc_keeps_other_holders() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(0), &[t(1), t(2)]);
        g.remove_arc(t(1), t(3));
        assert_eq!(g.wait_of(t(3)), Some((e(0), vec![t(2)])));
        g.remove_arc(t(2), t(3));
        assert!(!g.is_waiting(t(3)));
    }

    #[test]
    fn remove_txn_reports_affected_waiters() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(1)]);
        g.set_wait(t(1), e(2), &[t(4)]);
        let affected = g.remove_txn(t(1));
        assert_eq!(affected, vec![t(2), t(3)]);
        assert!(!g.is_waiting(t(1)));
        assert!(!g.is_waiting(t(2)), "waiter with no holders left is not waiting");
        assert_eq!(g.arc_count(), 0);
    }

    #[test]
    fn reaches_any_follows_holder_to_waiter_arcs() {
        let mut g = WaitsForGraph::new();
        // T2 waits for T1, T3 waits for T2: arcs T1→T2, T2→T3.
        g.set_wait(t(2), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(2)]);
        assert!(g.reaches_any(t(1), &[t(3)]));
        assert!(g.reaches_any(t(1), &[t(2)]));
        assert!(!g.reaches_any(t(3), &[t(1)]));
        assert!(g.reaches_any(t(1), &[t(1)]), "trivially reaches itself");
    }

    #[test]
    fn deadlock_test_matches_paper_rule() {
        // T1 holds a; T2 waits for a (arc T1→T2). T2 holds b. If T1 now
        // requests b (held by T2), deadlock iff T2 ("the holder") is
        // reachable from T1 — it is.
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        assert!(g.reaches_any(t(1), &[t(2)]), "wait response would deadlock");
        // If instead T3 requests b, no deadlock: T2 unreachable from T3.
        assert!(!g.reaches_any(t(3), &[t(2)]));
    }

    #[test]
    fn cycle_detection() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]); // T1 → T2
        g.set_wait(t(3), e(1), &[t(2)]); // T2 → T3
        assert!(!g.has_cycle());
        g.set_wait(t(1), e(2), &[t(3)]); // T3 → T1 closes the cycle
        assert!(g.has_cycle());
        assert!(!g.is_forest());
    }

    #[test]
    fn forest_check_accepts_trees() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(1)]);
        g.set_wait(t(4), e(2), &[t(2)]);
        assert!(g.is_forest());
        assert!(!g.has_cycle());
    }

    #[test]
    fn forest_check_rejects_shared_diamond() {
        // With shared locks T3 can wait on both T1 and T2 while T2 waits on
        // T1: undirected cycle T1-T3-T2-T1 without a directed cycle — an
        // acyclic digraph that is not a forest (§3.2).
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(0), &[t(1), t(2)]);
        g.set_wait(t(2), e(1), &[t(1)]);
        assert!(!g.is_forest());
        assert!(!g.has_cycle());
    }

    #[test]
    fn vertices_and_render() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(1), &[t(1)]);
        assert_eq!(g.vertices(), vec![t(1), t(2)]);
        assert_eq!(g.render(), "T1 -b-> T2");
    }

    #[test]
    fn dot_rendering_contains_labelled_arcs() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(1), &[t(1)]);
        let dot = g.render_dot();
        assert!(dot.starts_with("digraph waits_for {"));
        assert!(dot.contains("\"T1\" -> \"T2\" [label=\"b\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn consistency_check_accepts_normal_mutations_and_catches_forgery() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(1), t(2)]);
        assert_eq!(g.check_consistent(), Ok(()));
        g.remove_arc(t(1), t(3));
        g.clear_wait(t(2));
        assert_eq!(g.check_consistent(), Ok(()));
        // A forged arc has no matching wait record — the check must name it.
        g.forge_arc_unchecked(t(5), t(2));
        let err = g.check_consistent().unwrap_err();
        assert!(err.contains("T5 -> T2"), "{err}");
    }

    #[test]
    fn find_path_follows_arcs() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]); // T1 → T2
        g.set_wait(t(3), e(1), &[t(2)]); // T2 → T3
        assert_eq!(g.find_path(t(1), t(3)), Some(vec![t(1), t(2), t(3)]));
        assert_eq!(g.find_path(t(3), t(1)), None);
        assert_eq!(g.find_path(t(1), t(2)), Some(vec![t(1), t(2)]));
    }
}
