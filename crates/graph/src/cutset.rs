//! Minimum-cost victim selection for multi-cycle deadlocks (§3.2).
//!
//! "Optimization of deadlock removal in a system with shared and exclusive
//! locks involves finding a set of transactions whose rollback will remove
//! all cycles from the graph and the sum of whose rollback costs is
//! minimal. … Unfortunately, the problem appears to be NP-complete, as is
//! the closely-related feedback vertex set problem."
//!
//! The instance is given as a family of cycles; each cycle lists, per
//! member transaction, the **candidate rollback** (target lock state +
//! cost) that breaks *that* cycle. Rolling a transaction back to a deeper
//! (smaller) target covers every cycle whose candidate target is at least
//! the chosen one, at the maximum of the covered candidates' costs (cost
//! is monotone in depth, and only candidate depths can be optimal).
//!
//! [`solve_exact`] is a branch-and-bound over the first-uncovered-cycle
//! choice tree with cost pruning and a node budget; [`solve_greedy`] is a
//! cost-effectiveness heuristic. [`solve`] tries exact first and falls
//! back.

use pr_model::{LockIndex, StateIndex, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A possible rollback of one transaction that would break one cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CandidateRollback {
    /// The transaction to roll back.
    pub txn: TxnId,
    /// The lock state to roll back to (the transaction's lock state for
    /// the entity it must release — or, under the SDG strategy, the
    /// deepest well-defined state at or below it).
    pub target: LockIndex,
    /// The ideal (MCS-reachable) target for the same entity; `target <=
    /// ideal`, with strict inequality only when the strategy had to
    /// overshoot. The engine charges `cost(target) − cost(ideal)` to its
    /// overshoot metric.
    pub ideal: LockIndex,
    /// The earliest conflicting access: the state index at which the
    /// victim acquired the lock the cycle contests. Everything before
    /// this state is conflict-free prefix; the repair strategy retains
    /// it and re-executes only the suffix from here. Recorded in the
    /// resolution audit for every strategy (it is a victim-selection
    /// fact, not a repair-only one).
    pub conflict: StateIndex,
    /// States lost by this rollback (§3.1's cost function).
    pub cost: u32,
}

/// A chosen set of rollbacks covering every cycle.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CutSolution {
    /// One planned rollback per victim (deepest target needed).
    pub rollbacks: Vec<CandidateRollback>,
    /// Sum of the victims' costs.
    pub total_cost: u64,
    /// Whether the solution is provably optimal (exact solver completed).
    pub optimal: bool,
}

impl CutSolution {
    fn from_choice(choice: &BTreeMap<TxnId, CandidateRollback>, optimal: bool) -> Self {
        let rollbacks: Vec<CandidateRollback> = choice.values().copied().collect();
        let total_cost = rollbacks.iter().map(|r| u64::from(r.cost)).sum();
        CutSolution { rollbacks, total_cost, optimal }
    }
}

/// Whether a chosen per-transaction rollback covers the given cycle: some
/// member's candidate is at or above the chosen target (rolling back to
/// `chosen.target <= candidate.target` releases the entity that candidate
/// releases).
fn covers(choice: &BTreeMap<TxnId, CandidateRollback>, cycle: &[CandidateRollback]) -> bool {
    cycle
        .iter()
        .any(|cand| choice.get(&cand.txn).is_some_and(|chosen| chosen.target <= cand.target))
}

/// Merges a candidate into a choice map, keeping the deeper target, the
/// correspondingly larger cost, and the earlier conflicting access.
/// Returns the cost delta.
fn merge(choice: &mut BTreeMap<TxnId, CandidateRollback>, cand: CandidateRollback) -> u64 {
    match choice.get_mut(&cand.txn) {
        Some(existing) => {
            let old = u64::from(existing.cost);
            if cand.target < existing.target {
                existing.target = cand.target;
            }
            if cand.ideal < existing.ideal {
                existing.ideal = cand.ideal;
            }
            if cand.conflict < existing.conflict {
                existing.conflict = cand.conflict;
            }
            if cand.cost > existing.cost {
                existing.cost = cand.cost;
            }
            u64::from(existing.cost) - old
        }
        None => {
            choice.insert(cand.txn, cand);
            u64::from(cand.cost)
        }
    }
}

/// Whether a solution's rollback set covers `cycle`: some cycle member's
/// candidate is matched — at or below its target — by a chosen rollback of
/// the same transaction. Public so external optimality oracles (and their
/// planted-mutant self-tests) can audit arbitrary plans without access to
/// the solver's internal choice map.
pub fn solution_covers(rollbacks: &[CandidateRollback], cycle: &[CandidateRollback]) -> bool {
    cycle.iter().any(|cand| {
        rollbacks.iter().any(|chosen| chosen.txn == cand.txn && chosen.target <= cand.target)
    })
}

/// Largest number of distinct `(txn, target)` candidates
/// [`solve_exhaustive`] will enumerate subsets of (2^20 masks).
pub const EXHAUSTIVE_CANDIDATE_CAP: usize = 20;

/// Exhaustive exact solver, algorithmically independent of
/// [`solve_exact`]'s branch-and-bound: enumerates **every** subset of the
/// instance's distinct `(txn, target)` candidates and keeps the cheapest
/// covering one (ties broken toward fewer victims, then the earlier
/// enumeration order). An optimal cut only ever uses candidate depths —
/// rolling back between two candidate targets costs at least as much as
/// the shallower one and covers exactly the same cycles — so the subset
/// space contains an optimum.
///
/// Returns `None` when the instance has an uncoverable (empty) cycle or
/// more than [`EXHAUSTIVE_CANDIDATE_CAP`] distinct candidates. Intended as
/// a brute-force oracle for small model-checked instances, not as a
/// production solver.
pub fn solve_exhaustive(cycles: &[Vec<CandidateRollback>]) -> Option<CutSolution> {
    if cycles.is_empty() {
        return Some(CutSolution { rollbacks: Vec::new(), total_cost: 0, optimal: true });
    }
    if cycles.iter().any(Vec::is_empty) {
        return None;
    }
    // Distinct candidates keyed by (txn, target); merging duplicates keeps
    // the worst cost and deepest ideal, matching `merge`'s semantics.
    let mut distinct: Vec<CandidateRollback> = Vec::new();
    for cand in cycles.iter().flatten() {
        match distinct.iter_mut().find(|c| c.txn == cand.txn && c.target == cand.target) {
            Some(existing) => {
                if cand.cost > existing.cost {
                    existing.cost = cand.cost;
                }
                if cand.ideal < existing.ideal {
                    existing.ideal = cand.ideal;
                }
                if cand.conflict < existing.conflict {
                    existing.conflict = cand.conflict;
                }
            }
            None => distinct.push(*cand),
        }
    }
    if distinct.len() > EXHAUSTIVE_CANDIDATE_CAP {
        return None;
    }
    let mut best: Option<CutSolution> = None;
    for mask in 0u64..(1u64 << distinct.len()) {
        let mut choice: BTreeMap<TxnId, CandidateRollback> = BTreeMap::new();
        for (i, cand) in distinct.iter().enumerate() {
            if mask & (1 << i) != 0 {
                merge(&mut choice, *cand);
            }
        }
        if cycles.iter().all(|c| covers(&choice, c)) {
            let sol = CutSolution::from_choice(&choice, true);
            let better = best.as_ref().is_none_or(|b| {
                sol.total_cost < b.total_cost
                    || (sol.total_cost == b.total_cost && sol.rollbacks.len() < b.rollbacks.len())
            });
            if better {
                best = Some(sol);
            }
        }
    }
    best
}

/// Exact branch-and-bound. Returns `None` if the node budget is exhausted
/// before the search completes (the caller then falls back to the greedy
/// heuristic).
pub fn solve_exact(cycles: &[Vec<CandidateRollback>], node_budget: u64) -> Option<CutSolution> {
    if cycles.iter().any(Vec::is_empty) {
        // A cycle with no candidates can never be broken; the engine never
        // produces this (every cycle member is a candidate).
        return None;
    }
    struct Search<'a> {
        cycles: &'a [Vec<CandidateRollback>],
        best: Option<CutSolution>,
        nodes: u64,
        budget: u64,
    }
    impl Search<'_> {
        fn run(&mut self, choice: &mut BTreeMap<TxnId, CandidateRollback>, cost: u64) -> bool {
            self.nodes += 1;
            if self.nodes > self.budget {
                return false;
            }
            if let Some(best) = &self.best {
                if cost >= best.total_cost {
                    return true; // prune
                }
            }
            // Pick the uncovered cycle with the fewest candidates.
            let next = self.cycles.iter().filter(|c| !covers(choice, c)).min_by_key(|c| c.len());
            let Some(cycle) = next else {
                self.best = Some(CutSolution::from_choice(choice, true));
                return true;
            };
            for &cand in cycle {
                let saved = choice.get(&cand.txn).copied();
                let delta = merge(choice, cand);
                if !self.run(choice, cost + delta) {
                    return false;
                }
                match saved {
                    Some(prev) => {
                        choice.insert(cand.txn, prev);
                    }
                    None => {
                        choice.remove(&cand.txn);
                    }
                }
            }
            true
        }
    }
    let mut search = Search { cycles, best: None, nodes: 0, budget: node_budget };
    let completed = search.run(&mut BTreeMap::new(), 0);
    if completed {
        search.best
    } else {
        None
    }
}

/// Greedy heuristic: repeatedly commit the candidate with the best
/// (newly covered cycles) / (cost increase) ratio.
pub fn solve_greedy(cycles: &[Vec<CandidateRollback>]) -> CutSolution {
    let mut choice: BTreeMap<TxnId, CandidateRollback> = BTreeMap::new();
    loop {
        let uncovered: Vec<&Vec<CandidateRollback>> =
            cycles.iter().filter(|c| !covers(&choice, c)).collect();
        if uncovered.is_empty() {
            break;
        }
        let mut best: Option<(CandidateRollback, u64, usize)> = None; // (cand, delta, gain)
        for cycle in &uncovered {
            for &cand in cycle.iter() {
                let mut trial = choice.clone();
                let delta = merge(&mut trial, cand);
                let gain = uncovered.iter().filter(|c| covers(&trial, c)).count();
                debug_assert!(gain >= 1);
                let better = match &best {
                    None => true,
                    Some((_, bd, bg)) => {
                        // Compare gain/delta ratios without floats:
                        // gain * bd > bg * delta, tie-break on smaller delta.
                        (gain as u64) * *bd > (*bg as u64) * delta
                            || ((gain as u64) * *bd == (*bg as u64) * delta && delta < *bd)
                    }
                };
                if better {
                    best = Some((cand, delta, gain));
                }
            }
        }
        let (cand, _, _) = best.expect("uncovered cycles have candidates");
        merge(&mut choice, cand);
    }
    CutSolution::from_choice(&choice, false)
}

/// Solves the instance: exact when it completes within `node_budget`
/// nodes, greedy otherwise.
///
/// ```
/// use pr_graph::cutset::{solve, CandidateRollback};
/// use pr_model::{LockIndex, StateIndex, TxnId};
///
/// let cand = |txn, cost| CandidateRollback {
///     txn: TxnId::new(txn),
///     target: LockIndex::new(1),
///     ideal: LockIndex::new(1),
///     conflict: StateIndex::new(1),
///     cost,
/// };
/// // Figure 1's single cycle: costs 4 / 6 / 5 → T2 is chosen.
/// let cycle = vec![cand(2, 4), cand(3, 6), cand(4, 5)];
/// let solution = solve(&[cycle], 10_000);
/// assert_eq!(solution.total_cost, 4);
/// assert_eq!(solution.rollbacks[0].txn, TxnId::new(2));
/// ```
pub fn solve(cycles: &[Vec<CandidateRollback>], node_budget: u64) -> CutSolution {
    match solve_exact(cycles, node_budget) {
        Some(s) => s,
        None => solve_greedy(cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(txn: u32, target: u32, cost: u32) -> CandidateRollback {
        CandidateRollback {
            txn: TxnId::new(txn),
            target: LockIndex::new(target),
            ideal: LockIndex::new(target),
            conflict: StateIndex::new(target),
            cost,
        }
    }

    #[test]
    fn merge_keeps_the_earliest_conflicting_access() {
        // The same transaction appears in two cycles: once with its
        // conflict at state 3, once at state 1. Covering both must
        // remember the *earlier* conflicting access — a repair suffix
        // starting at state 3 would skip the state-1 conflict.
        let mut choice = BTreeMap::new();
        merge(&mut choice, cand(1, 3, 2));
        merge(&mut choice, cand(1, 1, 9));
        let chosen = choice[&TxnId::new(1)];
        assert_eq!(chosen.conflict, StateIndex::new(1));
        assert_eq!(chosen.target, LockIndex::new(1));
        assert_eq!(chosen.cost, 9);
        // Order-independent.
        let mut rev = BTreeMap::new();
        merge(&mut rev, cand(1, 1, 9));
        merge(&mut rev, cand(1, 3, 2));
        assert_eq!(rev[&TxnId::new(1)], chosen);
    }

    #[test]
    fn single_cycle_picks_min_cost_member() {
        // Figure 1: costs T2=4, T3=6, T4=5 ⇒ pick T2.
        let cycles = vec![vec![cand(2, 1, 4), cand(3, 1, 6), cand(4, 1, 5)]];
        let s = solve(&cycles, 10_000);
        assert!(s.optimal);
        assert_eq!(s.total_cost, 4);
        assert_eq!(s.rollbacks, vec![cand(2, 1, 4)]);
    }

    #[test]
    fn shared_vertex_is_cheaper_than_two_cuts() {
        // Two cycles sharing T1 (cost 5 each way); individual members cost 3.
        // Cutting T1 once (cost 5) beats cutting T2 and T3 (3 + 3 = 6).
        let cycles = vec![vec![cand(1, 2, 5), cand(2, 1, 3)], vec![cand(1, 2, 5), cand(3, 1, 3)]];
        let s = solve(&cycles, 10_000);
        assert!(s.optimal);
        assert_eq!(s.total_cost, 5);
        assert_eq!(s.rollbacks, vec![cand(1, 2, 5)]);
    }

    #[test]
    fn separate_cheap_cuts_beat_expensive_shared_vertex() {
        let cycles = vec![vec![cand(1, 2, 50), cand(2, 1, 3)], vec![cand(1, 2, 50), cand(3, 1, 4)]];
        let s = solve(&cycles, 10_000);
        assert!(s.optimal);
        assert_eq!(s.total_cost, 7);
        assert_eq!(s.rollbacks.len(), 2);
    }

    #[test]
    fn deeper_rollback_of_same_txn_merges_costs() {
        // T1 appears in both cycles with different depths: covering both
        // with T1 requires the deeper target (1) at the higher cost (9).
        let cycles =
            vec![vec![cand(1, 3, 2), cand(2, 1, 100)], vec![cand(1, 1, 9), cand(3, 1, 100)]];
        let s = solve(&cycles, 10_000);
        assert!(s.optimal);
        assert_eq!(s.total_cost, 9);
        assert_eq!(s.rollbacks, vec![cand(1, 1, 9)]);
    }

    #[test]
    fn shallow_choice_does_not_cover_deeper_requirement() {
        // Choosing T1@target3 covers cycle A (needs ≥3)… but cycle B needs
        // target ≤ 1. The solver must notice the shallow choice is not
        // enough.
        let cycles = vec![vec![cand(1, 3, 2)], vec![cand(1, 1, 9)]];
        let s = solve(&cycles, 10_000);
        assert!(s.optimal);
        assert_eq!(s.rollbacks, vec![cand(1, 1, 9)]);
        assert_eq!(s.total_cost, 9);
    }

    #[test]
    fn greedy_matches_exact_on_small_instances() {
        let cycles = vec![
            vec![cand(1, 2, 5), cand(2, 1, 3), cand(4, 0, 7)],
            vec![cand(1, 2, 5), cand(3, 1, 4)],
            vec![cand(2, 1, 3), cand(3, 1, 4)],
        ];
        let exact = solve_exact(&cycles, 100_000).unwrap();
        let greedy = solve_greedy(&cycles);
        assert!(greedy.total_cost >= exact.total_cost);
        // Both must actually cover everything.
        for s in [&exact, &greedy] {
            let choice: BTreeMap<TxnId, CandidateRollback> =
                s.rollbacks.iter().map(|r| (r.txn, *r)).collect();
            for c in &cycles {
                assert!(covers(&choice, c));
            }
        }
    }

    #[test]
    fn exhausted_budget_falls_back_to_greedy() {
        let cycles: Vec<Vec<CandidateRollback>> =
            (0..12).map(|i| (0..6).map(|j| cand(i * 6 + j, 1, i + j + 1)).collect()).collect();
        assert!(solve_exact(&cycles, 10).is_none());
        let s = solve(&cycles, 10);
        assert!(!s.optimal);
        assert!(!s.rollbacks.is_empty());
    }

    #[test]
    fn zero_cost_candidates_are_preferred() {
        let cycles = vec![vec![cand(1, 5, 0), cand(2, 1, 3)]];
        let s = solve(&cycles, 1_000);
        assert_eq!(s.total_cost, 0);
        assert_eq!(s.rollbacks[0].txn, TxnId::new(1));
    }

    #[test]
    fn empty_instance_is_trivially_solved() {
        let s = solve(&[], 1_000);
        assert!(s.optimal);
        assert_eq!(s.total_cost, 0);
        assert!(s.rollbacks.is_empty());
    }

    #[test]
    fn exhaustive_agrees_with_branch_and_bound_on_random_instances() {
        // Deterministic xorshift instance generator; the two exact solvers
        // use unrelated algorithms, so cost agreement on hundreds of
        // instances is strong cross-validation.
        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move |bound: u64| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % bound
        };
        for _ in 0..300 {
            let ncycles = 1 + next(4);
            let cycles: Vec<Vec<CandidateRollback>> = (0..ncycles)
                .map(|_| {
                    let members = 1 + next(4);
                    (0..members)
                        .map(|_| {
                            let txn = next(6) as u32;
                            let t = next(5) as u32;
                            // Cost is a function of (txn, target) and grows
                            // as the target gets deeper, as in the engine —
                            // rolling further back undoes more operations.
                            // Both properties matter: branch-and-bound only
                            // reaches another cycle's deeper candidate via
                            // `merge`, whose max-cost rule equals the true
                            // cost exactly when cost is depth-monotone.
                            cand(txn, t, 1 + (4 - t) * 3 + (txn * 7) % 5)
                        })
                        .collect()
                })
                .collect();
            let exhaustive = solve_exhaustive(&cycles).expect("small instance");
            let exact = solve_exact(&cycles, 1_000_000).expect("small instance");
            assert_eq!(exhaustive.total_cost, exact.total_cost, "instance {cycles:?}");
            for c in &cycles {
                assert!(solution_covers(&exhaustive.rollbacks, c));
                assert!(solution_covers(&exact.rollbacks, c));
            }
        }
    }

    #[test]
    fn solution_covers_detects_a_missing_cycle() {
        let cycle_a = vec![cand(1, 2, 5), cand(2, 1, 3)];
        let cycle_b = vec![cand(3, 1, 4)];
        // A plan that only cuts cycle A…
        let plan = vec![cand(2, 1, 3)];
        assert!(solution_covers(&plan, &cycle_a));
        assert!(!solution_covers(&plan, &cycle_b));
        // …and depth matters: a shallower rollback of the right txn does
        // not cover a deeper requirement.
        assert!(!solution_covers(&[cand(1, 3, 1)], &[cand(1, 1, 9)]));
    }

    #[test]
    fn exhaustive_rejects_oversized_instances() {
        let big: Vec<Vec<CandidateRollback>> =
            (0..30u32).map(|i| vec![cand(i, 1, 1), cand(i + 100, 2, 2)]).collect();
        assert!(solve_exhaustive(&big).is_none());
        assert!(solve_exhaustive(&[vec![]]).is_none());
    }

    #[test]
    fn greedy_handles_many_cycles() {
        // 30 cycles all sharing txn 0 — greedy should pick the hub.
        let cycles: Vec<Vec<CandidateRollback>> =
            (1..=30).map(|i| vec![cand(0, 1, 10), cand(i, 1, 8)]).collect();
        let s = solve_greedy(&cycles);
        assert_eq!(s.total_cost, 10);
        assert_eq!(s.rollbacks, vec![cand(0, 1, 10)]);
    }
}
