//! The runtime state-dependency graph of one transaction (§4).
//!
//! Vertices are the transaction's lock states `0..=p`; every write to an
//! entity or local variable with index of restorability `u`, performed at
//! lock index `w`, contributes the edge `{u, w}`. A lock state `q` is
//! **well-defined** — reproducible from the single-copy workspace — iff no
//! edge spans it (`u < q < w`, Theorem 4). The graph is maintained
//! incrementally: creating a lock state and recording a write are both
//! O(span); querying and truncating on rollback are linear in the worst
//! case and tiny in practice ("the overhead in maintaining a state
//! dependency graph is clearly very low").

use pr_model::LockIndex;
use serde::{Deserialize, Serialize};

/// Incrementally maintained state-dependency graph.
///
/// ```
/// use pr_graph::StateDependencyGraph;
/// use pr_model::LockIndex;
///
/// let mut g = StateDependencyGraph::new();
/// for _ in 0..3 {
///     g.on_lock_state();
/// }
/// // A re-write at lock index 3 of an entity first written right after
/// // lock state 0 destroys lock states 1 and 2 (Theorem 4).
/// g.on_write(LockIndex::new(0), LockIndex::new(3));
/// assert!(!g.is_well_defined(LockIndex::new(2)));
/// assert_eq!(g.latest_well_defined_at_or_below(LockIndex::new(2)), LockIndex::ZERO);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StateDependencyGraph {
    /// Write edges `(u, w)` with `u < w` (non-spanning edges are dropped).
    edges: Vec<(u32, u32)>,
    /// `cover[q]` = number of edges spanning lock state `q`.
    /// `cover.len() - 1` = the current (most recent) lock state index `p`.
    cover: Vec<u32>,
}

impl StateDependencyGraph {
    /// Creates the graph for a transaction with no lock states yet (only
    /// the trivial lock state 0 exists).
    pub fn new() -> Self {
        StateDependencyGraph { edges: Vec::new(), cover: vec![0] }
    }

    /// Current highest lock state index `p`.
    pub fn current(&self) -> LockIndex {
        LockIndex::new((self.cover.len() - 1) as u32)
    }

    /// Registers the creation of a new lock state (a lock request was
    /// issued). No existing edge can span it: every recorded write has
    /// `w <=` the previous top, so the new vertex starts uncovered.
    pub fn on_lock_state(&mut self) {
        self.cover.push(0);
    }

    /// Records a write with restorability index `u` at lock index `w`,
    /// covering states `u < q < w`.
    pub fn on_write(&mut self, u: LockIndex, w: LockIndex) {
        let (u, w) = (u.raw(), w.raw());
        debug_assert!(
            (w as usize) < self.cover.len() + 1,
            "write lock index beyond current lock state"
        );
        if w <= u + 1 {
            return; // spans nothing
        }
        self.edges.push((u, w));
        for q in (u + 1)..w.min(self.cover.len() as u32) {
            self.cover[q as usize] += 1;
        }
    }

    /// Whether lock state `q` is well-defined (Theorem 4).
    pub fn is_well_defined(&self, q: LockIndex) -> bool {
        self.cover.get(q.index()).copied() == Some(0)
    }

    /// The deepest well-defined lock state at or below `q` — the state an
    /// SDG rollback aimed at `q` actually lands on. Lock state 0 is always
    /// well-defined (total rollback), so this always succeeds for `q <= p`.
    pub fn latest_well_defined_at_or_below(&self, q: LockIndex) -> LockIndex {
        let mut q = q.index().min(self.cover.len() - 1);
        while self.cover[q] != 0 {
            debug_assert!(q > 0, "lock state 0 is never covered");
            q -= 1;
        }
        LockIndex::new(q as u32)
    }

    /// All well-defined lock states, ascending.
    pub fn well_defined_states(&self) -> Vec<LockIndex> {
        self.cover
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(q, _)| LockIndex::new(q as u32))
            .collect()
    }

    /// Number of lock states rendered undefined.
    pub fn undefined_count(&self) -> usize {
        self.cover.iter().filter(|&&c| c != 0).count()
    }

    /// Truncates the graph after a rollback to lock state `target`: edges
    /// produced by undone writes (`w > target`) disappear, and lock states
    /// above `target` no longer exist.
    pub fn rollback_to(&mut self, target: LockIndex) {
        let t = target.raw();
        self.edges.retain(|&(_, w)| w <= t);
        self.cover.truncate(t as usize + 1);
        // Recompute coverage for the surviving prefix (edges with w <= t
        // may still span states <= t; their contributions are unchanged,
        // but simplest-correct is a rebuild — the prefix is short).
        for c in &mut self.cover {
            *c = 0;
        }
        let edges = std::mem::take(&mut self.edges);
        for &(u, w) in &edges {
            for q in (u + 1)..w.min(self.cover.len() as u32) {
                self.cover[q as usize] += 1;
            }
        }
        self.edges = edges;
    }

    /// The raw edges, for the articulation-point cross-check and rendering.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(i: u32) -> LockIndex {
        LockIndex::new(i)
    }

    /// Builds a graph with `n` lock states and the given write edges.
    fn graph(n: u32, edges: &[(u32, u32)]) -> StateDependencyGraph {
        let mut g = StateDependencyGraph::new();
        let mut created = 0;
        // Interleave lock-state creation and writes in lock-index order.
        for &(u, w) in edges {
            while created < w {
                g.on_lock_state();
                created += 1;
            }
            g.on_write(li(u), li(w));
        }
        while created < n {
            g.on_lock_state();
            created += 1;
        }
        g
    }

    #[test]
    fn fresh_graph_has_only_state_zero() {
        let g = StateDependencyGraph::new();
        assert_eq!(g.current(), li(0));
        assert!(g.is_well_defined(li(0)));
        assert_eq!(g.well_defined_states(), vec![li(0)]);
    }

    #[test]
    fn non_spanning_writes_leave_everything_well_defined() {
        // First write to each entity right after its lock: edges (k-1, k).
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.well_defined_states().len(), 5);
        assert_eq!(g.undefined_count(), 0);
        assert!(g.edges().is_empty(), "non-spanning edges are dropped");
    }

    #[test]
    fn spanning_write_destroys_interior_states() {
        let g = graph(4, &[(0, 3)]);
        assert!(g.is_well_defined(li(0)));
        assert!(!g.is_well_defined(li(1)));
        assert!(!g.is_well_defined(li(2)));
        assert!(g.is_well_defined(li(3)));
        assert!(g.is_well_defined(li(4)));
        assert_eq!(g.undefined_count(), 2);
    }

    #[test]
    fn latest_well_defined_walks_down() {
        let g = graph(5, &[(1, 4)]);
        assert_eq!(g.latest_well_defined_at_or_below(li(5)), li(5));
        assert_eq!(g.latest_well_defined_at_or_below(li(4)), li(4));
        assert_eq!(g.latest_well_defined_at_or_below(li(3)), li(1));
        assert_eq!(g.latest_well_defined_at_or_below(li(2)), li(1));
        assert_eq!(g.latest_well_defined_at_or_below(li(1)), li(1));
        assert_eq!(g.latest_well_defined_at_or_below(li(0)), li(0));
    }

    #[test]
    fn overlapping_edges_accumulate() {
        let mut g = graph(4, &[(0, 2), (1, 3)]);
        // State 1 covered by (0,2); state 2 covered by both.
        assert!(!g.is_well_defined(li(1)));
        assert!(!g.is_well_defined(li(2)));
        assert!(g.is_well_defined(li(3)));
        // Rolling back to 3 keeps both edges (w ≤ 3).
        g.rollback_to(li(3));
        assert!(!g.is_well_defined(li(2)));
        // Rolling back to 1 drops the (1,3) edge and truncates; only
        // states 0 and 1 remain, and the (0,2) edge no longer covers 1?
        // (0,2) has w=2 > target=1, so it is dropped too.
        g.rollback_to(li(1));
        assert_eq!(g.current(), li(1));
        assert!(g.is_well_defined(li(1)));
        assert!(g.edges().is_empty());
    }

    #[test]
    fn rollback_recomputes_cover_for_surviving_edges() {
        let mut g = graph(6, &[(0, 2), (1, 5)]);
        g.rollback_to(li(3));
        // Edge (1,5) dropped (w=5 > 3); edge (0,2) survives and still
        // covers state 1.
        assert_eq!(g.current(), li(3));
        assert!(!g.is_well_defined(li(1)));
        assert!(g.is_well_defined(li(2)));
        assert!(g.is_well_defined(li(3)));
        assert_eq!(g.edges(), &[(0, 2)]);
    }

    #[test]
    fn current_tracks_lock_states() {
        let mut g = StateDependencyGraph::new();
        g.on_lock_state();
        g.on_lock_state();
        assert_eq!(g.current(), li(2));
    }

    #[test]
    fn write_beyond_current_state_covers_existing_prefix() {
        // A write at lock index w may arrive when only w-… states exist;
        // coverage applies to the states that exist now, and on_lock_state
        // starts new states uncovered because writes never have w greater
        // than the state count at the time they occur. Defensive check:
        let mut g = StateDependencyGraph::new();
        g.on_lock_state(); // p = 1
        g.on_write(li(0), li(1)); // non-spanning
        assert_eq!(g.undefined_count(), 0);
    }
}
