//! # pr-graph — graph substrate for partial-rollback deadlock removal
//!
//! Two graph structures drive the paper's algorithms:
//!
//! * The **concurrency graph** `G(T)` of §3 ([`WaitsForGraph`]): one vertex
//!   per transaction, one arc `holder → waiter` per wait, labelled with the
//!   contested entity. In an exclusive-only system it is a forest whenever
//!   no deadlock exists (Theorem 1, [`waits_for::WaitsForGraph::is_forest`]),
//!   so a wait response closes at most one cycle; with shared locks it is a
//!   general acyclic digraph and one wait may close many cycles at once —
//!   all through the requester ([`cycles`]).
//!
//! * The **state-dependency graph** of §4 ([`StateDependencyGraph`]): one
//!   vertex per lock state of a single transaction, with write-dependency
//!   edges. Its non-spanned vertices are the **well-defined** states a
//!   single-copy workspace can actually roll back to (Theorem 4). The
//!   [`articulation`] module implements the paper's articulation-point
//!   characterisation (Corollary 1) independently, and the property tests
//!   prove the two agree.
//!
//! The [`cutset`] module solves the optimisation problem of §3.2 — choose a
//! set of victims (with per-victim rollback depths) of minimum total cost
//! whose rollback breaks every cycle. The problem is NP-complete (the
//! paper relates it to feedback vertex set), so an exact branch-and-bound
//! solver is provided for the small instances real deadlocks produce, and a
//! greedy heuristic for everything else.

pub mod articulation;
pub mod cutset;
pub mod cycles;
pub mod sdg;
pub mod waits_for;

pub use cutset::{
    solution_covers, solve, solve_exact, solve_exhaustive, solve_greedy, CandidateRollback,
    CutSolution,
};
pub use cycles::{Cycle, CycleMember};
pub use sdg::StateDependencyGraph;
pub use waits_for::WaitsForGraph;
