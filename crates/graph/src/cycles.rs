//! Cycle enumeration for deadlock analysis (§3.1–§3.2).
//!
//! Every cycle a wait response creates passes through the requester
//! ("clearly, all of the cycles thus formed will include the vertex
//! corresponding to the transaction which caused the conflict"), so
//! enumeration reduces to finding the simple paths from the requester back
//! to the holders it is about to wait on. In the exclusive-only case the
//! graph is a forest beforehand (Theorem 1), so exactly one cycle can
//! exist; with shared locks there may be many, and the enumeration is
//! capped to keep the engine's worst case bounded.

use crate::waits_for::WaitsForGraph;
use pr_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};

/// One transaction's role in a cycle: to break this cycle by rolling back
/// this transaction, it must release `holds` — the entity labelling its
/// outgoing arc in the cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CycleMember {
    /// Transaction on the cycle.
    pub txn: TxnId,
    /// Entity this transaction holds that its successor in the cycle is
    /// waiting for. Rolling `txn` back to its lock state for `holds`
    /// removes this cycle.
    pub holds: EntityId,
}

/// A deadlock cycle, listed in cycle order starting from the requester
/// that caused it.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Cycle {
    /// Members in cycle order; `members[0].txn` is the requester.
    pub members: Vec<CycleMember>,
}

impl Cycle {
    /// The transactions on the cycle, in order.
    pub fn txns(&self) -> Vec<TxnId> {
        self.members.iter().map(|m| m.txn).collect()
    }

    /// Number of transactions involved.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A cycle always has at least two members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Enumerates the simple cycles that *would* be created if `requester`
/// started waiting for `entity`, currently held by `holders`.
///
/// The graph is inspected *before* the new arcs are inserted. At most
/// `cap` cycles are returned (the engine's resolution only needs the
/// cycles it will break; a cap of a few hundred is far beyond anything a
/// real lock table produces, but keeps adversarial graphs bounded).
///
/// Each cycle starts at `requester`; the member entry for a transaction
/// names the entity it must release to break that cycle. The requester's
/// own entry names the entity on its outgoing arc — the entity whose
/// holder-ship makes its successor wait.
pub fn cycles_on_wait(
    graph: &WaitsForGraph,
    requester: TxnId,
    entity: EntityId,
    holders: &[TxnId],
    cap: usize,
) -> Vec<Cycle> {
    // Simple-path enumeration is exponential in pathological graphs; the
    // node budget bounds a single detection pass. Exhausting it is safe
    // only because of the fallback inside: detection runs exclusively at
    // block time, so a cycle missed here would otherwise never be seen
    // again — every member is already blocked — and the system would
    // silently lose liveness.
    cycles_on_wait_budgeted(graph, requester, entity, holders, cap, 200_000)
}

/// [`cycles_on_wait`] with an explicit node budget for the simple-path
/// enumeration, exposed so exhaustive cross-checks can force the
/// budget-exhausted reachability fallback on *small* graphs (where the
/// production budget would never run out) and compare its answer against
/// the full enumeration.
pub fn cycles_on_wait_budgeted(
    graph: &WaitsForGraph,
    requester: TxnId,
    entity: EntityId,
    holders: &[TxnId],
    cap: usize,
    node_budget: u64,
) -> Vec<Cycle> {
    let mut cycles = Vec::new();
    if cap == 0 || holders.is_empty() {
        return cycles;
    }
    // DFS over holder→waiter arcs from the requester. A path
    // requester → x1 → … → h with h ∈ holders closes to a cycle via the
    // prospective arc h -entity-> requester.
    //
    // The entity a path vertex "holds" w.r.t. its successor is the entity
    // the successor waits for, i.e. the label on the successor's wait.
    let mut path: Vec<TxnId> = vec![requester];
    let mut on_path: Vec<TxnId> = vec![requester];
    let mut budget: u64 = node_budget;
    dfs(graph, requester, entity, holders, cap, &mut path, &mut on_path, &mut cycles, &mut budget);
    if cycles.is_empty() && budget == 0 {
        // The enumeration ran out of budget without either completing or
        // finding a single cycle (dense graphs — e.g. fair-queue arcs on a
        // long queue — have exponentially many simple paths). Fall back to
        // a linear-time reachability search that returns one cycle iff any
        // exists; the engine's resolution loop re-detects after each
        // rollback, so breaking one cycle per round still drains them all.
        cycles.extend(reachability_cycle(graph, requester, entity, holders));
    }
    cycles
}

/// Finds one path `requester → … → h` with `h ∈ holders` by visited-set
/// DFS (linear in arcs), and closes it into a cycle. Complete for cycle
/// *existence*, unlike the budgeted simple-path enumeration above.
fn reachability_cycle(
    graph: &WaitsForGraph,
    requester: TxnId,
    entity: EntityId,
    holders: &[TxnId],
) -> Option<Cycle> {
    let mut parent: std::collections::BTreeMap<TxnId, TxnId> = std::collections::BTreeMap::new();
    let mut stack = vec![requester];
    while let Some(current) = stack.pop() {
        for next in graph.successors(current) {
            if next == requester || parent.contains_key(&next) {
                continue;
            }
            parent.insert(next, current);
            if holders.contains(&next) {
                let mut path = vec![next];
                let mut at = next;
                while at != requester {
                    at = parent[&at];
                    path.push(at);
                }
                path.reverse();
                let mut members = Vec::with_capacity(path.len());
                for window in path.windows(2) {
                    let (from, to) = (window[0], window[1]);
                    let (ent, _) = graph.wait_of(to).expect("path follows wait arcs");
                    members.push(CycleMember { txn: from, holds: ent });
                }
                members.push(CycleMember { txn: next, holds: entity });
                return Some(Cycle { members });
            }
            stack.push(next);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    graph: &WaitsForGraph,
    current: TxnId,
    requested_entity: EntityId,
    holders: &[TxnId],
    cap: usize,
    path: &mut Vec<TxnId>,
    on_path: &mut Vec<TxnId>,
    cycles: &mut Vec<Cycle>,
    budget: &mut u64,
) {
    if cycles.len() >= cap || *budget == 0 {
        return;
    }
    *budget -= 1;
    // If the current vertex is one of the prospective holders, the path
    // closes into a cycle (checked before expanding further so that a
    // holder that is also an intermediate vertex yields its shortest
    // closure too). The requester itself is excluded: holders never include
    // the requester (it cannot hold what it requests).
    if current != path[0] && holders.contains(&current) {
        let mut members = Vec::with_capacity(path.len());
        for window in path.windows(2) {
            let (from, to) = (window[0], window[1]);
            // `to` waits for `from` on `to`'s wait entity.
            let (ent, _) = graph.wait_of(to).expect("path follows wait arcs");
            members.push(CycleMember { txn: from, holds: ent });
        }
        // Closing arc: requester waits for `current` on the requested entity.
        members.push(CycleMember { txn: current, holds: requested_entity });
        // Rotate so the requester (path[0]) is members[0] — it already is.
        cycles.push(Cycle { members });
        if cycles.len() >= cap {
            return;
        }
    }
    for next in graph.successors(current) {
        if on_path.contains(&next) {
            continue;
        }
        path.push(next);
        on_path.push(next);
        dfs(graph, next, requested_entity, holders, cap, path, on_path, cycles, budget);
        path.pop();
        on_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// Figure 1(a): T1 waits for T2 on a; T2 waits for T3 on c... — build
    /// the pre-request state: T3 waits for T4 on e, T4 waits for T2 on b
    /// is *not* the figure; instead reproduce the cycle T2→T3→T4→T2.
    ///
    /// Pre-state: T3 waits for T2 on c's holder... we model the figure's
    /// final deadlock: cycle closes when T2 requests e held by T4, with
    /// T3 waiting for T2 on b and T4 waiting for T3 on c already in place.
    #[test]
    fn single_cycle_exclusive_case() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(3), e(1), &[t(2)]); // T3 waits for T2 on b ⇒ arc T2→T3
        g.set_wait(t(4), e(2), &[t(3)]); // T4 waits for T3 on c ⇒ arc T3→T4
        g.set_wait(t(1), e(1), &[t(2)]); // T1 also waits for T2 on b (side branch)

        // T2 now requests e held by T4.
        let cycles = cycles_on_wait(&g, t(2), e(4), &[t(4)], 16);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.txns(), vec![t(2), t(3), t(4)]);
        // T2 must release b, T3 must release c, T4 must release e.
        assert_eq!(
            c.members,
            vec![
                CycleMember { txn: t(2), holds: e(1) },
                CycleMember { txn: t(3), holds: e(2) },
                CycleMember { txn: t(4), holds: e(4) },
            ]
        );
    }

    #[test]
    fn no_cycle_when_holders_unreachable() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        let cycles = cycles_on_wait(&g, t(3), e(1), &[t(1)], 16);
        assert!(cycles.is_empty());
    }

    #[test]
    fn two_txn_direct_deadlock() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]); // T2 waits for T1 on a
                                         // T1 requests b held by T2.
        let cycles = cycles_on_wait(&g, t(1), e(1), &[t(2)], 16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].members,
            vec![CycleMember { txn: t(1), holds: e(0) }, CycleMember { txn: t(2), holds: e(1) },]
        );
    }

    /// Figure 3(c): T1 requests exclusive on f held *shared* by T2 and T3,
    /// while T2 and T3 each already wait on T1 — two cycles close at once,
    /// both through T1.
    #[test]
    fn shared_holders_close_multiple_cycles() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]); // T2 waits for T1 on a
        g.set_wait(t(3), e(1), &[t(1)]); // T3 waits for T1 on b
        let cycles = cycles_on_wait(&g, t(1), e(5), &[t(2), t(3)], 16);
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert_eq!(c.members[0].txn, t(1));
            assert_eq!(c.members.last().unwrap().holds, e(5));
        }
        let sets: Vec<Vec<TxnId>> = cycles.iter().map(Cycle::txns).collect();
        assert!(sets.contains(&vec![t(1), t(2)]));
        assert!(sets.contains(&vec![t(1), t(3)]));
    }

    #[test]
    fn cap_limits_enumeration() {
        let mut g = WaitsForGraph::new();
        for i in 2..8 {
            g.set_wait(t(i), e(i), &[t(1)]); // many waiters on T1
        }
        let holders: Vec<TxnId> = (2..8).map(t).collect();
        let cycles = cycles_on_wait(&g, t(1), e(99), &holders, 3);
        assert_eq!(cycles.len(), 3);
    }

    #[test]
    fn longer_paths_are_found() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        g.set_wait(t(3), e(1), &[t(2)]);
        g.set_wait(t(4), e(2), &[t(3)]);
        let cycles = cycles_on_wait(&g, t(1), e(3), &[t(4)], 16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].txns(), vec![t(1), t(2), t(3), t(4)]);
        assert_eq!(cycles[0].len(), 4);
        assert!(!cycles[0].is_empty());
    }

    /// Regression: the budgeted enumeration must never report "no cycle"
    /// when one exists. Transactions 2..=20 form a complete DAG hanging
    /// off T1 (each waits on all lower-numbered ones — the shape fair-queue
    /// arcs produce on a long queue), giving ~2^19 simple paths from T1,
    /// far past the node budget. The only holder, T100, sits on a spur the
    /// depth-first enumeration reaches last — so it exhausts its budget
    /// inside the dense region and finds nothing, and only the
    /// reachability fallback reports the T1 ⇄ T100 deadlock.
    #[test]
    fn budget_exhaustion_still_finds_an_existing_cycle() {
        let mut g = WaitsForGraph::new();
        for i in 2..=20 {
            let lower: Vec<TxnId> = (1..i).map(t).collect();
            g.set_wait(t(i), e(i), &lower);
        }
        g.set_wait(t(100), e(50), &[t(1)]); // T100 waits for T1 on e50
                                            // T1 requests e60 held by T100.
        let cycles = cycles_on_wait(&g, t(1), e(60), &[t(100)], 16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].members,
            vec![
                CycleMember { txn: t(1), holds: e(50) },
                CycleMember { txn: t(100), holds: e(60) }
            ]
        );
    }

    #[test]
    fn zero_cap_or_no_holders_yields_nothing() {
        let mut g = WaitsForGraph::new();
        g.set_wait(t(2), e(0), &[t(1)]);
        assert!(cycles_on_wait(&g, t(1), e(1), &[t(2)], 0).is_empty());
        assert!(cycles_on_wait(&g, t(1), e(1), &[], 16).is_empty());
    }
}
