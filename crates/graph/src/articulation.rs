//! The paper's articulation-point characterisation of well-defined states
//! (Corollary 1), implemented independently of the interval method in
//! [`crate::sdg`] so the two can cross-check each other.
//!
//! Build the undirected graph over lock-state vertices `0..=p` with the
//! path edges `{q, q+1}` ("the labels of v1 and v2 differ by 1") and a
//! chord `{u, w}` for every write edge. A non-endpoint vertex `q` lies on
//! every 0–p path iff it is an articulation point, which holds iff no
//! chord spans it — and those are exactly the well-defined states. The
//! endpoints 0 and `p` are the paper's "trivial" well-defined states
//! (total rollback and the current state).

use pr_model::LockIndex;

/// Computes the well-defined lock states of a transaction with current
/// lock state `p` and the given write edges, via articulation points of
/// the path-plus-chords graph. Returns the states in ascending order.
pub fn well_defined_by_articulation(p: u32, edges: &[(u32, u32)]) -> Vec<LockIndex> {
    let n = (p + 1) as usize;
    if n == 1 {
        return vec![LockIndex::ZERO];
    }
    // Adjacency: path edges + chords clamped into range.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for q in 0..n - 1 {
        adj[q].push(q + 1);
        adj[q + 1].push(q);
    }
    for &(u, w) in edges {
        let (u, w) = (u as usize, (w as usize).min(n - 1));
        if w > u + 1 {
            adj[u].push(w);
            adj[w].push(u);
        }
    }

    // Iterative Tarjan articulation-point algorithm (Hopcroft–Tarjan
    // low-link), rooted at 0; the graph is connected via the path edges.
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_art = vec![false; n];
    let mut timer = 0usize;
    // Stack frames: (vertex, parent, next child index).
    let mut stack: Vec<(usize, usize, usize)> = vec![(0, usize::MAX, 0)];
    disc[0] = 0;
    low[0] = 0;
    timer += 1;
    let mut root_children = 0usize;
    while let Some(&mut (v, parent, ref mut ci)) = stack.last_mut() {
        if *ci < adj[v].len() {
            let to = adj[v][*ci];
            *ci += 1;
            if to == parent {
                continue;
            }
            if disc[to] != usize::MAX {
                low[v] = low[v].min(disc[to]);
            } else {
                disc[to] = timer;
                low[to] = timer;
                timer += 1;
                if v == 0 {
                    root_children += 1;
                }
                stack.push((to, v, 0));
            }
        } else {
            stack.pop();
            if let Some(&(pv, _, _)) = stack.last() {
                low[pv] = low[pv].min(low[v]);
                if pv != 0 && low[v] >= disc[pv] {
                    is_art[pv] = true;
                }
            }
        }
    }
    is_art[0] = root_children > 1;

    // Well-defined = trivial endpoints + articulation points in between.
    (0..n)
        .filter(|&q| q == 0 || q == n - 1 || is_art[q])
        .map(|q| LockIndex::new(q as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lis(v: &[u32]) -> Vec<LockIndex> {
        v.iter().map(|&q| LockIndex::new(q)).collect()
    }

    #[test]
    fn no_chords_makes_every_state_well_defined() {
        assert_eq!(well_defined_by_articulation(4, &[]), lis(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn single_vertex_graph() {
        assert_eq!(well_defined_by_articulation(0, &[]), lis(&[0]));
    }

    #[test]
    fn chord_removes_interior_states() {
        // Chord {0,3} on path 0-1-2-3-4: vertices 1 and 2 are bypassed.
        assert_eq!(well_defined_by_articulation(4, &[(0, 3)]), lis(&[0, 3, 4]));
    }

    #[test]
    fn chord_to_endpoint_destroys_everything_interior() {
        assert_eq!(well_defined_by_articulation(4, &[(0, 4)]), lis(&[0, 4]));
    }

    #[test]
    fn overlapping_chords_union_their_spans() {
        // {0,2} kills 1; {1,4} kills 2, 3.
        assert_eq!(well_defined_by_articulation(5, &[(0, 2), (1, 4)]), lis(&[0, 4, 5]));
    }

    #[test]
    fn adjacent_chords_are_harmless() {
        assert_eq!(well_defined_by_articulation(3, &[(0, 1), (1, 2), (2, 3)]), lis(&[0, 1, 2, 3]));
    }

    #[test]
    fn agrees_with_interval_method_on_examples() {
        use crate::sdg::StateDependencyGraph;
        let cases: &[(u32, &[(u32, u32)])] = &[
            (6, &[(0, 3), (2, 6)]),
            (6, &[(1, 5), (0, 2)]),
            (8, &[(0, 8)]),
            (5, &[]),
            (7, &[(2, 4), (4, 7), (0, 1)]),
        ];
        for &(p, edges) in cases {
            let mut g = StateDependencyGraph::new();
            let mut created = 0;
            let mut sorted: Vec<(u32, u32)> = edges.to_vec();
            sorted.sort_by_key(|&(_, w)| w);
            for (u, w) in sorted {
                while created < w {
                    g.on_lock_state();
                    created += 1;
                }
                g.on_write(LockIndex::new(u), LockIndex::new(w));
            }
            while created < p {
                g.on_lock_state();
                created += 1;
            }
            assert_eq!(
                g.well_defined_states(),
                well_defined_by_articulation(p, edges),
                "mismatch for p={p}, edges={edges:?}"
            );
        }
    }
}
