//! The value stacks of the multi-lock copy strategy (MCS, §4).
//!
//! "Each stack element has two fields, a value field and an index field. …
//! The system then pushes a new element onto the stack for a given lock
//! state iff the lock index of the write operation producing the new value
//! of the entity is greater than the lock index of the [top of the] stack.
//! Otherwise the two indices must be equal, in which case the value field of
//! the current top element in the stack is updated."
//!
//! Stacks for global entities are created at the entity's lock state and
//! carry that lock index; stacks for local variables are created at
//! transaction start with index 0 and an initial element holding the
//! variable's initial value.
//!
//! ## Copy-on-first-write layout
//!
//! The base element lives inline; the `extras` vector exists only once a
//! write actually creates a second version. Creating a stack therefore
//! allocates nothing — MCS creates one stack per exclusive lock, and on
//! the multi-threaded engine's uncontended hot path that per-lock heap
//! allocation was pure overhead for the (common) transactions that never
//! roll back past their first write.

use pr_model::{LockIndex, Value};
use serde::{Deserialize, Serialize};

/// One element of a version stack: a value and the lock index of the write
/// (or initial load) that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StackElement {
    /// The stored value.
    pub value: Value,
    /// Lock index of the operation that produced this value.
    pub lock_index: LockIndex,
}

/// A per-entity (or per-local-variable) version stack.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct VersionStack {
    /// The stack's own index: the lock index of the lock state it is
    /// associated with (0 for local variables).
    stack_index: LockIndex,
    /// The bottom element, held inline (copy-on-first-write: no heap
    /// allocation until a write pushes a second version).
    base: StackElement,
    /// Elements above the base, oldest first. Empty for a fresh stack.
    extras: Vec<StackElement>,
}

impl VersionStack {
    /// Creates a stack at `stack_index` whose base element holds `base` —
    /// the entity's global value at lock time, or a local variable's
    /// initial value. Allocation-free.
    pub fn new(stack_index: LockIndex, base: Value) -> Self {
        VersionStack {
            stack_index,
            base: StackElement { value: base, lock_index: stack_index },
            extras: Vec::new(),
        }
    }

    /// The stack's fixed index.
    #[inline]
    pub fn stack_index(&self) -> LockIndex {
        self.stack_index
    }

    #[inline]
    fn top(&self) -> &StackElement {
        self.extras.last().unwrap_or(&self.base)
    }

    /// Records a write of `value` at `lock_index`, pushing or updating the
    /// top per the MCS rule. `lock_index` must be monotone non-decreasing
    /// across calls (writes arrive in program order).
    pub fn record_write(&mut self, lock_index: LockIndex, value: Value) {
        let top = self.extras.last_mut().unwrap_or(&mut self.base);
        debug_assert!(
            lock_index >= top.lock_index,
            "writes must arrive in lock-index order: {lock_index:?} < {:?}",
            top.lock_index
        );
        if lock_index > top.lock_index {
            self.extras.push(StackElement { value, lock_index });
        } else {
            top.value = value;
        }
    }

    /// The current (most recent) value.
    #[inline]
    pub fn current(&self) -> Value {
        self.top().value
    }

    /// The value the entity had at lock state `target` — the top element
    /// with `lock_index <= target`. `None` if `target` precedes the stack's
    /// creation (the entity was not locked yet).
    pub fn value_at(&self, target: LockIndex) -> Option<Value> {
        if target < self.stack_index {
            return None;
        }
        // The base qualifies whenever target >= stack_index, so an extras
        // miss still resolves.
        Some(
            self.extras.iter().rev().find(|el| el.lock_index <= target).unwrap_or(&self.base).value,
        )
    }

    /// Pops every element produced by a write *after* lock state `target`
    /// (elements with `lock_index > target`) — step 3 of the §4 rollback
    /// procedure. Returns how many copies were discarded. The base element
    /// is never popped (its index is the stack's own).
    pub fn pop_above(&mut self, target: LockIndex) -> usize {
        let before = self.extras.len();
        self.extras.retain(|el| el.lock_index <= target);
        before - self.extras.len()
    }

    /// Total number of elements held.
    #[inline]
    pub fn len(&self) -> usize {
        self.extras.len() + 1
    }

    /// A stack always holds at least its base element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of *copies* in the Theorem 3 sense: elements beyond the base
    /// element (the base duplicates a value available elsewhere — the
    /// database's global value, or the program's initial variable value).
    #[inline]
    pub fn copies(&self) -> usize {
        self.extras.len()
    }

    /// The elements, base first.
    pub fn elements(&self) -> impl Iterator<Item = StackElement> + '_ {
        std::iter::once(self.base).chain(self.extras.iter().copied())
    }

    /// Structural self-check: the base element carries the stack's own
    /// index and lock indices are strictly increasing above it. Violations
    /// indicate engine bookkeeping bugs (used by the crash-recovery
    /// invariant sweep).
    pub fn check_integrity(&self) -> Result<(), String> {
        if self.base.lock_index != self.stack_index {
            return Err(format!(
                "base lock index {:?} differs from stack index {:?}",
                self.base.lock_index, self.stack_index
            ));
        }
        let mut prev = self.base.lock_index;
        for el in &self.extras {
            if el.lock_index <= prev {
                return Err(format!(
                    "lock indices not strictly increasing: {:?} then {:?}",
                    prev, el.lock_index
                ));
            }
            prev = el.lock_index;
        }
        Ok(())
    }

    /// Enforces a bound on the number of copies (elements beyond the
    /// base): if exceeded, evicts the *oldest non-base* element and
    /// returns the lock-index interval `[evicted, successor)` whose
    /// values can no longer be reproduced.
    ///
    /// The current value (stack top) is never evicted, so an effective
    /// budget below 1 behaves as 1. This implements the paper's closing
    /// suggestion of "allocat\[ing\] a bounded amount of extra storage to
    /// the entities in order to maximize the number of well-defined
    /// states".
    pub fn enforce_budget(&mut self, budget: usize) -> Option<(LockIndex, LockIndex)> {
        if self.copies() <= budget.max(1) {
            return None;
        }
        // extras[0] is the oldest copy, and a successor exists in extras
        // because copies() >= 2.
        let evicted = self.extras.remove(0);
        let successor = self.extras[0];
        Some((evicted.lock_index, successor.lock_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(i: u32) -> LockIndex {
        LockIndex::new(i)
    }
    fn v(i: i64) -> Value {
        Value::new(i)
    }

    #[test]
    fn base_element_holds_global_value() {
        let s = VersionStack::new(li(2), v(10));
        assert_eq!(s.current(), v(10));
        assert_eq!(s.len(), 1);
        assert_eq!(s.copies(), 0);
        assert_eq!(s.stack_index(), li(2));
    }

    #[test]
    fn write_at_same_lock_index_updates_in_place() {
        let mut s = VersionStack::new(li(1), v(0));
        s.record_write(li(2), v(5));
        s.record_write(li(2), v(6));
        assert_eq!(s.len(), 2);
        assert_eq!(s.current(), v(6));
    }

    #[test]
    fn write_at_higher_lock_index_pushes() {
        let mut s = VersionStack::new(li(0), v(0));
        s.record_write(li(1), v(1));
        s.record_write(li(3), v(3));
        assert_eq!(s.len(), 3);
        assert_eq!(s.copies(), 2);
        assert_eq!(s.current(), v(3));
    }

    #[test]
    fn value_at_returns_version_visible_at_lock_state() {
        let mut s = VersionStack::new(li(0), v(100));
        s.record_write(li(1), v(1)); // write before lock state 1
        s.record_write(li(3), v(3)); // write before lock state 3
        assert_eq!(s.value_at(li(0)), Some(v(100)));
        assert_eq!(s.value_at(li(1)), Some(v(1)));
        assert_eq!(s.value_at(li(2)), Some(v(1)));
        assert_eq!(s.value_at(li(3)), Some(v(3)));
        assert_eq!(s.value_at(li(9)), Some(v(3)));
    }

    #[test]
    fn value_at_before_creation_is_none() {
        let s = VersionStack::new(li(3), v(0));
        assert_eq!(s.value_at(li(2)), None);
        assert_eq!(s.value_at(li(3)), Some(v(0)));
    }

    #[test]
    fn pop_above_discards_later_writes() {
        let mut s = VersionStack::new(li(0), v(100));
        s.record_write(li(1), v(1));
        s.record_write(li(2), v(2));
        s.record_write(li(4), v(4));
        let popped = s.pop_above(li(2));
        assert_eq!(popped, 1);
        assert_eq!(s.current(), v(2));
        let popped = s.pop_above(li(0));
        assert_eq!(popped, 2);
        assert_eq!(s.current(), v(100));
        assert_eq!(s.copies(), 0);
        // Base element survives even a rollback to the stack's own index.
        assert_eq!(s.pop_above(li(0)), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fresh_stacks_and_in_place_updates_never_allocate() {
        let mut s = VersionStack::new(li(1), v(0));
        assert_eq!(s.extras.capacity(), 0, "creation must not allocate");
        s.record_write(li(1), v(7)); // same index as the base: in-place
        assert_eq!(s.extras.capacity(), 0, "in-place update must not allocate");
        assert_eq!(s.current(), v(7));
        s.record_write(li(2), v(8)); // first real copy: now it may allocate
        assert_eq!(s.copies(), 1);
    }

    #[test]
    fn elements_iterates_base_first_in_order() {
        let mut s = VersionStack::new(li(0), v(100));
        s.record_write(li(1), v(1));
        s.record_write(li(3), v(3));
        let got: Vec<(u32, i64)> =
            s.elements().map(|el| (el.lock_index.raw(), el.value.raw())).collect();
        assert_eq!(got, vec![(0, 100), (1, 1), (3, 3)]);
        s.check_integrity().unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "writes must arrive in lock-index order")]
    fn out_of_order_writes_are_rejected_in_debug() {
        let mut s = VersionStack::new(li(0), v(0));
        s.record_write(li(3), v(3));
        s.record_write(li(1), v(1));
    }
}
