//! The multi-lock copy strategy workspace (MCS, §4).
//!
//! A transaction's MCS workspace holds one [`VersionStack`] per exclusively
//! locked entity — created at the entity's lock state and destroyed at
//! unlock — plus one stack per local variable, created at transaction start
//! with stack index 0. With this bookkeeping the transaction can be rolled
//! back to **any** of its lock states, at a worst-case space cost of
//! `n(n+1)/2` entity copies and `n·|L|` local-variable copies (Theorem 3).

use crate::error::StorageError;
use crate::version_stack::VersionStack;
use pr_model::{EntityId, LockIndex, Value, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Copy counts in the Theorem 3 sense (elements beyond each stack's base).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CopyCounts {
    /// Copies of global entities held in stacks.
    pub entity_copies: usize,
    /// Copies of local variables held in stacks.
    pub var_copies: usize,
}

impl CopyCounts {
    /// Total copies of both kinds.
    pub fn total(self) -> usize {
        self.entity_copies + self.var_copies
    }

    /// Theorem 3's worst-case bound for `n` locked entities and `l` local
    /// variables: `n(n+1)/2 + n·l`.
    pub fn theorem3_bound(n: usize, l: usize) -> usize {
        n * (n + 1) / 2 + n * l
    }
}

/// A transaction's multi-lock-copy workspace.
///
/// ```
/// use pr_model::{EntityId, LockIndex, Value};
/// use pr_storage::McsWorkspace;
///
/// let a = EntityId::new(0);
/// let mut ws = McsWorkspace::new(&[]);
/// ws.on_exclusive_lock(a, LockIndex::new(0), Value::new(10));
/// ws.write_entity(a, LockIndex::new(1), Value::new(11)).unwrap();
/// ws.write_entity(a, LockIndex::new(2), Value::new(12)).unwrap();
/// // Every earlier lock state's value is reproducible…
/// assert_eq!(ws.entity_value_at(a, LockIndex::new(1)), Some(Value::new(11)));
/// // …and rollback restores it.
/// ws.rollback_to(LockIndex::new(1));
/// assert_eq!(ws.read_entity(a), Some(Value::new(11)));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct McsWorkspace {
    entity_stacks: BTreeMap<EntityId, VersionStack>,
    var_stacks: Vec<VersionStack>,
    /// Cache of each variable's current value, so expression evaluation can
    /// borrow a slice without materialising one per operation.
    current_vars: Vec<Value>,
    peak: CopyCounts,
    /// Optional per-stack copy budget (the bounded-storage extension of
    /// §5's closing paragraph). `None` = unbounded MCS.
    budget: Option<usize>,
}

impl McsWorkspace {
    /// Creates a workspace for a transaction with the given initial local
    /// variable values.
    pub fn new(initial_vars: &[Value]) -> Self {
        Self::with_budget(initial_vars, None)
    }

    /// Creates a workspace whose stacks each hold at most `budget` copies
    /// beyond their base — the bounded-storage middle ground between
    /// single-copy (budget 1) and full MCS (unbounded). Evictions trade
    /// restorable states for space; the caller learns the destroyed
    /// intervals from the write methods' return values.
    pub fn with_budget(initial_vars: &[Value], budget: Option<usize>) -> Self {
        McsWorkspace {
            entity_stacks: BTreeMap::new(),
            var_stacks: initial_vars
                .iter()
                .map(|&v| VersionStack::new(LockIndex::ZERO, v))
                .collect(),
            current_vars: initial_vars.to_vec(),
            peak: CopyCounts::default(),
            budget,
        }
    }

    /// Called when an exclusive lock is granted at lock state `lock_state`:
    /// "When A is locked by T_i, its global value is pushed onto the stack"
    /// — the stack is created with the global value as its base element.
    ///
    /// Shared locks create no stack: a shared holder never writes, so the
    /// global value in the database suffices.
    pub fn on_exclusive_lock(&mut self, entity: EntityId, lock_state: LockIndex, global: Value) {
        let prev = self.entity_stacks.insert(entity, VersionStack::new(lock_state, global));
        debug_assert!(prev.is_none(), "entity {entity} locked twice");
    }

    /// Records a write of `value` to `entity` by an operation with lock
    /// index `lock_index`. Under a copy budget the stack may evict its
    /// oldest copy; the destroyed lock-index interval `[from, to)` is
    /// returned so the caller can mark those states unreachable.
    pub fn write_entity(
        &mut self,
        entity: EntityId,
        lock_index: LockIndex,
        value: Value,
    ) -> Result<Option<(LockIndex, LockIndex)>, StorageError> {
        let stack = self.entity_stacks.get_mut(&entity).ok_or(StorageError::NoLocalCopy(entity))?;
        stack.record_write(lock_index, value);
        let evicted = self.budget.and_then(|b| stack.enforce_budget(b));
        self.bump_peak();
        Ok(evicted)
    }

    /// The transaction's current local view of `entity`, if it holds a
    /// stack for it (i.e. holds it exclusively). Shared-locked entities are
    /// read from the database directly.
    pub fn read_entity(&self, entity: EntityId) -> Option<Value> {
        self.entity_stacks.get(&entity).map(VersionStack::current)
    }

    /// Records an assignment to a local variable at `lock_index`, with the
    /// same budget/eviction behaviour as [`Self::write_entity`].
    pub fn assign_var(
        &mut self,
        var: VarId,
        lock_index: LockIndex,
        value: Value,
    ) -> Result<Option<(LockIndex, LockIndex)>, StorageError> {
        let stack =
            self.var_stacks.get_mut(var.index()).ok_or(StorageError::NoSuchVariable(var))?;
        stack.record_write(lock_index, value);
        let evicted = self.budget.and_then(|b| stack.enforce_budget(b));
        self.current_vars[var.index()] = value;
        self.bump_peak();
        Ok(evicted)
    }

    /// Current values of all local variables (for expression evaluation).
    pub fn vars(&self) -> &[Value] {
        &self.current_vars
    }

    /// Current value of one variable.
    pub fn var(&self, var: VarId) -> Result<Value, StorageError> {
        self.current_vars.get(var.index()).copied().ok_or(StorageError::NoSuchVariable(var))
    }

    /// Called at unlock: returns the final local value to publish as the
    /// new global value ("the top of the stack is copied as the new global
    /// value of A and the stack is returned to free storage"), or `None` if
    /// the entity had no stack (shared lock — nothing to publish).
    pub fn on_unlock(&mut self, entity: EntityId) -> Option<Value> {
        self.entity_stacks.remove(&entity).map(|s| s.current())
    }

    /// Performs the workspace part of the §4 rollback procedure to lock
    /// state `target`:
    ///
    /// 1. stacks with stack index `>= target` are deleted — their entities'
    ///    locks will be released *without* publishing (returned here);
    /// 2. remaining entity stacks pop every element with lock index
    ///    `> target`;
    /// 3. local-variable stacks do the same, and current values are
    ///    restored from the new stack tops.
    ///
    /// Returns the entities whose stacks were deleted, in id order.
    pub fn rollback_to(&mut self, target: LockIndex) -> Vec<EntityId> {
        let released: Vec<EntityId> = self
            .entity_stacks
            .iter()
            .filter(|(_, s)| s.stack_index() >= target)
            .map(|(id, _)| *id)
            .collect();
        for id in &released {
            self.entity_stacks.remove(id);
        }
        for stack in self.entity_stacks.values_mut() {
            stack.pop_above(target);
        }
        for (i, stack) in self.var_stacks.iter_mut().enumerate() {
            stack.pop_above(target);
            self.current_vars[i] = stack.current();
        }
        released
    }

    /// Current copy counts (Theorem 3 accounting).
    pub fn copy_counts(&self) -> CopyCounts {
        CopyCounts {
            entity_copies: self.entity_stacks.values().map(VersionStack::copies).sum(),
            var_copies: self.var_stacks.iter().map(VersionStack::copies).sum(),
        }
    }

    /// Highest copy counts ever observed.
    pub fn peak_copy_counts(&self) -> CopyCounts {
        self.peak
    }

    /// Number of entity stacks currently held (= exclusively locked
    /// entities).
    pub fn entity_stack_count(&self) -> usize {
        self.entity_stacks.len()
    }

    /// The entity's value as it was at lock state `target`, if determinable
    /// from the stacks (MCS can always answer this for held entities —
    /// that is its whole point).
    pub fn entity_value_at(&self, entity: EntityId, target: LockIndex) -> Option<Value> {
        self.entity_stacks.get(&entity).and_then(|s| s.value_at(target))
    }

    /// Structural self-check used by the crash-recovery invariant sweep:
    /// every stack is internally consistent, the cached variable values
    /// mirror their stack tops, any copy budget is respected, and the peak
    /// counters dominate the current counts.
    pub fn check_integrity(&self) -> Result<(), String> {
        for (id, stack) in &self.entity_stacks {
            stack.check_integrity().map_err(|e| format!("{id}: {e}"))?;
            if let Some(b) = self.budget {
                if stack.copies() > b.max(1) {
                    return Err(format!("{id}: {} copies exceed budget {b}", stack.copies()));
                }
            }
        }
        if self.var_stacks.len() != self.current_vars.len() {
            return Err("variable stack count diverged from cached values".into());
        }
        for (i, stack) in self.var_stacks.iter().enumerate() {
            stack.check_integrity().map_err(|e| format!("v{i}: {e}"))?;
            if stack.stack_index() != LockIndex::ZERO {
                return Err(format!("v{i}: variable stack created at {:?}", stack.stack_index()));
            }
            if stack.current() != self.current_vars[i] {
                return Err(format!("v{i}: cached value diverged from stack top"));
            }
        }
        let now = self.copy_counts();
        if now.entity_copies > self.peak.entity_copies || now.var_copies > self.peak.var_copies {
            return Err("peak copy counts fell below current counts".into());
        }
        Ok(())
    }

    /// Writes a canonical text encoding of the workspace's *restorable
    /// content* into `out`: everything that can influence future execution
    /// (stack contents, cached variable values, any copy budget). The
    /// monotone `peak` counters are metrics only and are excluded, so two
    /// workspaces that will behave identically encode identically. Used by
    /// the model checker's state fingerprint.
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write;
        for (id, stack) in &self.entity_stacks {
            let _ = write!(out, "E{}@{}:", id.raw(), stack.stack_index().raw());
            for el in stack.elements() {
                let _ = write!(out, "{},{};", el.lock_index.raw(), el.value.raw());
            }
        }
        for (i, stack) in self.var_stacks.iter().enumerate() {
            let _ = write!(out, "V{i}:");
            for el in stack.elements() {
                let _ = write!(out, "{},{};", el.lock_index.raw(), el.value.raw());
            }
        }
        let _ = write!(out, "B{:?}", self.budget);
    }

    fn bump_peak(&mut self) {
        let now = self.copy_counts();
        if now.entity_copies > self.peak.entity_copies {
            self.peak.entity_copies = now.entity_copies;
        }
        if now.var_copies > self.peak.var_copies {
            self.peak.var_copies = now.var_copies;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn li(i: u32) -> LockIndex {
        LockIndex::new(i)
    }
    fn v(i: i64) -> Value {
        Value::new(i)
    }

    #[test]
    fn exclusive_lock_creates_stack_with_global_base() {
        let mut w = McsWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(42));
        assert_eq!(w.read_entity(e(0)), Some(v(42)));
        assert_eq!(w.entity_stack_count(), 1);
        assert_eq!(w.copy_counts().entity_copies, 0);
    }

    #[test]
    fn writes_update_local_view_not_global() {
        let mut w = McsWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        w.write_entity(e(0), li(1), v(20)).unwrap();
        assert_eq!(w.read_entity(e(0)), Some(v(20)));
        assert_eq!(w.copy_counts().entity_copies, 1);
    }

    #[test]
    fn write_without_stack_errors() {
        let mut w = McsWorkspace::new(&[]);
        assert_eq!(w.write_entity(e(0), li(1), v(1)), Err(StorageError::NoLocalCopy(e(0))));
    }

    #[test]
    fn unlock_returns_final_value_and_frees_stack() {
        let mut w = McsWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        w.write_entity(e(0), li(1), v(15)).unwrap();
        assert_eq!(w.on_unlock(e(0)), Some(v(15)));
        assert_eq!(w.entity_stack_count(), 0);
        assert_eq!(w.on_unlock(e(0)), None);
    }

    #[test]
    fn rollback_deletes_late_stacks_and_pops_survivors() {
        let mut w = McsWorkspace::new(&[v(0)]);
        // Lock a at state 0, b at state 1, c at state 2.
        w.on_exclusive_lock(e(0), li(0), v(100));
        w.write_entity(e(0), li(1), v(101)).unwrap(); // before lock state 1
        w.on_exclusive_lock(e(1), li(1), v(200));
        w.write_entity(e(0), li(2), v(102)).unwrap();
        w.on_exclusive_lock(e(2), li(2), v(300));
        w.assign_var(VarId::new(0), li(3), v(7)).unwrap();

        // Roll back to lock state 1: c's and b's stacks (indices 2, 1) are
        // deleted; a's stack pops the lock-index-2 element.
        let released = w.rollback_to(li(1));
        assert_eq!(released, vec![e(1), e(2)]);
        assert_eq!(w.read_entity(e(0)), Some(v(101)));
        assert_eq!(w.var(VarId::new(0)).unwrap(), v(0));
        assert_eq!(w.vars(), &[v(0)]);
    }

    #[test]
    fn rollback_to_zero_is_total() {
        let mut w = McsWorkspace::new(&[v(5)]);
        w.on_exclusive_lock(e(0), li(0), v(1));
        w.write_entity(e(0), li(1), v(2)).unwrap();
        w.assign_var(VarId::new(0), li(1), v(50)).unwrap();
        let released = w.rollback_to(LockIndex::ZERO);
        assert_eq!(released, vec![e(0)]);
        assert_eq!(w.entity_stack_count(), 0);
        assert_eq!(w.vars(), &[v(5)]);
        assert_eq!(w.copy_counts().total(), 0);
    }

    #[test]
    fn value_at_past_lock_state_is_recoverable() {
        let mut w = McsWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        w.write_entity(e(0), li(1), v(11)).unwrap();
        w.write_entity(e(0), li(3), v(13)).unwrap();
        assert_eq!(w.entity_value_at(e(0), li(0)), Some(v(10)));
        assert_eq!(w.entity_value_at(e(0), li(2)), Some(v(11)));
        assert_eq!(w.entity_value_at(e(0), li(3)), Some(v(13)));
        assert_eq!(w.entity_value_at(e(1), li(0)), None);
    }

    /// The adversarial program of Theorem 3: lock `E_j` at state `j`, then
    /// write every held entity once before the next lock. Stacks fill to
    /// exactly the `n(n+1)/2` bound.
    #[test]
    fn theorem3_worst_case_is_achieved_exactly() {
        let n = 6u32;
        let l = 2usize;
        let mut w = McsWorkspace::new(&vec![v(0); l]);
        for j in 0..n {
            w.on_exclusive_lock(e(j), li(j), v(0));
            // Operations between lock request j and j+1 have lock index j+1.
            for i in 0..=j {
                w.write_entity(e(i), li(j + 1), v((j * 10 + i) as i64)).unwrap();
            }
            for var in 0..l {
                w.assign_var(VarId::new(var as u16), li(j + 1), v(j as i64)).unwrap();
            }
        }
        let counts = w.copy_counts();
        assert_eq!(counts.entity_copies, (n * (n + 1) / 2) as usize);
        assert_eq!(counts.var_copies, n as usize * l);
        assert_eq!(counts.total(), CopyCounts::theorem3_bound(n as usize, l));
        assert_eq!(w.peak_copy_counts(), counts);
    }

    #[test]
    fn peak_survives_rollback() {
        let mut w = McsWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(0));
        w.write_entity(e(0), li(1), v(1)).unwrap();
        w.write_entity(e(0), li(2), v(2)).unwrap();
        assert_eq!(w.peak_copy_counts().entity_copies, 2);
        w.rollback_to(li(1));
        assert_eq!(w.copy_counts().entity_copies, 1);
        assert_eq!(w.peak_copy_counts().entity_copies, 2);
    }

    #[test]
    fn assign_out_of_range_var_errors() {
        let mut w = McsWorkspace::new(&[v(0)]);
        assert_eq!(
            w.assign_var(VarId::new(3), li(1), v(1)),
            Err(StorageError::NoSuchVariable(VarId::new(3)))
        );
        assert!(w.var(VarId::new(3)).is_err());
    }
}
