//! Log storage behind small traits, so the crash-matrix tests can enumerate
//! every crash point in-process.
//!
//! [`FsDir`]/`FsFile` are the real thing: append-only files, `sync_data`
//! fsyncs, best-effort directory fsync on create/remove so segment metadata
//! is durable too. [`MemDir`] is a deterministic in-memory disk shared
//! through an `Arc`: a [`FailPlan`] arms a byte budget, and the append that
//! would cross it persists only the bytes under the budget (a torn write),
//! marks the disk crashed, and fails — after which every operation fails,
//! exactly like a process that took SIGKILL mid-`write(2)`. The surviving
//! image can then be re-opened for replay, optionally dropping bytes that
//! were never fsynced (the page-cache-loss model).

use super::WalError;
use parking_lot::Mutex;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// An append-only log file.
pub trait LogFile: Send {
    /// Appends `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Makes everything appended so far durable.
    fn sync(&mut self) -> Result<(), WalError>;
}

/// A directory of log files.
pub trait LogDir: Send + Sync {
    /// Creates (truncating if present) a file and returns its append handle.
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, WalError>;
    /// Lists file names, sorted ascending.
    fn list(&self) -> Result<Vec<String>, WalError>;
    /// Reads a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError>;
    /// Truncates a file to `len` bytes (used to seal a torn tail).
    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError>;
    /// Removes a file.
    fn remove(&self, name: &str) -> Result<(), WalError>;
}

fn io_err(ctx: &str, e: std::io::Error) -> WalError {
    WalError::Io(format!("{ctx}: {e}"))
}

/// Real filesystem log directory.
pub struct FsDir {
    path: PathBuf,
}

impl FsDir {
    /// Opens (creating if necessary) the directory at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<FsDir, WalError> {
        let path = path.into();
        fs::create_dir_all(&path).map_err(|e| io_err(&format!("mkdir {}", path.display()), e))?;
        Ok(FsDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Fsync the directory itself so created/removed file names are durable.
    /// Best-effort: not every platform lets you open a directory for sync.
    fn sync_dir(&self) {
        if let Ok(d) = fs::File::open(&self.path) {
            let _ = d.sync_all();
        }
    }
}

struct FsFile {
    file: fs::File,
}

impl LogFile for FsFile {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.file.write_all(bytes).map_err(|e| io_err("append", e))
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(|e| io_err("fsync", e))
    }
}

impl LogDir for FsDir {
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, WalError> {
        let p = self.path.join(name);
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&p)
            .map_err(|e| io_err(&format!("create {}", p.display()), e))?;
        self.sync_dir();
        Ok(Box::new(FsFile { file }))
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.path)
            .map_err(|e| io_err(&format!("list {}", self.path.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list entry", e))?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        let p = self.path.join(name);
        fs::read(&p).map_err(|e| io_err(&format!("read {}", p.display()), e))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        let p = self.path.join(name);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&p)
            .map_err(|e| io_err(&format!("open {}", p.display()), e))?;
        f.set_len(len).map_err(|e| io_err(&format!("truncate {}", p.display()), e))?;
        f.sync_data().map_err(|e| io_err("fsync after truncate", e))
    }

    fn remove(&self, name: &str) -> Result<(), WalError> {
        let p = self.path.join(name);
        fs::remove_file(&p).map_err(|e| io_err(&format!("remove {}", p.display()), e))?;
        self.sync_dir();
        Ok(())
    }
}

/// Deterministic failpoint: crash the simulated process once the byte budget
/// is exhausted. `None` never crashes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FailPlan {
    /// Total appended bytes (across all files, in order) after which the
    /// disk "dies". The append that crosses the budget persists only the
    /// bytes under it — a torn write.
    pub crash_after_bytes: Option<u64>,
}

struct MemFileData {
    name: String,
    bytes: Vec<u8>,
    /// Length covered by the last `sync` on this file.
    synced_len: usize,
}

struct MemDisk {
    files: Vec<MemFileData>,
    /// Total bytes persisted across all files, in append order.
    appended: u64,
    syncs: u64,
    crashed: bool,
    plan: FailPlan,
}

impl MemDisk {
    fn find(&self, name: &str) -> Option<usize> {
        self.files.iter().position(|f| f.name == name)
    }
}

/// In-memory log directory with a deterministic crash failpoint. Cloning
/// shares the same underlying disk, so a test can keep a handle while the
/// writer owns another.
#[derive(Clone)]
pub struct MemDir {
    disk: Arc<Mutex<MemDisk>>,
}

impl Default for MemDir {
    fn default() -> Self {
        Self::new()
    }
}

impl MemDir {
    /// A fresh, never-crashing in-memory disk.
    pub fn new() -> MemDir {
        Self::with_plan(FailPlan::default())
    }

    /// A fresh disk armed with a failpoint.
    pub fn with_plan(plan: FailPlan) -> MemDir {
        MemDir {
            disk: Arc::new(Mutex::new(MemDisk {
                files: Vec::new(),
                appended: 0,
                syncs: 0,
                crashed: false,
                plan,
            })),
        }
    }

    /// Whether the failpoint has fired.
    pub fn crashed(&self) -> bool {
        self.disk.lock().crashed
    }

    /// Total bytes persisted across all files.
    pub fn persisted_bytes(&self) -> u64 {
        self.disk.lock().appended
    }

    /// Number of `sync` calls that reached the disk.
    pub fn sync_count(&self) -> u64 {
        self.disk.lock().syncs
    }

    /// The post-crash disk image a restarted process would see: a plain
    /// (never-crashing) `MemDir` holding each file's surviving bytes. With
    /// `lose_unsynced`, bytes appended after each file's last fsync are
    /// dropped — the pessimistic page-cache-loss model; without it, every
    /// persisted byte survives (the kernel happened to flush). Both are
    /// legal crash outcomes and recovery must cope with either.
    pub fn surviving(&self, lose_unsynced: bool) -> MemDir {
        let disk = self.disk.lock();
        let files = disk
            .files
            .iter()
            .map(|f| {
                let keep = if lose_unsynced { f.synced_len } else { f.bytes.len() };
                MemFileData {
                    name: f.name.clone(),
                    bytes: f.bytes[..keep].to_vec(),
                    synced_len: keep,
                }
            })
            .collect::<Vec<_>>();
        let appended = files.iter().map(|f| f.bytes.len() as u64).sum();
        MemDir {
            disk: Arc::new(Mutex::new(MemDisk {
                files,
                appended,
                syncs: 0,
                crashed: false,
                plan: FailPlan::default(),
            })),
        }
    }
}

struct MemFileHandle {
    disk: Arc<Mutex<MemDisk>>,
    index: usize,
}

impl LogFile for MemFileHandle {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        let take = match disk.plan.crash_after_bytes {
            Some(budget) if disk.appended + bytes.len() as u64 > budget => {
                disk.crashed = true;
                (budget.saturating_sub(disk.appended)) as usize
            }
            _ => bytes.len(),
        };
        let crashed = disk.crashed;
        disk.appended += take as u64;
        disk.files[self.index].bytes.extend_from_slice(&bytes[..take]);
        if crashed {
            return Err(WalError::Crashed);
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let mut disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        disk.syncs += 1;
        let len = disk.files[self.index].bytes.len();
        disk.files[self.index].synced_len = len;
        Ok(())
    }
}

impl LogDir for MemDir {
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, WalError> {
        let mut disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        let index = match disk.find(name) {
            Some(i) => {
                disk.files[i].bytes.clear();
                disk.files[i].synced_len = 0;
                i
            }
            None => {
                disk.files.push(MemFileData {
                    name: name.to_string(),
                    bytes: Vec::new(),
                    synced_len: 0,
                });
                disk.files.len() - 1
            }
        };
        Ok(Box::new(MemFileHandle { disk: Arc::clone(&self.disk), index }))
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        let mut names: Vec<String> = disk.files.iter().map(|f| f.name.clone()).collect();
        names.sort();
        Ok(names)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        let disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        disk.find(name)
            .map(|i| disk.files[i].bytes.clone())
            .ok_or_else(|| WalError::Io(format!("no such file {name}")))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        let mut disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        let i = disk.find(name).ok_or_else(|| WalError::Io(format!("no such file {name}")))?;
        let len = len as usize;
        if disk.files[i].bytes.len() > len {
            disk.files[i].bytes.truncate(len);
        }
        disk.files[i].synced_len = disk.files[i].synced_len.min(len);
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), WalError> {
        let mut disk = self.disk.lock();
        if disk.crashed {
            return Err(WalError::Crashed);
        }
        let i = disk.find(name).ok_or_else(|| WalError::Io(format!("no such file {name}")))?;
        disk.files.remove(i);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_dir_roundtrips_files() {
        let dir = MemDir::new();
        let mut f = dir.create("wal-000001.seg").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(dir.read("wal-000001.seg").unwrap(), b"hello world");
        assert_eq!(dir.list().unwrap(), vec!["wal-000001.seg".to_string()]);
        dir.truncate("wal-000001.seg", 5).unwrap();
        assert_eq!(dir.read("wal-000001.seg").unwrap(), b"hello");
        dir.remove("wal-000001.seg").unwrap();
        assert!(dir.list().unwrap().is_empty());
    }

    #[test]
    fn failpoint_tears_the_crossing_append_and_kills_the_disk() {
        let dir = MemDir::with_plan(FailPlan { crash_after_bytes: Some(10) });
        let mut f = dir.create("a").unwrap();
        f.append(b"12345678").unwrap(); // 8 bytes, under budget
        assert_eq!(f.append(b"abcdef"), Err(WalError::Crashed)); // crosses at 10
        assert!(dir.crashed());
        assert_eq!(f.append(b"x"), Err(WalError::Crashed));
        assert_eq!(f.sync(), Err(WalError::Crashed));
        assert_eq!(dir.list(), Err(WalError::Crashed));
        // The surviving image holds exactly the 10 budgeted bytes.
        let after = dir.surviving(false);
        assert_eq!(after.read("a").unwrap(), b"12345678ab");
    }

    #[test]
    fn surviving_can_drop_unsynced_bytes() {
        let dir = MemDir::with_plan(FailPlan { crash_after_bytes: Some(100) });
        let mut f = dir.create("a").unwrap();
        f.append(b"durable!").unwrap();
        f.sync().unwrap();
        f.append(b"in the page cache").unwrap();
        let _ = f.append(&[0u8; 100]); // crash
        assert_eq!(dir.surviving(true).read("a").unwrap(), b"durable!");
        let optimistic = dir.surviving(false).read("a").unwrap();
        assert_eq!(optimistic.len(), 100);
        assert!(optimistic.starts_with(b"durable!in the page cache"));
    }

    #[test]
    fn fs_dir_roundtrips_files() {
        let base = std::env::temp_dir().join(format!("pr-wal-fsdir-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let dir = FsDir::open(&base).unwrap();
        let mut f = dir.create("wal-000001.seg").unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        assert_eq!(dir.read("wal-000001.seg").unwrap(), b"abc");
        dir.truncate("wal-000001.seg", 1).unwrap();
        assert_eq!(dir.read("wal-000001.seg").unwrap(), b"a");
        assert_eq!(dir.list().unwrap(), vec!["wal-000001.seg".to_string()]);
        dir.remove("wal-000001.seg").unwrap();
        assert!(dir.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&base);
    }
}
