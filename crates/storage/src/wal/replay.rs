//! Crash-recovery replay: scan the segments, keep the durable prefix.
//!
//! The durable prefix is defined record-by-record, fail-closed:
//!
//! 1. Segments are processed in sequence order; within each, records are
//!    decoded by the total codec. The first invalid byte anywhere ends the
//!    prefix — later bytes *and later segments* are discarded, because a
//!    hole in the middle of a redo log makes everything after it
//!    unattributable.
//! 2. A batch is recovered iff its commit marker is inside the valid
//!    prefix. A `Batch` record without its `Commit` contributes nothing
//!    (all-or-nothing per batch), and the valid prefix is pinned at the
//!    last commit marker so sealing truncates the orphan batch record too.
//! 3. The record sequence itself is validated: commit markers must match
//!    the pending batch, batch ids must be strictly increasing, and txn id
//!    ranges must be contiguous. Any violation is treated exactly like a
//!    torn tail.
//!
//! Replay is idempotent: records carry post-state values, so applying a
//! prefix twice (or recovering, serving, crashing, and recovering again)
//! converges to the same store.

use super::file::LogDir;
use super::record::{decode_stream, BatchRecord, Tail, WalRecord};
use super::writer::parse_segment_name;
use super::WalError;
use crate::global::GlobalStore;
use pr_model::Value;

/// Per-segment scan report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment file name.
    pub name: String,
    /// Bytes present in the file.
    pub len: u64,
    /// Bytes covered by the durable prefix (≤ `len`).
    pub valid: u64,
}

/// The result of scanning a log directory.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Committed batches, in batch-id order.
    pub batches: Vec<BatchRecord>,
    /// Whole records decoded (including uncommitted tail records).
    pub records: usize,
    /// Scan report for every segment file, in sequence order.
    pub segments: Vec<SegmentReport>,
    /// Why scanning stopped. `Tail::Clean` means every byte in every
    /// segment belongs to the durable prefix.
    pub tail: Tail,
}

impl ReplayOutcome {
    /// Total committed transactions in the durable prefix.
    pub fn commits(&self) -> u64 {
        self.batches.iter().map(|b| u64::from(b.txn_count)).sum()
    }

    /// Highest committed txn id (0 when the log is empty).
    pub fn txn_hwm(&self) -> u32 {
        self.batches.last().map(|b| b.txn_base + b.txn_count).unwrap_or(0)
    }

    /// Highest grant stamp (0 when the log is empty).
    pub fn stamp_hwm(&self) -> u64 {
        self.batches.last().map(|b| b.stamp_hwm).unwrap_or(0)
    }

    /// Highest committed batch id (0 when the log is empty).
    pub fn last_batch_id(&self) -> u64 {
        self.batches.last().map(|b| b.batch_id).unwrap_or(0)
    }

    /// Applies the durable prefix's deltas to `store`, in order. Refuses
    /// (touching nothing further) if the log names an entity the store
    /// does not hold — the log belongs to a different configuration.
    pub fn apply(&self, store: &mut GlobalStore) -> Result<(), WalError> {
        for b in &self.batches {
            for &(id, v) in &b.deltas {
                store
                    .publish(id, Value::new(v.raw()))
                    .map_err(|_| WalError::UnknownEntity(id.raw()))?;
            }
        }
        Ok(())
    }
}

/// Scans every segment in `dir` and returns the durable prefix.
pub fn replay(dir: &dyn LogDir) -> Result<ReplayOutcome, WalError> {
    let mut names: Vec<(u64, String)> = dir
        .list()?
        .into_iter()
        .filter_map(|n| parse_segment_name(&n).map(|seq| (seq, n)))
        .collect();
    names.sort();

    let mut out = ReplayOutcome::default();
    let mut pending: Option<BatchRecord> = None;
    let mut stopped = false;

    for (_, name) in names {
        let bytes = dir.read(&name)?;
        let len = bytes.len() as u64;
        if stopped {
            // Everything after the first invalid record is outside the
            // durable prefix, whole segments included.
            out.segments.push(SegmentReport { name, len, valid: 0 });
            continue;
        }
        let (records, tail) = decode_stream(&bytes);
        let mut valid = 0u64;
        for (rec, end) in records {
            let fault = |reason: String| Tail::Torn { offset: end, reason };
            match rec {
                WalRecord::Batch(b) => {
                    if pending.is_some() {
                        out.tail = fault(format!(
                            "batch {} logged while batch {} awaits its commit marker",
                            b.batch_id,
                            pending.as_ref().map(|p| p.batch_id).unwrap_or(0),
                        ));
                        stopped = true;
                        break;
                    }
                    if b.batch_id != out.last_batch_id() + 1 {
                        out.tail =
                            fault(format!("batch id {} after {}", b.batch_id, out.last_batch_id()));
                        stopped = true;
                        break;
                    }
                    if b.txn_base != out.txn_hwm() {
                        out.tail = fault(format!(
                            "txn base {} after high-water mark {}",
                            b.txn_base,
                            out.txn_hwm()
                        ));
                        stopped = true;
                        break;
                    }
                    out.records += 1;
                    pending = Some(b);
                }
                WalRecord::Commit { batch_id } => match pending.take() {
                    Some(b) if b.batch_id == batch_id => {
                        out.records += 1;
                        out.batches.push(b);
                        valid = end as u64;
                    }
                    other => {
                        out.tail = fault(format!(
                            "commit marker for batch {batch_id} with {} pending",
                            other.map(|b| b.batch_id.to_string()).unwrap_or_else(|| "none".into()),
                        ));
                        stopped = true;
                        break;
                    }
                },
            }
        }
        if !stopped {
            match tail {
                Tail::Clean => {
                    if let Some(b) = pending.take() {
                        // The writer keeps every batch/commit pair inside
                        // one segment, so a segment ending with an unmarked
                        // batch means the process died between the two
                        // appends. The batch is outside the durable prefix
                        // (`valid` already stops at the last marker) and
                        // nothing after it can be trusted.
                        out.tail = Tail::Torn {
                            offset: valid as usize,
                            reason: format!(
                                "batch {} has no commit marker in its segment",
                                b.batch_id
                            ),
                        };
                        stopped = true;
                    } else {
                        valid = len;
                    }
                }
                torn @ Tail::Torn { .. } => {
                    out.tail = torn;
                    stopped = true;
                }
            }
        }
        out.segments.push(SegmentReport { name, len, valid });
    }
    if !stopped {
        out.tail = Tail::Clean;
    }
    Ok(out)
}

/// Seals the log after replay: truncates the segment holding the end of the
/// durable prefix and removes every segment holding none of it, so a writer
/// reopened on this directory appends strictly after valid data.
pub fn seal(dir: &dyn LogDir, outcome: &ReplayOutcome) -> Result<(), WalError> {
    for seg in &outcome.segments {
        if seg.valid == 0 {
            dir.remove(&seg.name)?;
        } else if seg.valid < seg.len {
            dir.truncate(&seg.name, seg.valid)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::file::{FailPlan, MemDir};
    use super::super::writer::{FlushPolicy, Wal};
    use super::*;
    use pr_model::EntityId;
    use std::sync::Arc;

    fn batch(id: u64, delta: i64) -> BatchRecord {
        BatchRecord {
            batch_id: id,
            txn_base: (id - 1) as u32,
            txn_count: 1,
            stamp_hwm: id * 3,
            request_ids: vec![id * 100],
            deltas: vec![(EntityId::new((id % 4) as u32), Value::new(delta))],
            accesses: vec![],
        }
    }

    fn write_log(dir: &MemDir, n: u64, segment_max: u64) {
        let mut wal = Wal::open(Arc::new(dir.clone()), FlushPolicy::PerBatch, segment_max).unwrap();
        for id in 1..=n {
            wal.append_batch(&batch(id, id as i64 * 10)).unwrap();
            wal.commit_batch(id).unwrap();
        }
    }

    #[test]
    fn clean_log_replays_fully_and_applies() {
        let dir = MemDir::new();
        write_log(&dir, 5, 1 << 20);
        let out = replay(&dir).unwrap();
        assert!(out.tail.is_clean());
        assert_eq!(out.batches.len(), 5);
        assert_eq!(out.commits(), 5);
        assert_eq!(out.txn_hwm(), 5);
        assert_eq!(out.stamp_hwm(), 15);
        let mut store = GlobalStore::with_entities(4, Value::ZERO);
        out.apply(&mut store).unwrap();
        // Batch 5 wrote entity 1 last with 50; batch 4 wrote entity 0 with 40.
        assert_eq!(store.read(EntityId::new(1)).unwrap(), Value::new(50));
        assert_eq!(store.read(EntityId::new(0)).unwrap(), Value::new(40));
    }

    #[test]
    fn replay_spans_segments() {
        let dir = MemDir::new();
        write_log(&dir, 12, 96);
        assert!(dir.list().unwrap().len() > 2);
        let out = replay(&dir).unwrap();
        assert!(out.tail.is_clean());
        assert_eq!(out.batches.len(), 12);
    }

    #[test]
    fn apply_is_idempotent() {
        let dir = MemDir::new();
        write_log(&dir, 6, 1 << 20);
        let out = replay(&dir).unwrap();
        let mut once = GlobalStore::with_entities(4, Value::ZERO);
        out.apply(&mut once).unwrap();
        let mut twice = GlobalStore::with_entities(4, Value::ZERO);
        out.apply(&mut twice).unwrap();
        out.apply(&mut twice).unwrap();
        assert_eq!(once.snapshot(), twice.snapshot());
    }

    #[test]
    fn torn_tail_drops_the_uncommitted_batch() {
        let dir = MemDir::new();
        write_log(&dir, 3, 1 << 20);
        // Append a batch record with no commit marker.
        let mut wal = Wal::open_default(Arc::new(dir.clone()), FlushPolicy::Off).unwrap();
        wal.append_batch(&batch(4, 40)).unwrap();
        wal.sync().unwrap();
        let out = replay(&dir).unwrap();
        assert_eq!(out.batches.len(), 3);
        assert!(!out.tail.is_clean());
    }

    #[test]
    fn crash_mid_record_recovers_committed_prefix() {
        // Write 4 batches, then replay every surviving image produced by a
        // byte-budget crash during a fifth.
        let probe = MemDir::new();
        write_log(&probe, 4, 1 << 20);
        let full_len = probe.persisted_bytes();
        for budget in (0..=full_len).step_by(7) {
            let dir = MemDir::with_plan(FailPlan { crash_after_bytes: Some(budget) });
            let mut wal = Wal::open(Arc::new(dir.clone()), FlushPolicy::PerBatch, 1 << 20).unwrap();
            for id in 1..=4u64 {
                if wal.append_batch(&batch(id, id as i64 * 10)).is_err() {
                    break;
                }
                if wal.commit_batch(id).is_err() {
                    break;
                }
            }
            let out = replay(&dir.surviving(false)).unwrap();
            // Every recovered batch is fully durable and in order.
            for (i, b) in out.batches.iter().enumerate() {
                assert_eq!(b.batch_id, i as u64 + 1);
            }
            assert!(out.batches.len() <= 4);
        }
    }

    #[test]
    fn seal_truncates_to_the_durable_prefix() {
        let dir = MemDir::new();
        write_log(&dir, 3, 1 << 20);
        let name = dir.list().unwrap()[0].clone();
        let full = dir.read(&name).unwrap();
        // Corrupt the tail mid-record.
        dir.truncate(&name, full.len() as u64 - 3).unwrap();
        let out = replay(&dir).unwrap();
        assert_eq!(out.batches.len(), 2);
        assert!(!out.tail.is_clean());
        seal(&dir, &out).unwrap();
        let sealed = replay(&dir).unwrap();
        assert!(sealed.tail.is_clean());
        assert_eq!(sealed.batches.len(), 2);
        // A writer reopened after sealing continues the sequence.
        let mut wal = Wal::open_default(Arc::new(dir.clone()), FlushPolicy::PerBatch).unwrap();
        let mut next = batch(3, 30);
        next.txn_base = sealed.txn_hwm();
        wal.append_batch(&next).unwrap();
        wal.commit_batch(3).unwrap();
        let reopened = replay(&dir).unwrap();
        assert!(reopened.tail.is_clean());
        assert_eq!(reopened.batches.len(), 3);
    }

    #[test]
    fn out_of_sequence_records_fail_closed() {
        let dir = MemDir::new();
        let shared: Arc<dyn LogDir> = Arc::new(dir.clone());
        let mut wal = Wal::open_default(Arc::clone(&shared), FlushPolicy::PerBatch).unwrap();
        wal.append_batch(&batch(1, 10)).unwrap();
        wal.commit_batch(1).unwrap();
        // Skip batch 2 entirely: id gap must stop replay.
        wal.append_batch(&batch(3, 30)).unwrap();
        wal.commit_batch(3).unwrap();
        let out = replay(&dir).unwrap();
        assert_eq!(out.batches.len(), 1);
        assert!(matches!(out.tail, Tail::Torn { .. }));
    }
}
