//! WAL record types and their total, fail-closed codec.
//!
//! On-disk framing, mirroring the server wire protocol's discipline:
//!
//! ```text
//! frame   := len:u32le  crc:u32le  payload[len]     (crc is over payload)
//! payload := 0x01 batch-body | 0x02 commit-body
//! batch   := batch_id:u64  txn_base:u32  txn_count:u32  stamp_hwm:u64
//!            request_ids: count:u32 (id:u64)*          -- count == txn_count
//!            deltas:      count:u32 (entity:u32 value:i64)*
//!            accesses:    count:u32 (txn:u32 entity:u32 excl:u8 stamp:u64)*
//! commit  := batch_id:u64
//! ```
//!
//! [`decode_stream`] is *total*: any input byte sequence decodes to the
//! longest prefix of whole, checksummed, well-formed records plus a
//! [`Tail`] verdict. It never panics, never over-allocates (element counts
//! are validated against the bytes actually present before any `Vec` is
//! sized), and treats every malformation — short length prefix, oversized
//! frame, CRC mismatch, unknown tag, truncated body, trailing bytes inside
//! a payload — identically: the record is invalid and decoding stops there.

use super::crc::crc32;
use super::WalError;
use pr_model::{EntityId, Value};

/// Hard ceiling on a record payload, like `wire.rs`'s `MAX_PAYLOAD`. A batch
/// of 4096 txns with full access lists fits comfortably; anything larger is
/// corruption.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 24;

/// Frame overhead: length prefix + checksum.
pub const FRAME_HEADER: usize = 8;

const TAG_BATCH: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;

/// One committed access, as logged. Raw integers rather than the engine's
/// typed `CommittedAccess` so the codec stays self-contained in the storage
/// crate; the server converts at the boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalAccess {
    /// Raw transaction id.
    pub txn: u32,
    /// Raw entity id.
    pub entity: u32,
    /// `true` for an exclusive (write) access, `false` for shared.
    pub exclusive: bool,
    /// The global grant stamp, preserving commit-order evidence for the
    /// serializability oracle after recovery.
    pub stamp: u64,
}

/// The redo record for one group-commit batch.
///
/// `request_ids[i]` is the client-supplied request id of the txn that was
/// admitted `i`-th (txn id `txn_base + i + 1`) — the idempotence token that
/// lets a post-crash differential check reconstruct *which* client program
/// each recovered txn was, even when the COMMITTED reply never reached the
/// client.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BatchRecord {
    /// Monotone batch sequence number, 1-based.
    pub batch_id: u64,
    /// Txn ids in this batch are `txn_base + 1 ..= txn_base + txn_count`.
    pub txn_base: u32,
    /// Number of committed txns in the batch.
    pub txn_count: u32,
    /// High-water mark of the engine's grant-stamp counter after the batch,
    /// so a recovered server resumes stamps monotonically.
    pub stamp_hwm: u64,
    /// Client request ids in admission order; length equals `txn_count`.
    pub request_ids: Vec<u64>,
    /// Net entity-value changes of the batch (post-state values).
    pub deltas: Vec<(EntityId, Value)>,
    /// The batch's committed access history, for the recovered HISTORY
    /// surface and the oracle.
    pub accesses: Vec<WalAccess>,
}

/// A decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A batch's redo data. Not yet durable-committed on its own.
    Batch(BatchRecord),
    /// Commit marker: the batch with this id is durably committed.
    Commit {
        /// Id of the batch this marker commits.
        batch_id: u64,
    },
}

/// Why (and where) decoding stopped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Tail {
    /// The input ended exactly at a record boundary.
    #[default]
    Clean,
    /// The input has invalid bytes starting at `offset` (the start of the
    /// first frame that failed to decode). Everything before `offset` is
    /// whole records; everything from it on is discarded.
    Torn {
        /// Byte offset of the first invalid frame.
        offset: usize,
        /// Human-readable reason, for diagnostics and test assertions.
        reason: String,
    },
}

impl Tail {
    /// Whether the tail was clean.
    pub fn is_clean(&self) -> bool {
        matches!(self, Tail::Clean)
    }
}

/// Bounds-checked little-endian reader over a record payload, in the style
/// of `wire.rs::Reader`. Every method fails instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!("need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }

    /// Reads an element count and verifies the remaining bytes can actually
    /// hold `count` elements of `elem_size` bytes, so a corrupt count can
    /// never drive a huge allocation.
    fn count(&mut self, elem_size: usize, what: &str) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(format!(
                "{what} count {n} needs {} bytes, have {}",
                n * elem_size,
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!("{} trailing bytes in payload", self.buf.len() - self.pos));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl BatchRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(
            1 + 8
                + 4
                + 4
                + 8
                + 4
                + self.request_ids.len() * 8
                + 4
                + self.deltas.len() * 12
                + 4
                + self.accesses.len() * 17,
        );
        p.push(TAG_BATCH);
        put_u64(&mut p, self.batch_id);
        put_u32(&mut p, self.txn_base);
        put_u32(&mut p, self.txn_count);
        put_u64(&mut p, self.stamp_hwm);
        put_u32(&mut p, self.request_ids.len() as u32);
        for &rid in &self.request_ids {
            put_u64(&mut p, rid);
        }
        put_u32(&mut p, self.deltas.len() as u32);
        for &(id, v) in &self.deltas {
            put_u32(&mut p, id.raw());
            put_u64(&mut p, v.raw() as u64);
        }
        put_u32(&mut p, self.accesses.len() as u32);
        for a in &self.accesses {
            put_u32(&mut p, a.txn);
            put_u32(&mut p, a.entity);
            p.push(u8::from(a.exclusive));
            put_u64(&mut p, a.stamp);
        }
        p
    }

    fn decode_payload(cur: &mut Cursor<'_>) -> Result<BatchRecord, String> {
        let batch_id = cur.u64()?;
        let txn_base = cur.u32()?;
        let txn_count = cur.u32()?;
        let stamp_hwm = cur.u64()?;
        let n_rids = cur.count(8, "request-id")?;
        if n_rids != txn_count as usize {
            return Err(format!("request-id count {n_rids} != txn count {txn_count}"));
        }
        let mut request_ids = Vec::with_capacity(n_rids);
        for _ in 0..n_rids {
            request_ids.push(cur.u64()?);
        }
        let n_deltas = cur.count(12, "delta")?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            let id = EntityId::new(cur.u32()?);
            let v = Value::new(cur.i64()?);
            deltas.push((id, v));
        }
        let n_acc = cur.count(17, "access")?;
        let mut accesses = Vec::with_capacity(n_acc);
        for _ in 0..n_acc {
            let txn = cur.u32()?;
            let entity = cur.u32()?;
            let excl = cur.u8()?;
            if excl > 1 {
                return Err(format!("access mode byte {excl} is neither 0 nor 1"));
            }
            let stamp = cur.u64()?;
            accesses.push(WalAccess { txn, entity, exclusive: excl == 1, stamp });
        }
        Ok(BatchRecord { batch_id, txn_base, txn_count, stamp_hwm, request_ids, deltas, accesses })
    }
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        match self {
            WalRecord::Batch(b) => b.encode_payload(),
            WalRecord::Commit { batch_id } => {
                let mut p = Vec::with_capacity(9);
                p.push(TAG_COMMIT);
                put_u64(&mut p, *batch_id);
                p
            }
        }
    }

    /// Encodes the record as one checksummed frame.
    pub fn encode_frame(&self) -> Result<Vec<u8>, WalError> {
        let payload = self.encode_payload();
        if payload.len() > MAX_RECORD_PAYLOAD {
            return Err(WalError::RecordTooLarge(payload.len()));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
        let mut cur = Cursor::new(payload);
        let tag = cur.u8()?;
        let rec = match tag {
            TAG_BATCH => WalRecord::Batch(BatchRecord::decode_payload(&mut cur)?),
            TAG_COMMIT => WalRecord::Commit { batch_id: cur.u64()? },
            other => return Err(format!("unknown record tag 0x{other:02x}")),
        };
        cur.finish()?;
        Ok(rec)
    }
}

/// Decodes `bytes` into the longest prefix of whole records.
///
/// Returns each record with the byte offset of the *end* of its frame (so a
/// caller can seal a log at any record boundary) and the tail verdict.
pub fn decode_stream(bytes: &[u8]) -> (Vec<(WalRecord, usize)>, Tail) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let torn = |reason: String| Tail::Torn { offset: start, reason };
        if bytes.len() - pos < FRAME_HEADER {
            return (out, torn(format!("{} header bytes at tail", bytes.len() - pos)));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len > MAX_RECORD_PAYLOAD {
            return (out, torn(format!("frame length {len} exceeds {MAX_RECORD_PAYLOAD}")));
        }
        if bytes.len() - pos - FRAME_HEADER < len {
            return (
                out,
                torn(format!(
                    "frame wants {len} payload bytes, {} present",
                    bytes.len() - pos - FRAME_HEADER
                )),
            );
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return (out, torn("payload checksum mismatch".into()));
        }
        match WalRecord::decode_payload(payload) {
            Ok(rec) => {
                pos += FRAME_HEADER + len;
                out.push((rec, pos));
            }
            Err(reason) => return (out, torn(reason)),
        }
    }
    (out, Tail::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch(id: u64) -> BatchRecord {
        BatchRecord {
            batch_id: id,
            txn_base: (id as u32 - 1) * 2,
            txn_count: 2,
            stamp_hwm: id * 10,
            request_ids: vec![id << 32, (id << 32) | 1],
            deltas: vec![
                (EntityId::new(3), Value::new(-7)),
                (EntityId::new(9), Value::new(i64::MAX)),
            ],
            accesses: vec![
                WalAccess {
                    txn: (id as u32 - 1) * 2 + 1,
                    entity: 3,
                    exclusive: true,
                    stamp: id * 10 - 1,
                },
                WalAccess {
                    txn: (id as u32 - 1) * 2 + 2,
                    entity: 9,
                    exclusive: false,
                    stamp: id * 10,
                },
            ],
        }
    }

    fn sample_log() -> (Vec<u8>, Vec<WalRecord>) {
        let records = vec![
            WalRecord::Batch(sample_batch(1)),
            WalRecord::Commit { batch_id: 1 },
            WalRecord::Batch(sample_batch(2)),
            WalRecord::Commit { batch_id: 2 },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.encode_frame().unwrap());
        }
        (bytes, records)
    }

    #[test]
    fn roundtrip_preserves_records_and_offsets() {
        let (bytes, records) = sample_log();
        let (decoded, tail) = decode_stream(&bytes);
        assert!(tail.is_clean());
        assert_eq!(decoded.len(), records.len());
        for ((got, _), want) in decoded.iter().zip(&records) {
            assert_eq!(got, want);
        }
        assert_eq!(decoded.last().unwrap().1, bytes.len());
    }

    #[test]
    fn every_truncation_yields_longest_whole_prefix() {
        let (bytes, _) = sample_log();
        let (full, _) = decode_stream(&bytes);
        let boundaries: Vec<usize> = full.iter().map(|(_, end)| *end).collect();
        for cut in 0..=bytes.len() {
            let (decoded, tail) = decode_stream(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(decoded.len(), expect, "cut at {cut}");
            let at_boundary = cut == 0 || boundaries.contains(&cut);
            assert_eq!(tail.is_clean(), at_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn any_bit_flip_stops_at_or_before_the_flipped_record() {
        let (bytes, _) = sample_log();
        let (full, _) = decode_stream(&bytes);
        let boundaries: Vec<usize> = full.iter().map(|(_, end)| *end).collect();
        for byte in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[byte] ^= 0x40;
            let (decoded, _) = decode_stream(&evil);
            // The records strictly before the flipped byte's frame must
            // survive; the flipped frame must not produce a *different*
            // record silently — either it is rejected or (length-prefix
            // flips only) decoding stops earlier.
            let frame_idx = boundaries.iter().filter(|&&b| b <= byte).count();
            assert!(decoded.len() <= full.len(), "flip at {byte} grew the log");
            for (i, (rec, _)) in decoded.iter().enumerate() {
                if i < frame_idx {
                    assert_eq!(rec, &full[i].0, "flip at {byte} corrupted earlier record {i}");
                }
            }
            assert!(
                decoded.len() <= frame_idx || decoded.len() == full.len(),
                "flip at {byte}: {} records decoded, flipped frame starts at index {frame_idx}",
                decoded.len(),
            );
        }
    }

    #[test]
    fn mismatched_request_id_count_is_rejected() {
        let mut rec = sample_batch(1);
        rec.request_ids.pop();
        let frame = WalRecord::Batch(rec).encode_frame().unwrap();
        let (decoded, tail) = decode_stream(&frame);
        assert!(decoded.is_empty());
        assert!(matches!(tail, Tail::Torn { offset: 0, .. }));
    }

    #[test]
    fn oversized_record_is_refused_at_encode_time() {
        let rec = BatchRecord {
            txn_count: 0,
            deltas: vec![(EntityId::new(0), Value::ZERO); MAX_RECORD_PAYLOAD / 12 + 1],
            ..BatchRecord::default()
        };
        assert!(matches!(WalRecord::Batch(rec).encode_frame(), Err(WalError::RecordTooLarge(_))));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A frame whose payload claims 2^32-1 deltas but carries 13 bytes.
        let mut payload = vec![TAG_BATCH];
        payload.extend_from_slice(&1u64.to_le_bytes()); // batch_id
        payload.extend_from_slice(&0u32.to_le_bytes()); // txn_base
        payload.extend_from_slice(&0u32.to_le_bytes()); // txn_count
        payload.extend_from_slice(&0u64.to_le_bytes()); // stamp_hwm
        payload.extend_from_slice(&0u32.to_le_bytes()); // request_ids count
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // delta count (hostile)
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let (decoded, tail) = decode_stream(&frame);
        assert!(decoded.is_empty());
        assert!(matches!(tail, Tail::Torn { .. }));
    }
}
