//! Write-ahead redo log for the server's group commit.
//!
//! The paper's partial-rollback machinery recovers from *deadlock* by
//! rewinding in-memory workspaces; this module extends recovery to *process
//! crashes*. The unit of durability is the group-commit batch: at the only
//! instant where committed state is published to clients (the batch
//! boundary), the server appends one redo record carrying the batch's
//! committed entity deltas, followed by a separate commit marker. A batch is
//! recovered iff its commit marker is durable — all-or-nothing per batch.
//!
//! Layout on disk: a directory of segmented append-only files
//! (`wal-NNNNNN.seg`), each a sequence of CRC32-framed, length-prefixed
//! records. The decoder is total in the style of the server's `wire.rs`: it
//! never panics, and it fails **closed** on a torn or corrupt tail — replay
//! stops at the first invalid byte and reports exactly the longest
//! whole-record prefix.
//!
//! The writer talks to storage through the [`LogFile`]/[`LogDir`] traits.
//! [`FsDir`] is the real filesystem; [`MemDir`] is a deterministic in-memory
//! disk with a seeded failpoint (crash after N appended bytes, optionally
//! losing bytes that were never fsynced) so every crash point is enumerable
//! in-process by the crash-matrix tests.

mod crc;
mod file;
mod record;
mod replay;
mod writer;

pub use crc::crc32;
pub use file::{FailPlan, FsDir, LogDir, LogFile, MemDir};
pub use record::{decode_stream, BatchRecord, Tail, WalAccess, WalRecord, MAX_RECORD_PAYLOAD};
pub use replay::{replay, seal, ReplayOutcome, SegmentReport};
pub use writer::{
    FlushPolicy, Wal, WalStats, DEFAULT_SEGMENT_MAX, SEGMENT_NAME_PREFIX, SEGMENT_NAME_SUFFIX,
};

use std::fmt;

/// Errors from the write-ahead log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An underlying storage operation failed.
    Io(String),
    /// The deterministic failpoint fired: the simulated process is dead and
    /// every subsequent operation on this log must also fail.
    Crashed,
    /// A record exceeded [`MAX_RECORD_PAYLOAD`] and was refused at encode
    /// time (the decoder treats oversized frames as a torn tail instead).
    RecordTooLarge(usize),
    /// Replayed state references an entity the store does not hold — the
    /// log and the server configuration disagree, so recovery refuses.
    UnknownEntity(u32),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal io error: {msg}"),
            WalError::Crashed => write!(f, "wal failpoint crash"),
            WalError::RecordTooLarge(n) => {
                write!(f, "wal record payload of {n} bytes exceeds {MAX_RECORD_PAYLOAD}")
            }
            WalError::UnknownEntity(e) => {
                write!(f, "wal replay references entity e{e} absent from the store")
            }
        }
    }
}

impl std::error::Error for WalError {}
