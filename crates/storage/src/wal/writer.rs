//! The segmented WAL writer and its flush policy.
//!
//! Group commit is the flush point: the server appends one [`BatchRecord`]
//! plus a commit marker per batch, *then* publishes replies. How often the
//! appended bytes are fsynced is the durability/throughput dial this module
//! exposes as [`FlushPolicy`] — per-batch gives the strict invariant
//! "acknowledged ⇒ replayed"; every-N amortises the fsync over N batches
//! (a crash can lose up to N−1 acknowledged batches, never a fraction of
//! one); off leaves durability to graceful drain (which always syncs).

use super::file::{LogDir, LogFile};
use super::record::{BatchRecord, WalRecord};
use super::WalError;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Segment file name prefix (`wal-NNNNNN.seg`).
pub const SEGMENT_NAME_PREFIX: &str = "wal-";
/// Segment file name suffix.
pub const SEGMENT_NAME_SUFFIX: &str = ".seg";

/// Default segment size before the writer rolls to a new file.
pub const DEFAULT_SEGMENT_MAX: u64 = 8 << 20;

/// When appended records are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Fsync after every batch's commit marker, before replies publish.
    PerBatch,
    /// Fsync after every `n`-th batch (n ≥ 1; 1 behaves like `PerBatch`).
    EveryN(u32),
    /// Never fsync during normal operation; only graceful drain syncs.
    Off,
}

impl FlushPolicy {
    /// Batches that may be lost on a crash under this policy (∞ for `Off`).
    pub fn loss_window(&self) -> Option<u32> {
        match self {
            FlushPolicy::PerBatch => Some(0),
            FlushPolicy::EveryN(n) => Some(n.saturating_sub(1)),
            FlushPolicy::Off => None,
        }
    }
}

impl fmt::Display for FlushPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushPolicy::PerBatch => write!(f, "per-batch"),
            FlushPolicy::EveryN(n) => write!(f, "every-{n}"),
            FlushPolicy::Off => write!(f, "off"),
        }
    }
}

impl FromStr for FlushPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-batch" => Ok(FlushPolicy::PerBatch),
            "off" => Ok(FlushPolicy::Off),
            _ => match s.strip_prefix("every-").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => Ok(FlushPolicy::EveryN(n)),
                _ => Err(format!("bad flush policy '{s}' (expected per-batch, every-N, or off)")),
            },
        }
    }
}

/// Monotone writer counters, surfaced through `ServerMetrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (batch records and commit markers both count).
    pub appends: u64,
    /// Fsyncs issued (policy flushes, rotations, and explicit `sync`).
    pub syncs: u64,
    /// Total frame bytes appended across all segments.
    pub bytes: u64,
}

/// The write-ahead log writer.
pub struct Wal {
    dir: Arc<dyn LogDir>,
    file: Option<Box<dyn LogFile>>,
    /// Sequence number of the segment currently open for append.
    seg_seq: u64,
    /// Bytes appended to the current segment.
    seg_bytes: u64,
    segment_max: u64,
    policy: FlushPolicy,
    /// Batches appended since the last fsync, for `EveryN`.
    unsynced_batches: u32,
    stats: WalStats,
}

/// Formats a segment file name.
pub(super) fn segment_name(seq: u64) -> String {
    format!("{SEGMENT_NAME_PREFIX}{seq:06}{SEGMENT_NAME_SUFFIX}")
}

/// Parses a segment sequence number out of a file name.
pub(super) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_NAME_PREFIX)?.strip_suffix(SEGMENT_NAME_SUFFIX)?.parse().ok()
}

impl Wal {
    /// Opens the log for appending, starting a *fresh* segment numbered
    /// after the highest existing one. The writer never appends to an old
    /// segment: recovery seals the tail (see [`super::seal`]) and new
    /// records land in a new file, so a torn tail can never sit in the
    /// middle of live data.
    pub fn open(
        dir: Arc<dyn LogDir>,
        policy: FlushPolicy,
        segment_max: u64,
    ) -> Result<Wal, WalError> {
        let last = dir.list()?.iter().filter_map(|n| parse_segment_name(n)).max().unwrap_or(0);
        Ok(Wal {
            dir,
            file: None,
            seg_seq: last,
            seg_bytes: 0,
            segment_max: segment_max.max(1),
            policy,
            unsynced_batches: 0,
            stats: WalStats::default(),
        })
    }

    /// Opens the log with the default segment size.
    pub fn open_default(dir: Arc<dyn LogDir>, policy: FlushPolicy) -> Result<Wal, WalError> {
        Self::open(dir, policy, DEFAULT_SEGMENT_MAX)
    }

    /// The active flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Writer counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn roll(&mut self) -> Result<(), WalError> {
        if let Some(mut old) = self.file.take() {
            // Seal the outgoing segment: its bytes must not be less durable
            // than the new segment's, or the durable prefix would have a
            // hole in the middle.
            old.sync()?;
            self.stats.syncs += 1;
        }
        self.seg_seq += 1;
        self.file = Some(self.dir.create(&segment_name(self.seg_seq))?);
        self.seg_bytes = 0;
        Ok(())
    }

    fn append_frame(&mut self, rec: &WalRecord, may_roll: bool) -> Result<(), WalError> {
        let frame = rec.encode_frame()?;
        if self.file.is_none()
            || (may_roll
                && self.seg_bytes > 0
                && self.seg_bytes + frame.len() as u64 > self.segment_max)
        {
            self.roll()?;
        }
        self.file.as_mut().expect("rolled above").append(&frame)?;
        self.seg_bytes += frame.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        Ok(())
    }

    /// Appends a batch's redo record. Not durable (or even committed) on
    /// its own — follow with [`Wal::commit_batch`].
    pub fn append_batch(&mut self, rec: &BatchRecord) -> Result<(), WalError> {
        self.append_frame(&WalRecord::Batch(rec.clone()), true)
    }

    /// Appends the commit marker for `batch_id` and applies the flush
    /// policy. Returns `true` if this call fsynced (the ack that follows is
    /// then crash-proof). The marker never rolls to a new segment: a
    /// batch/commit pair always shares a segment, which is what lets replay
    /// treat a segment ending with an unmarked batch as torn.
    pub fn commit_batch(&mut self, batch_id: u64) -> Result<bool, WalError> {
        self.append_frame(&WalRecord::Commit { batch_id }, false)?;
        self.unsynced_batches += 1;
        let due = match self.policy {
            FlushPolicy::PerBatch => true,
            FlushPolicy::EveryN(n) => self.unsynced_batches >= n,
            FlushPolicy::Off => false,
        };
        if due {
            self.sync()?;
        }
        Ok(due)
    }

    /// Fsyncs the tail segment unconditionally. Graceful drain calls this
    /// before SHUTDOWN_ACK so a clean shutdown is always fully durable,
    /// whatever the policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(f) = self.file.as_mut() {
            f.sync()?;
            self.stats.syncs += 1;
        }
        self.unsynced_batches = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::file::MemDir;
    use super::super::record::{decode_stream, WalRecord};
    use super::*;

    fn batch(id: u64) -> BatchRecord {
        BatchRecord {
            batch_id: id,
            txn_base: (id - 1) as u32,
            txn_count: 1,
            stamp_hwm: id,
            request_ids: vec![id],
            deltas: vec![],
            accesses: vec![],
        }
    }

    fn read_all(dir: &MemDir) -> Vec<WalRecord> {
        let mut out = Vec::new();
        for name in dir.list().unwrap() {
            let bytes = dir.read(&name).unwrap();
            let (recs, tail) = decode_stream(&bytes);
            assert!(tail.is_clean(), "{name}: {tail:?}");
            out.extend(recs.into_iter().map(|(r, _)| r));
        }
        out
    }

    #[test]
    fn appends_batch_then_commit_in_order() {
        let dir = MemDir::new();
        let mut wal = Wal::open_default(Arc::new(dir.clone()), FlushPolicy::PerBatch).unwrap();
        wal.append_batch(&batch(1)).unwrap();
        assert!(wal.commit_batch(1).unwrap());
        let recs = read_all(&dir);
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], WalRecord::Batch(_)));
        assert_eq!(recs[1], WalRecord::Commit { batch_id: 1 });
        assert_eq!(wal.stats().appends, 2);
        assert_eq!(wal.stats().syncs, 1);
    }

    #[test]
    fn every_n_policy_amortises_syncs() {
        let dir = MemDir::new();
        let mut wal = Wal::open_default(Arc::new(dir.clone()), FlushPolicy::EveryN(4)).unwrap();
        let mut synced = 0;
        for id in 1..=8u64 {
            wal.append_batch(&batch(id)).unwrap();
            if wal.commit_batch(id).unwrap() {
                synced += 1;
            }
        }
        assert_eq!(synced, 2);
        assert_eq!(wal.stats().syncs, 2);
        assert_eq!(dir.sync_count(), 2);
    }

    #[test]
    fn off_policy_only_syncs_on_drain() {
        let dir = MemDir::new();
        let mut wal = Wal::open_default(Arc::new(dir.clone()), FlushPolicy::Off).unwrap();
        for id in 1..=3u64 {
            wal.append_batch(&batch(id)).unwrap();
            assert!(!wal.commit_batch(id).unwrap());
        }
        assert_eq!(dir.sync_count(), 0);
        wal.sync().unwrap();
        assert_eq!(dir.sync_count(), 1);
    }

    #[test]
    fn rotation_splits_segments_and_never_splits_records() {
        let dir = MemDir::new();
        // Tiny segments force a roll on almost every record.
        let mut wal = Wal::open(Arc::new(dir.clone()), FlushPolicy::PerBatch, 64).unwrap();
        for id in 1..=6u64 {
            wal.append_batch(&batch(id)).unwrap();
            wal.commit_batch(id).unwrap();
        }
        let names = dir.list().unwrap();
        assert!(names.len() > 1, "expected rotation, got {names:?}");
        // Every segment decodes cleanly on its own: no record straddles.
        let recs = read_all(&dir);
        assert_eq!(recs.len(), 12);
    }

    #[test]
    fn reopen_starts_after_the_highest_segment() {
        let dir = MemDir::new();
        let shared: Arc<dyn LogDir> = Arc::new(dir.clone());
        let mut wal = Wal::open(Arc::clone(&shared), FlushPolicy::PerBatch, 64).unwrap();
        wal.append_batch(&batch(1)).unwrap();
        wal.commit_batch(1).unwrap();
        drop(wal);
        let mut wal2 = Wal::open(shared, FlushPolicy::PerBatch, 64).unwrap();
        wal2.append_batch(&batch(2)).unwrap();
        wal2.commit_batch(2).unwrap();
        assert_eq!(dir.list().unwrap(), vec!["wal-000001.seg", "wal-000002.seg"]);
        assert_eq!(read_all(&dir).len(), 4);
    }

    #[test]
    fn flush_policy_parses_and_displays() {
        assert_eq!("per-batch".parse::<FlushPolicy>().unwrap(), FlushPolicy::PerBatch);
        assert_eq!("every-8".parse::<FlushPolicy>().unwrap(), FlushPolicy::EveryN(8));
        assert_eq!("off".parse::<FlushPolicy>().unwrap(), FlushPolicy::Off);
        assert!("every-0".parse::<FlushPolicy>().is_err());
        assert!("sometimes".parse::<FlushPolicy>().is_err());
        assert_eq!(FlushPolicy::EveryN(8).to_string(), "every-8");
        assert_eq!(FlushPolicy::PerBatch.loss_window(), Some(0));
        assert_eq!(FlushPolicy::EveryN(8).loss_window(), Some(7));
        assert_eq!(FlushPolicy::Off.loss_window(), None);
    }
}
