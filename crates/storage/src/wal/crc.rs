//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//!
//! The WAL frames every record with this checksum so a torn tail or a
//! flipped bit is detected before replay applies anything. Hand-rolled
//! because the workspace vendors no compression/checksum crates; the
//! standard test vector below pins the implementation to the interoperable
//! definition (the same one zlib, PNG, and ethernet use).

/// Reflected CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_test_vector() {
        // The universal check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
