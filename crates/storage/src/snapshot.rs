//! Whole-database snapshots for test oracles.

use pr_model::{EntityId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An immutable capture of every entity's value at one instant.
///
/// Used by the serializability oracle: a concurrent run is accepted iff its
/// final snapshot equals the final snapshot of *some* serial order of the
/// same transactions (§1's correctness criterion).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Snapshot {
    values: BTreeMap<EntityId, Value>,
}

impl Snapshot {
    /// Builds a snapshot from `(id, value)` pairs.
    pub fn from_pairs(iter: impl IntoIterator<Item = (EntityId, Value)>) -> Self {
        Snapshot { values: iter.into_iter().collect() }
    }

    /// Value of `id` in this snapshot, if present.
    pub fn get(&self, id: EntityId) -> Option<Value> {
        self.values.get(&id).copied()
    }

    /// Iterates `(id, value)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, Value)> + '_ {
        self.values.iter().map(|(id, v)| (*id, *v))
    }

    /// Number of entities captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Absorbs another snapshot's entries (later entries win on id
    /// collision, though shard partitions are disjoint by construction).
    /// Used to reassemble a whole-database snapshot from per-shard stores.
    pub fn merge(&mut self, other: Snapshot) {
        self.values.extend(other.values);
    }

    /// Entity ids on which two snapshots disagree — the core of oracle
    /// failure messages.
    pub fn diff(&self, other: &Snapshot) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = Vec::new();
        for (id, v) in &self.values {
            if other.values.get(id) != Some(v) {
                ids.push(*id);
            }
        }
        for id in other.values.keys() {
            if !self.values.contains_key(id) {
                ids.push(*id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn v(i: i64) -> Value {
        Value::new(i)
    }

    #[test]
    fn snapshot_captures_values() {
        let s = Snapshot::from_pairs([(e(0), v(1)), (e(1), v(2))]);
        assert_eq!(s.get(e(0)), Some(v(1)));
        assert_eq!(s.get(e(9)), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn diff_reports_disagreements_symmetrically() {
        let a = Snapshot::from_pairs([(e(0), v(1)), (e(1), v(2))]);
        let b = Snapshot::from_pairs([(e(0), v(1)), (e(1), v(3)), (e(2), v(0))]);
        assert_eq!(a.diff(&b), vec![e(1), e(2)]);
        assert_eq!(b.diff(&a), vec![e(1), e(2)]);
        assert_eq!(a.diff(&a), Vec::<EntityId>::new());
    }
}
