//! The single-copy workspace (§4): one local copy per entity.
//!
//! This is the storage regime of both **total rollback** (the baseline) and
//! the **state-dependency-graph strategy**: "we present a less extreme
//! approach which also requires only one local copy of each entity." The
//! price is that a state's value for an entity is reproducible only when it
//! equals either the entity's *global* value (no write had happened yet) or
//! its *current* local value (no write has happened since). The workspace
//! tracks each entity's and variable's first and last write lock index —
//! exactly enough to answer restorability queries and to emit the write
//! edges the state-dependency graph is built from.

use crate::error::StorageError;
use pr_model::{EntityId, LockIndex, Value, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct EntityCopy {
    /// Lock index of the lock state at which the entity was locked.
    lock_state: LockIndex,
    /// The global value at lock time (unchanged in the database until
    /// unlock, §4).
    global: Value,
    /// The single local copy.
    current: Value,
    /// Lock index of the first write, if any.
    first_write: Option<LockIndex>,
    /// Lock index of the most recent write, if any.
    last_write: Option<LockIndex>,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct VarCopy {
    initial: Value,
    current: Value,
    first_write: Option<LockIndex>,
    last_write: Option<LockIndex>,
}

/// A write event's coordinates in the state-dependency graph: the written
/// object's index of restorability `u` and the write's lock index `w`.
/// Lock states `q` with `u < q < w` become undefined (Theorem 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RecordedWrite {
    /// Index of restorability of the written entity/variable.
    pub u: LockIndex,
    /// Lock index of the write.
    pub w: LockIndex,
}

/// A transaction workspace holding exactly one local copy per exclusively
/// locked entity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SingleCopyWorkspace {
    entities: BTreeMap<EntityId, EntityCopy>,
    vars: Vec<VarCopy>,
    current_vars: Vec<Value>,
    peak_entity_copies: usize,
}

impl SingleCopyWorkspace {
    /// Creates a workspace with the given initial local-variable values.
    pub fn new(initial_vars: &[Value]) -> Self {
        SingleCopyWorkspace {
            entities: BTreeMap::new(),
            vars: initial_vars
                .iter()
                .map(|&v| VarCopy { initial: v, current: v, first_write: None, last_write: None })
                .collect(),
            current_vars: initial_vars.to_vec(),
            peak_entity_copies: 0,
        }
    }

    /// Called when an exclusive lock is granted at lock state `lock_state`:
    /// takes the single local copy of the entity.
    pub fn on_exclusive_lock(&mut self, entity: EntityId, lock_state: LockIndex, global: Value) {
        let prev = self.entities.insert(
            entity,
            EntityCopy { lock_state, global, current: global, first_write: None, last_write: None },
        );
        debug_assert!(prev.is_none(), "entity {entity} locked twice");
        self.peak_entity_copies = self.peak_entity_copies.max(self.entities.len());
    }

    /// Records a write to `entity` at `lock_index`, returning the write's
    /// state-dependency coordinates for the engine to feed its SDG.
    pub fn write_entity(
        &mut self,
        entity: EntityId,
        lock_index: LockIndex,
        value: Value,
    ) -> Result<RecordedWrite, StorageError> {
        let copy = self.entities.get_mut(&entity).ok_or(StorageError::NoLocalCopy(entity))?;
        let first = *copy.first_write.get_or_insert(lock_index);
        copy.last_write = Some(lock_index);
        copy.current = value;
        Ok(RecordedWrite { u: LockIndex::new(first.raw().saturating_sub(1)), w: lock_index })
    }

    /// The transaction's local view of `entity` (exclusive holders only).
    pub fn read_entity(&self, entity: EntityId) -> Option<Value> {
        self.entities.get(&entity).map(|c| c.current)
    }

    /// Records an assignment to a local variable at `lock_index`.
    pub fn assign_var(
        &mut self,
        var: VarId,
        lock_index: LockIndex,
        value: Value,
    ) -> Result<RecordedWrite, StorageError> {
        let copy = self.vars.get_mut(var.index()).ok_or(StorageError::NoSuchVariable(var))?;
        let first = *copy.first_write.get_or_insert(lock_index);
        copy.last_write = Some(lock_index);
        copy.current = value;
        self.current_vars[var.index()] = value;
        Ok(RecordedWrite { u: LockIndex::new(first.raw().saturating_sub(1)), w: lock_index })
    }

    /// Current values of all local variables (for expression evaluation).
    pub fn vars(&self) -> &[Value] {
        &self.current_vars
    }

    /// Current value of one variable.
    pub fn var(&self, var: VarId) -> Result<Value, StorageError> {
        self.current_vars.get(var.index()).copied().ok_or(StorageError::NoSuchVariable(var))
    }

    /// Called at unlock: returns the final local value to publish, or
    /// `None` if no copy is held (shared lock).
    pub fn on_unlock(&mut self, entity: EntityId) -> Option<Value> {
        self.entities.remove(&entity).map(|c| c.current)
    }

    /// The entity's value as of lock state `target`, or `NotRestorable` if
    /// intermediate writes destroyed it — the fundamental limitation that
    /// motivates the state-dependency graph.
    pub fn entity_value_at(
        &self,
        entity: EntityId,
        target: LockIndex,
    ) -> Result<Value, StorageError> {
        let copy = self.entities.get(&entity).ok_or(StorageError::NoLocalCopy(entity))?;
        match (copy.first_write, copy.last_write) {
            (None, _) => Ok(copy.global),
            (Some(first), _) if first > target => Ok(copy.global),
            (_, Some(last)) if last <= target => Ok(copy.current),
            _ => Err(StorageError::NotRestorable { entity, target }),
        }
    }

    /// Rolls the workspace back to lock state `target`.
    ///
    /// Entities locked at or after `target` are dropped (their locks will
    /// be released, nothing published); surviving entities and all local
    /// variables are restored to their value at `target`. Fails with
    /// `NotRestorable`/`VarNotRestorable` iff `target` is not well-defined —
    /// callers using the state-dependency graph never hit that.
    pub fn rollback_to(&mut self, target: LockIndex) -> Result<Vec<EntityId>, StorageError> {
        // Validate everything before mutating, so a failed rollback leaves
        // the workspace intact.
        for (id, copy) in &self.entities {
            if copy.lock_state < target {
                self.entity_value_at(*id, target)
                    .map_err(|_| StorageError::NotRestorable { entity: *id, target })?;
            }
        }
        for (i, copy) in self.vars.iter().enumerate() {
            let restorable = match (copy.first_write, copy.last_write) {
                (None, _) => true,
                (Some(first), _) if first > target => true,
                (_, Some(last)) if last <= target => true,
                _ => false,
            };
            if !restorable {
                return Err(StorageError::VarNotRestorable { var: VarId::new(i as u16), target });
            }
        }

        let released: Vec<EntityId> = self
            .entities
            .iter()
            .filter(|(_, c)| c.lock_state >= target)
            .map(|(id, _)| *id)
            .collect();
        for id in &released {
            self.entities.remove(id);
        }
        for copy in self.entities.values_mut() {
            if let Some(first) = copy.first_write {
                if first > target {
                    copy.current = copy.global;
                    copy.first_write = None;
                    copy.last_write = None;
                }
                // else: last_write <= target, the current value stands.
            }
        }
        for (i, copy) in self.vars.iter_mut().enumerate() {
            if let Some(first) = copy.first_write {
                if first > target {
                    copy.current = copy.initial;
                    copy.first_write = None;
                    copy.last_write = None;
                }
            }
            self.current_vars[i] = copy.current;
        }
        Ok(released)
    }

    /// Structural self-check used by the crash-recovery invariant sweep:
    /// write bookkeeping is internally ordered, unwritten copies still
    /// match their captured global value, cached variable values mirror
    /// their copies, and the peak counter dominates the current count.
    pub fn check_integrity(&self) -> Result<(), String> {
        for (id, copy) in &self.entities {
            match (copy.first_write, copy.last_write) {
                (None, None) => {
                    if copy.current != copy.global {
                        return Err(format!("{id}: unwritten copy diverged from global value"));
                    }
                }
                (Some(first), Some(last)) => {
                    if first > last {
                        return Err(format!("{id}: first write {first:?} after last {last:?}"));
                    }
                    if first < copy.lock_state {
                        return Err(format!(
                            "{id}: write at {first:?} precedes lock state {:?}",
                            copy.lock_state
                        ));
                    }
                }
                _ => return Err(format!("{id}: first/last write bookkeeping out of sync")),
            }
        }
        if self.vars.len() != self.current_vars.len() {
            return Err("variable copy count diverged from cached values".into());
        }
        for (i, copy) in self.vars.iter().enumerate() {
            match (copy.first_write, copy.last_write) {
                (None, None) => {
                    if copy.current != copy.initial {
                        return Err(format!("v{i}: unwritten variable diverged from initial"));
                    }
                }
                (Some(first), Some(last)) if first > last => {
                    return Err(format!("v{i}: first write {first:?} after last {last:?}"));
                }
                (Some(_), Some(_)) => {}
                _ => return Err(format!("v{i}: first/last write bookkeeping out of sync")),
            }
            if copy.current != self.current_vars[i] {
                return Err(format!("v{i}: cached value diverged from copy"));
            }
        }
        if self.entities.len() > self.peak_entity_copies {
            return Err("peak entity copies fell below current count".into());
        }
        Ok(())
    }

    /// Writes a canonical text encoding of the workspace's *restorable
    /// content* into `out`: everything that can influence future execution
    /// (copies, write bookkeeping, cached variable values). The monotone
    /// peak counter is metrics only and is excluded, so two workspaces that
    /// will behave identically encode identically. Used by the model
    /// checker's state fingerprint.
    pub fn encode_state(&self, out: &mut String) {
        use std::fmt::Write;
        let li = |ix: Option<LockIndex>| ix.map_or(-1, |l| i64::from(l.raw()));
        for (id, c) in &self.entities {
            let _ = write!(
                out,
                "E{}@{}:g{},c{},f{},l{};",
                id.raw(),
                c.lock_state.raw(),
                c.global.raw(),
                c.current.raw(),
                li(c.first_write),
                li(c.last_write),
            );
        }
        for (i, c) in self.vars.iter().enumerate() {
            let _ = write!(
                out,
                "V{i}:i{},c{},f{},l{};",
                c.initial.raw(),
                c.current.raw(),
                li(c.first_write),
                li(c.last_write),
            );
        }
    }

    /// Number of entity copies currently held (one per exclusive lock).
    pub fn entity_copies(&self) -> usize {
        self.entities.len()
    }

    /// Peak number of entity copies ever held — the storage-overhead figure
    /// compared against MCS in the experiments.
    pub fn peak_entity_copies(&self) -> usize {
        self.peak_entity_copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn li(i: u32) -> LockIndex {
        LockIndex::new(i)
    }
    fn v(i: i64) -> Value {
        Value::new(i)
    }

    #[test]
    fn unwritten_entity_is_restorable_everywhere() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        assert_eq!(w.entity_value_at(e(0), li(0)).unwrap(), v(10));
        assert_eq!(w.entity_value_at(e(0), li(5)).unwrap(), v(10));
    }

    #[test]
    fn write_reports_sdg_coordinates() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(0));
        // First write at lock index 1: restorability index u = 0.
        let r1 = w.write_entity(e(0), li(1), v(1)).unwrap();
        assert_eq!(r1, RecordedWrite { u: li(0), w: li(1) });
        // A later write at lock index 4 keeps u = 0.
        let r2 = w.write_entity(e(0), li(4), v(4)).unwrap();
        assert_eq!(r2, RecordedWrite { u: li(0), w: li(4) });
    }

    #[test]
    fn intermediate_values_are_not_restorable() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(100));
        w.write_entity(e(0), li(1), v(1)).unwrap();
        w.write_entity(e(0), li(4), v(4)).unwrap();
        // target 0: before first write → global.
        assert_eq!(w.entity_value_at(e(0), li(0)).unwrap(), v(100));
        // targets 1..3: value was 1, overwritten → gone.
        for q in 1..4 {
            assert!(matches!(
                w.entity_value_at(e(0), li(q)),
                Err(StorageError::NotRestorable { .. })
            ));
        }
        // target ≥ 4: current.
        assert_eq!(w.entity_value_at(e(0), li(4)).unwrap(), v(4));
        assert_eq!(w.entity_value_at(e(0), li(7)).unwrap(), v(4));
    }

    #[test]
    fn rollback_drops_late_entities_and_restores_survivors() {
        let mut w = SingleCopyWorkspace::new(&[v(9)]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        w.on_exclusive_lock(e(1), li(1), v(20));
        w.write_entity(e(0), li(2), v(11)).unwrap(); // first write after both locks
        w.assign_var(VarId::new(0), li(2), v(99)).unwrap();

        let released = w.rollback_to(li(1)).unwrap();
        assert_eq!(released, vec![e(1)]);
        // a's write (lock index 2 > target 1) is undone to the global value.
        assert_eq!(w.read_entity(e(0)), Some(v(10)));
        assert_eq!(w.vars(), &[v(9)]);
        assert_eq!(w.entity_copies(), 1);
        assert_eq!(w.peak_entity_copies(), 2);
    }

    #[test]
    fn rollback_keeps_values_written_before_target() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(10));
        w.write_entity(e(0), li(1), v(11)).unwrap(); // before lock state 1
        w.on_exclusive_lock(e(1), li(1), v(20));
        let released = w.rollback_to(li(1)).unwrap();
        assert_eq!(released, vec![e(1)]);
        // a's last write has lock index 1 <= target: current value stands.
        assert_eq!(w.read_entity(e(0)), Some(v(11)));
    }

    #[test]
    fn rollback_to_undefined_state_fails_without_mutating() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(100));
        w.write_entity(e(0), li(1), v(1)).unwrap();
        w.on_exclusive_lock(e(1), li(1), v(0));
        w.on_exclusive_lock(e(2), li(2), v(0));
        w.write_entity(e(0), li(3), v(3)).unwrap(); // destroys states 1, 2
        let err = w.rollback_to(li(2)).unwrap_err();
        assert!(matches!(err, StorageError::NotRestorable { .. }));
        // Workspace unchanged: all three copies still held, value intact.
        assert_eq!(w.entity_copies(), 3);
        assert_eq!(w.read_entity(e(0)), Some(v(3)));
        // Lock state 0 and 3 remain fine.
        assert!(w.rollback_to(li(3)).is_ok());
    }

    #[test]
    fn var_destruction_blocks_rollback() {
        let mut w = SingleCopyWorkspace::new(&[v(0)]);
        w.on_exclusive_lock(e(0), li(0), v(0));
        w.assign_var(VarId::new(0), li(1), v(1)).unwrap();
        w.on_exclusive_lock(e(1), li(1), v(0));
        w.on_exclusive_lock(e(2), li(2), v(0));
        w.assign_var(VarId::new(0), li(3), v(3)).unwrap(); // destroys 1, 2
        assert!(matches!(w.rollback_to(li(2)), Err(StorageError::VarNotRestorable { .. })));
        // Total rollback always works.
        let released = w.rollback_to(LockIndex::ZERO).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(w.vars(), &[v(0)]);
    }

    #[test]
    fn unlock_publishes_final_value() {
        let mut w = SingleCopyWorkspace::new(&[]);
        w.on_exclusive_lock(e(0), li(0), v(5));
        w.write_entity(e(0), li(1), v(6)).unwrap();
        assert_eq!(w.on_unlock(e(0)), Some(v(6)));
        assert_eq!(w.on_unlock(e(0)), None);
        assert_eq!(w.entity_copies(), 0);
    }

    #[test]
    fn missing_entity_operations_error() {
        let mut w = SingleCopyWorkspace::new(&[]);
        assert!(w.write_entity(e(0), li(1), v(1)).is_err());
        assert!(w.entity_value_at(e(0), li(0)).is_err());
        assert_eq!(w.read_entity(e(0)), None);
        assert!(w.assign_var(VarId::new(0), li(1), v(1)).is_err());
    }
}
