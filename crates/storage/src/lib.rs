//! # pr-storage — storage substrate for partial-rollback deadlock removal
//!
//! Implements the storage machinery §4 of the paper requires:
//!
//! * [`GlobalStore`] — the database itself: global entities with values,
//!   optional byte payloads (to make storage-overhead measurements concrete),
//!   and integrity-constraint hooks. Under the paper's deferred-update model
//!   the global value of a locked entity "does not change until the
//!   transaction unlocks it", so rollback never has to undo the database —
//!   it only discards local copies.
//! * [`VersionStack`] — the per-(entity, lock state) value stack of the
//!   **multi-lock copy strategy (MCS)**: each element has a value field and a
//!   lock-index field; a write pushes a new element iff its lock index
//!   exceeds the stack top's, otherwise it updates the top in place.
//! * [`McsWorkspace`] — a transaction's full MCS bookkeeping: one stack per
//!   exclusively locked entity (indexed by the lock state that locked it)
//!   and one stack per local variable (index 0), with the copy accounting of
//!   Theorem 3 (`n(n+1)/2` entity copies, `n·|L|` local copies worst case).
//! * [`SingleCopyWorkspace`] — the one-copy-per-entity workspace used by
//!   both total rollback and the state-dependency-graph (SDG) strategy; it
//!   tracks each entity's and variable's *index of restorability* so the
//!   engine can feed write edges to the SDG and restore values at any
//!   well-defined lock state.
//! * [`Snapshot`] — whole-database snapshots used by the serializability
//!   and crash-consistency test oracles.
//! * [`wal`] — the write-ahead redo log that extends recovery from
//!   in-process rollback to process crashes: segmented CRC32-framed
//!   records logged at group-commit boundaries, a total fail-closed
//!   replay, and a failpoint storage backend for crash-injection tests.

pub mod error;
pub mod global;
pub mod mcs;
pub mod single_copy;
pub mod snapshot;
pub mod version_stack;
pub mod wal;

pub use error::StorageError;
pub use global::{Constraint, GlobalStore, SharedGlobalStore};
pub use mcs::{CopyCounts, McsWorkspace};
pub use single_copy::SingleCopyWorkspace;
pub use snapshot::Snapshot;
pub use version_stack::{StackElement, VersionStack};
pub use wal::{BatchRecord, FlushPolicy, Wal, WalError};

/// Compile-time proof that the storage layer is safe to move into and
/// share across worker threads: the parallel engine keeps a [`GlobalStore`]
/// inside each lock-table shard and a version-stack workspace inside each
/// transaction slot, both behind mutexes, which requires `Send` (and, for
/// the read paths, `Sync`). A non-thread-safe field sneaking into any of
/// these types fails this function's compilation, not a test at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GlobalStore>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<VersionStack>();
    assert_send_sync::<McsWorkspace>();
    assert_send_sync::<SingleCopyWorkspace>();
    assert_send_sync::<SharedGlobalStore>();
    assert_send_sync::<StorageError>();
    assert_send_sync::<BatchRecord>();
    assert_send_sync::<WalError>();
    assert_send_sync::<wal::MemDir>();
    assert_send_sync::<wal::FsDir>();
};
