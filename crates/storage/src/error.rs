//! Storage-layer errors.

use pr_model::{EntityId, LockIndex, VarId};
use std::fmt;

/// Errors raised by the storage substrate.
///
/// These indicate engine bugs or protocol violations, never ordinary data
/// conditions: a correct engine only reads locked entities and only rolls
/// back to restorable states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// The entity does not exist in the global store.
    NoSuchEntity(EntityId),
    /// The entity already exists in the global store.
    EntityExists(EntityId),
    /// A workspace was asked about an entity it holds no copy of.
    NoLocalCopy(EntityId),
    /// A local-variable index beyond the workspace's variable count.
    NoSuchVariable(VarId),
    /// A single-copy workspace was asked to restore a lock state whose
    /// value was destroyed by later writes (a non-restorable state, §4).
    NotRestorable {
        /// Entity whose value cannot be reproduced.
        entity: EntityId,
        /// The requested rollback target.
        target: LockIndex,
    },
    /// A variable's value at the rollback target was destroyed by later
    /// assignments.
    VarNotRestorable {
        /// Variable whose value cannot be reproduced.
        var: VarId,
        /// The requested rollback target.
        target: LockIndex,
    },
    /// An integrity constraint failed during a consistency check.
    ConstraintViolated {
        /// Name of the violated constraint.
        name: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchEntity(e) => write!(f, "no such entity: {e}"),
            StorageError::EntityExists(e) => write!(f, "entity already exists: {e}"),
            StorageError::NoLocalCopy(e) => write!(f, "no local copy of entity {e}"),
            StorageError::NoSuchVariable(v) => write!(f, "no such local variable: {v}"),
            StorageError::NotRestorable { entity, target } => {
                write!(f, "entity {entity} is not restorable at lock state {target}")
            }
            StorageError::VarNotRestorable { var, target } => {
                write!(f, "variable {var} is not restorable at lock state {target}")
            }
            StorageError::ConstraintViolated { name } => {
                write!(f, "integrity constraint violated: {name}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::NotRestorable { entity: EntityId::new(0), target: LockIndex::new(2) };
        assert!(e.to_string().contains("not restorable"));
        assert!(StorageError::NoSuchEntity(EntityId::new(3)).to_string().contains("no such"));
    }
}
