//! The global entity store — the "database" of §2.
//!
//! A database is "a set of global data entities" each with a value from its
//! range, plus "a set of constraints defining the set of consistent states".
//! Under the deferred-update discipline of §4 the store is only written at
//! unlock time, which is why rollback-for-deadlock never needs to undo it.

use crate::error::StorageError;
use crate::snapshot::Snapshot;
use bytes::Bytes;
use parking_lot::RwLock;
use pr_model::{EntityId, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An integrity constraint over the database, named for diagnostics.
///
/// The classic example is conservation: "the sum of all account balances is
/// constant". Constraints are checked by [`GlobalStore::check_consistency`],
/// which the test oracles call at every quiescent point.
#[derive(Clone)]
pub struct Constraint {
    name: String,
    /// `Arc`, not `Box`: constraints are immutable once registered, so a
    /// cloned store (the model checker snapshots whole systems) can share
    /// the predicate instead of requiring `dyn Fn: Clone`.
    predicate: Arc<dyn Fn(&GlobalStore) -> bool + Send + Sync>,
}

impl Constraint {
    /// Creates a named constraint from a predicate over the store.
    pub fn new(
        name: impl Into<String>,
        predicate: impl Fn(&GlobalStore) -> bool + Send + Sync + 'static,
    ) -> Self {
        Constraint { name: name.into(), predicate: Arc::new(predicate) }
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Constraint").field("name", &self.name).finish()
    }
}

#[derive(Clone, Debug)]
struct StoredEntity {
    value: Value,
    /// Optional opaque payload so storage-overhead experiments can measure
    /// bytes, not just copy counts. Copied into workspaces alongside the
    /// value.
    payload: Option<Bytes>,
}

/// The database: a map from entity id to current (global) value.
#[derive(Clone, Default)]
pub struct GlobalStore {
    entities: BTreeMap<EntityId, StoredEntity>,
    constraints: Vec<Constraint>,
    /// Monotone count of committed (published) writes, for metrics.
    publishes: u64,
}

impl GlobalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store with entities `0..n`, all initialised to `init`.
    pub fn with_entities(n: u32, init: Value) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.create(EntityId::new(i), init).expect("fresh ids cannot collide");
        }
        s
    }

    /// Adds a new entity with an initial value.
    pub fn create(&mut self, id: EntityId, value: Value) -> Result<(), StorageError> {
        if self.entities.contains_key(&id) {
            return Err(StorageError::EntityExists(id));
        }
        self.entities.insert(id, StoredEntity { value, payload: None });
        Ok(())
    }

    /// Adds a new entity carrying an opaque payload of `payload_len` bytes.
    pub fn create_with_payload(
        &mut self,
        id: EntityId,
        value: Value,
        payload_len: usize,
    ) -> Result<(), StorageError> {
        self.create(id, value)?;
        let bytes = Bytes::from(vec![0u8; payload_len]);
        self.entities.get_mut(&id).expect("just inserted").payload = Some(bytes);
        Ok(())
    }

    /// Ensures `id` exists, creating it with [`Value::ZERO`] if necessary.
    pub fn ensure(&mut self, id: EntityId) {
        self.entities.entry(id).or_insert(StoredEntity { value: Value::ZERO, payload: None });
    }

    /// Current global value of an entity.
    pub fn read(&self, id: EntityId) -> Result<Value, StorageError> {
        self.entities.get(&id).map(|e| e.value).ok_or(StorageError::NoSuchEntity(id))
    }

    /// The entity's payload, if it carries one. The returned [`Bytes`] is a
    /// cheap reference-counted handle; cloning it models copying the record
    /// into a workspace without actually duplicating memory.
    pub fn payload(&self, id: EntityId) -> Option<Bytes> {
        self.entities.get(&id).and_then(|e| e.payload.clone())
    }

    /// Publishes a new global value — the unlock-time copy-back of §4
    /// ("the final value of the latest such copy becomes the new global
    /// value when T_i unlocks A").
    pub fn publish(&mut self, id: EntityId, value: Value) -> Result<(), StorageError> {
        let ent = self.entities.get_mut(&id).ok_or(StorageError::NoSuchEntity(id))?;
        ent.value = value;
        self.publishes += 1;
        Ok(())
    }

    /// Number of publish operations performed, for metrics.
    pub fn publish_count(&self) -> u64 {
        self.publishes
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the store holds no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, Value)> + '_ {
        self.entities.iter().map(|(id, e)| (*id, e.value))
    }

    /// Sum of all entity values — convenient for conservation constraints.
    pub fn total(&self) -> Value {
        self.iter().fold(Value::ZERO, |acc, (_, v)| acc + v)
    }

    /// Registers an integrity constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Checks every registered constraint, reporting the first violation.
    pub fn check_consistency(&self) -> Result<(), StorageError> {
        for c in &self.constraints {
            if !(c.predicate)(self) {
                return Err(StorageError::ConstraintViolated { name: c.name.clone() });
            }
        }
        Ok(())
    }

    /// Takes a snapshot of all values for later comparison.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_pairs(self.iter())
    }

    /// Restores all values from a snapshot (test-oracle use only; the
    /// engine itself never rewinds the database).
    pub fn restore(&mut self, snap: &Snapshot) {
        for (id, value) in snap.iter() {
            if let Some(e) = self.entities.get_mut(&id) {
                e.value = value;
            }
        }
    }

    /// Splits the store into `shards` stores, routing each entity by
    /// `route` (which must return an index `< shards`). Used by the
    /// parallel engine to co-locate every entity's global value with its
    /// lock-table shard, so a grant and the read of the granted entity's
    /// value happen under one shard mutex. Whole-store constraints cannot
    /// be partitioned and are dropped — cross-shard consistency is the
    /// caller's oracle's job (it reassembles a full [`Snapshot`] first).
    pub fn partition_by(
        self,
        shards: usize,
        route: impl Fn(EntityId) -> usize,
    ) -> Vec<GlobalStore> {
        let mut out: Vec<GlobalStore> = (0..shards).map(|_| GlobalStore::new()).collect();
        for (id, ent) in self.entities {
            let s = route(id);
            assert!(s < shards, "route({id}) = {s} out of range for {shards} shards");
            out[s].entities.insert(id, ent);
        }
        out
    }
}

impl fmt::Debug for GlobalStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter().map(|(id, v)| (id, v.raw()))).finish()
    }
}

/// A thread-safe handle to a [`GlobalStore`], for the multi-threaded stress
/// harness. The engine proper is deterministic and single-threaded; this
/// wrapper exists so the same store type can back the `crossbeam` tests.
#[derive(Clone, Default)]
pub struct SharedGlobalStore(Arc<RwLock<GlobalStore>>);

impl SharedGlobalStore {
    /// Wraps a store.
    pub fn new(store: GlobalStore) -> Self {
        SharedGlobalStore(Arc::new(RwLock::new(store)))
    }

    /// Runs `f` with shared read access.
    pub fn with_read<R>(&self, f: impl FnOnce(&GlobalStore) -> R) -> R {
        f(&self.0.read())
    }

    /// Runs `f` with exclusive write access.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut GlobalStore) -> R) -> R {
        f(&mut self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn create_read_publish_roundtrip() {
        let mut s = GlobalStore::new();
        s.create(e(0), Value::new(10)).unwrap();
        assert_eq!(s.read(e(0)).unwrap(), Value::new(10));
        s.publish(e(0), Value::new(20)).unwrap();
        assert_eq!(s.read(e(0)).unwrap(), Value::new(20));
        assert_eq!(s.publish_count(), 1);
    }

    #[test]
    fn duplicate_create_and_missing_reads_error() {
        let mut s = GlobalStore::new();
        s.create(e(0), Value::ZERO).unwrap();
        assert_eq!(s.create(e(0), Value::ZERO), Err(StorageError::EntityExists(e(0))));
        assert_eq!(s.read(e(1)), Err(StorageError::NoSuchEntity(e(1))));
        assert_eq!(s.publish(e(1), Value::ZERO), Err(StorageError::NoSuchEntity(e(1))));
    }

    #[test]
    fn with_entities_initialises_range() {
        let s = GlobalStore::with_entities(5, Value::new(7));
        assert_eq!(s.len(), 5);
        assert_eq!(s.total(), Value::new(35));
        assert!(!s.is_empty());
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut s = GlobalStore::new();
        s.ensure(e(3));
        s.ensure(e(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.read(e(3)).unwrap(), Value::ZERO);
    }

    #[test]
    fn constraints_detect_violation() {
        let mut s = GlobalStore::with_entities(2, Value::new(50));
        s.add_constraint(Constraint::new("conservation", |s| s.total() == Value::new(100)));
        assert!(s.check_consistency().is_ok());
        s.publish(e(0), Value::new(49)).unwrap();
        let err = s.check_consistency().unwrap_err();
        assert_eq!(err, StorageError::ConstraintViolated { name: "conservation".into() });
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = GlobalStore::with_entities(3, Value::new(1));
        let snap = s.snapshot();
        s.publish(e(1), Value::new(99)).unwrap();
        assert_ne!(s.read(e(1)).unwrap(), Value::new(1));
        s.restore(&snap);
        assert_eq!(s.read(e(1)).unwrap(), Value::new(1));
    }

    #[test]
    fn payloads_are_cheap_handles() {
        let mut s = GlobalStore::new();
        s.create_with_payload(e(0), Value::ZERO, 4096).unwrap();
        let p1 = s.payload(e(0)).unwrap();
        let p2 = s.payload(e(0)).unwrap();
        assert_eq!(p1.len(), 4096);
        assert_eq!(p1, p2);
        assert!(s.payload(e(1)).is_none());
    }

    #[test]
    fn partition_routes_entities_and_snapshots_reassemble() {
        let mut s = GlobalStore::new();
        for i in 0..6 {
            s.create(e(i), Value::new(i64::from(i) * 10)).unwrap();
        }
        let full = s.snapshot();
        let shards = s.partition_by(3, |id| id.raw() as usize % 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].read(e(0)).unwrap(), Value::new(0));
        assert_eq!(shards[1].read(e(4)).unwrap(), Value::new(40));
        assert_eq!(shards[2].read(e(5)).unwrap(), Value::new(50));
        assert!(shards[0].read(e(1)).is_err());
        let mut merged = Snapshot::default();
        for shard in &shards {
            merged.merge(shard.snapshot());
        }
        assert_eq!(merged, full);
    }

    #[test]
    fn shared_store_allows_concurrent_reads() {
        let shared = SharedGlobalStore::new(GlobalStore::with_entities(4, Value::new(2)));
        let total = shared.with_read(|s| s.total());
        assert_eq!(total, Value::new(8));
        shared.with_write(|s| s.publish(e(0), Value::new(10)).unwrap());
        assert_eq!(shared.with_read(|s| s.total()), Value::new(16));
    }
}
