//! WAL codec properties, in the wire-protocol test suite's style: every
//! record the writer can produce must round-trip byte-identically through
//! the on-disk framing, and every mutilated byte stream — torn tails,
//! bit flips, truncations at arbitrary offsets, hostile counts — must
//! decode to a clean prefix of whole records plus a typed [`Tail`]
//! verdict. Never a panic, never a silently-wrong record.

use pr_model::{EntityId, Value};
use pr_storage::wal::{decode_stream, BatchRecord, Tail, WalAccess, WalRecord};
use proptest::prelude::*;

/// splitmix64 — grows one seed into a reproducible value stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value stream for building random records.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = mix(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn gen_batch(g: &mut Gen, id: u64) -> BatchRecord {
    let txn_base = g.below(1 << 20) as u32;
    let txn_count = g.below(24) as u32;
    BatchRecord {
        batch_id: id,
        txn_base,
        txn_count,
        stamp_hwm: g.next(),
        request_ids: (0..txn_count).map(|_| g.next()).collect(),
        deltas: (0..g.below(16))
            .map(|_| (EntityId::new(g.below(1 << 16) as u32), Value::new(g.next() as i64)))
            .collect(),
        accesses: (0..g.below(40))
            .map(|_| WalAccess {
                txn: txn_base + 1 + g.below(64) as u32,
                entity: g.below(1 << 16) as u32,
                exclusive: g.below(2) == 1,
                stamp: g.next(),
            })
            .collect(),
    }
}

/// A random well-formed log: batch/commit pairs, as the writer appends them.
fn gen_log(g: &mut Gen) -> (Vec<u8>, Vec<WalRecord>) {
    let batches = 1 + g.below(5);
    let mut records = Vec::new();
    for id in 1..=batches {
        records.push(WalRecord::Batch(gen_batch(g, id)));
        records.push(WalRecord::Commit { batch_id: id });
    }
    let mut bytes = Vec::new();
    for r in &records {
        bytes.extend_from_slice(&r.encode_frame().expect("generated records fit"));
    }
    (bytes, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any writable log decodes back to exactly the records written, with
    /// frame-end offsets that tile the byte stream.
    #[test]
    fn logs_round_trip_with_exact_offsets(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let (bytes, records) = gen_log(&mut g);
        let (decoded, tail) = decode_stream(&bytes);
        prop_assert!(tail.is_clean());
        prop_assert_eq!(decoded.len(), records.len());
        let mut prev_end = 0usize;
        for ((got, end), want) in decoded.iter().zip(&records) {
            prop_assert_eq!(got, want);
            prop_assert!(*end > prev_end, "offsets must be strictly increasing");
            prev_end = *end;
        }
        prop_assert_eq!(prev_end, bytes.len());
    }

    /// Every truncation — every torn tail a crash can produce — yields the
    /// longest whole-record prefix and a clean/torn verdict that agrees
    /// with whether the cut landed on a record boundary.
    #[test]
    fn every_truncation_is_fail_closed(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let (bytes, _) = gen_log(&mut g);
        let (full, _) = decode_stream(&bytes);
        let boundaries: Vec<usize> = full.iter().map(|(_, end)| *end).collect();
        for cut in 0..=bytes.len() {
            let (decoded, tail) = decode_stream(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut).count();
            prop_assert_eq!(decoded.len(), expect, "cut at {}", cut);
            for ((got, _), (want, _)) in decoded.iter().zip(&full) {
                prop_assert_eq!(got, want, "cut at {} corrupted a surviving record", cut);
            }
            let at_boundary = cut == 0 || boundaries.contains(&cut);
            prop_assert_eq!(tail.is_clean(), at_boundary, "cut at {}", cut);
        }
    }

    /// A single flipped bit anywhere in the log never corrupts a record
    /// before the flip and never lets the flipped frame decode as a
    /// different valid record (the CRC catches all single-bit payload
    /// damage; header damage at worst stops the scan early).
    #[test]
    fn single_bit_flips_never_forge_records(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let (bytes, _) = gen_log(&mut g);
        let (full, _) = decode_stream(&bytes);
        let boundaries: Vec<usize> = full.iter().map(|(_, end)| *end).collect();
        // Sample flip positions (every position would be quadratic across
        // proptest cases); bit chosen per position.
        for _ in 0..64 {
            let byte = g.below(bytes.len() as u64) as usize;
            let bit = 1u8 << g.below(8);
            let mut evil = bytes.clone();
            evil[byte] ^= bit;
            let (decoded, _) = decode_stream(&evil);
            let frame_idx = boundaries.iter().filter(|&&b| b <= byte).count();
            prop_assert!(decoded.len() <= full.len());
            for (i, (rec, _)) in decoded.iter().enumerate() {
                if i < frame_idx {
                    prop_assert_eq!(
                        rec, &full[i].0,
                        "flip at byte {} corrupted record {} before it", byte, i
                    );
                } else {
                    // A record at or after the flip may only appear if the
                    // flip left it byte-identical to an original (a
                    // length-prefix flip can realign the scan; the CRC
                    // guarantees any decoded record is authentic).
                    prop_assert!(
                        full.iter().any(|(orig, _)| orig == rec),
                        "flip at byte {} forged record {}", byte, i
                    );
                }
            }
        }
    }

    /// Concatenating random garbage after a valid log never disturbs the
    /// valid prefix: decoding returns every original record and a torn
    /// tail pointing into the garbage (or clean, iff the garbage happens
    /// to be empty).
    #[test]
    fn garbage_tails_leave_the_prefix_intact(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let (bytes, records) = gen_log(&mut g);
        let mut evil = bytes.clone();
        for _ in 0..1 + g.below(40) {
            evil.push(g.next() as u8);
        }
        let (decoded, tail) = decode_stream(&evil);
        prop_assert!(decoded.len() >= records.len(), "garbage ate valid records");
        for ((got, _), want) in decoded.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
        // The scan must stop at or after the real end; a torn verdict must
        // point at or past the last authentic boundary.
        if let Tail::Torn { offset, .. } = tail {
            prop_assert!(offset >= bytes.len(), "torn offset {} inside valid data", offset);
        }
    }

    /// Pure noise (no valid log at all) decodes to nothing or to frames
    /// the noise genuinely contains — and never panics. The empty input
    /// is clean.
    #[test]
    fn pure_noise_never_panics(seed in 0u64..100_000) {
        let mut g = Gen(seed);
        let noise: Vec<u8> = (0..g.below(256)).map(|_| g.next() as u8).collect();
        let (decoded, tail) = decode_stream(&noise);
        if noise.is_empty() {
            prop_assert!(tail.is_clean());
            prop_assert!(decoded.is_empty());
        }
        // 8 random header bytes declare a random length + CRC; a
        // spuriously valid frame requires a 1-in-2^32 CRC hit, but the
        // property is only that decoding is total — reaching here is it.
    }
}
