//! Sites and entity partitioning.

use pr_model::EntityId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a site in the distributed system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Site 0 doubles as the coordinator under global detection.
    pub const COORDINATOR: SiteId = SiteId(0);

    /// Creates a site id.
    pub const fn new(raw: u16) -> Self {
        SiteId(raw)
    }

    /// Raw index.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// How entities are assigned to sites.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Partition {
    /// Entity `e` lives at site `e mod n`.
    RoundRobin {
        /// Number of sites.
        sites: u16,
    },
    /// Entities are split into `n` contiguous ranges of `span` each:
    /// entity `e` lives at site `min(e / span, sites - 1)`.
    Range {
        /// Number of sites.
        sites: u16,
        /// Entities per site.
        span: u32,
    },
}

impl Partition {
    /// Number of sites.
    pub fn sites(self) -> u16 {
        match self {
            Partition::RoundRobin { sites } | Partition::Range { sites, .. } => sites,
        }
    }

    /// The home site of an entity.
    pub fn site_of(self, entity: EntityId) -> SiteId {
        match self {
            Partition::RoundRobin { sites } => SiteId((entity.raw() % u32::from(sites)) as u16),
            Partition::Range { sites, span } => {
                let idx = (entity.raw() / span.max(1)).min(u32::from(sites) - 1);
                SiteId(idx as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    #[test]
    fn round_robin_cycles_sites() {
        let p = Partition::RoundRobin { sites: 3 };
        assert_eq!(p.site_of(e(0)), SiteId(0));
        assert_eq!(p.site_of(e(1)), SiteId(1));
        assert_eq!(p.site_of(e(2)), SiteId(2));
        assert_eq!(p.site_of(e(3)), SiteId(0));
        assert_eq!(p.sites(), 3);
    }

    #[test]
    fn range_partition_clamps_overflow() {
        let p = Partition::Range { sites: 2, span: 4 };
        assert_eq!(p.site_of(e(0)), SiteId(0));
        assert_eq!(p.site_of(e(3)), SiteId(0));
        assert_eq!(p.site_of(e(4)), SiteId(1));
        assert_eq!(p.site_of(e(100)), SiteId(1), "overflow clamps to last site");
    }

    #[test]
    fn site_display() {
        assert_eq!(SiteId::new(2).to_string(), "site2");
        assert_eq!(format!("{:?}", SiteId::COORDINATOR), "site0");
    }
}
