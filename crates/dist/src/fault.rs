//! Deterministic fault schedules for the distributed engine.
//!
//! A [`FaultPlan`] is a complete, seed-derived description of everything
//! that will go wrong during a run: per-message drop/duplication/delay
//! probabilities, a list of site crashes with restart times, and per-site
//! clock skew applied to WoundWait timestamps. Because every random
//! decision is drawn from one PRNG seeded by [`FaultPlan::seed`] in a
//! fixed order, replaying the same plan against the same workload and
//! scheduler reproduces the identical failure history, byte for byte —
//! the property the chaos harness and the determinism proptest rely on.

use crate::site::SiteId;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled site failure: the site goes down at `at_tick` (engine
/// steps are the clock) and comes back `down_ticks` later.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The crashing site.
    pub site: SiteId,
    /// Virtual-clock tick at which the crash happens.
    pub at_tick: u64,
    /// Ticks until the site restarts. Must be finite and non-zero: a site
    /// that never restarts would let transactions stall against it forever
    /// and void the no-wedge invariant.
    pub down_ticks: u64,
}

/// A seeded, replayable fault schedule.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every per-message random decision.
    pub seed: u64,
    /// Probability (per mille) that a droppable message is lost. Values
    /// above [`FaultPlan::MAX_DROP_PER_MILLE`] are clamped at use: a
    /// certain-loss network can never deliver a retried request and would
    /// wedge every run by construction.
    pub drop_per_mille: u16,
    /// Probability (per mille) that a delivered message is duplicated.
    pub dup_per_mille: u16,
    /// Probability (per mille) that an asynchronous message is delayed.
    pub delay_per_mille: u16,
    /// Maximum delay, in ticks, for a delayed message (uniform in
    /// `1..=max_delay_ticks`). Delays produce genuine reordering: a later
    /// send with a shorter delay overtakes an earlier one.
    pub max_delay_ticks: u64,
    /// Scheduled site failures.
    pub crashes: Vec<CrashEvent>,
    /// Per-site clock skew (ticks) added to WoundWait timestamps of
    /// transactions homed at that site. Sites beyond the vector's length
    /// have zero skew.
    pub clock_skew_ticks: Vec<i64>,
    /// Attempts per request before the sender reports a timeout and backs
    /// off to retry on its next scheduling slot.
    pub rpc_retry_limit: u32,
    /// Base of the bounded exponential backoff between request attempts
    /// (attempt `k` waits `backoff_base_ticks << k`, capped).
    pub backoff_base_ticks: u64,
}

impl FaultPlan {
    /// Hard ceiling on the effective drop probability (999‰): retries must
    /// succeed with non-zero probability or liveness is unprovable.
    pub const MAX_DROP_PER_MILLE: u16 = 999;

    /// The empty plan: a perfect network, immortal sites, no skew.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ticks: 0,
            crashes: Vec::new(),
            clock_skew_ticks: Vec::new(),
            rpc_retry_limit: 8,
            backoff_base_ticks: 1,
        }
    }

    /// Whether the plan injects any fault at all. An inactive plan keeps
    /// the engine on its zero-overhead path, byte-identical to a build
    /// without fault injection.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.delay_per_mille > 0
            || !self.crashes.is_empty()
            || self.clock_skew_ticks.iter().any(|&s| s != 0)
    }

    /// The effective (clamped) drop probability.
    pub fn effective_drop_per_mille(&self) -> u16 {
        self.drop_per_mille.min(Self::MAX_DROP_PER_MILLE)
    }

    /// Derives a complete adversarial schedule from `seed` for a system of
    /// `sites` sites and a workload expected to finish within `horizon`
    /// ticks. Every field — including which sites crash and when — is a
    /// pure function of the seed, so the chaos harness can reconstruct a
    /// failing schedule from its seed alone.
    pub fn chaos(seed: u64, sites: u16, horizon: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let horizon = horizon.max(40);
        let mut crashes = Vec::new();
        let mut skew = Vec::new();
        for s in 0..sites {
            if rng.gen_bool(0.5) {
                let at_tick = rng.gen_range(horizon / 10..horizon / 2);
                let down_ticks = rng.gen_range(horizon / 20..horizon / 4).max(1);
                crashes.push(CrashEvent { site: SiteId::new(s), at_tick, down_ticks });
            }
            skew.push(rng.gen_range(-16i64..=16));
        }
        FaultPlan {
            seed,
            drop_per_mille: rng.gen_range(0..300),
            dup_per_mille: rng.gen_range(0..300),
            delay_per_mille: rng.gen_range(0..400),
            max_delay_ticks: rng.gen_range(1..8),
            crashes,
            clock_skew_ticks: skew,
            rpc_retry_limit: 8,
            backoff_base_ticks: 1,
        }
    }

    /// Clock skew for `site` (zero if the vector does not cover it).
    pub fn skew_of(&self, site: SiteId) -> i64 {
        self.clock_skew_ticks.get(usize::from(site.raw())).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        let mut p = FaultPlan::none();
        p.dup_per_mille = 1;
        assert!(p.is_active());
    }

    #[test]
    fn chaos_plans_are_seed_deterministic() {
        let a = FaultPlan::chaos(42, 4, 1000);
        let b = FaultPlan::chaos(42, 4, 1000);
        assert_eq!(a, b);
        let c = FaultPlan::chaos(43, 4, 1000);
        assert_ne!(a, c, "different seeds should differ (with overwhelming probability)");
    }

    #[test]
    fn chaos_crashes_respect_the_horizon_and_restart() {
        for seed in 0..32 {
            let p = FaultPlan::chaos(seed, 6, 500);
            for c in &p.crashes {
                assert!(c.at_tick < 250);
                assert!(c.down_ticks >= 1 && c.down_ticks <= 125);
            }
            assert!(p.effective_drop_per_mille() <= FaultPlan::MAX_DROP_PER_MILLE);
        }
    }

    #[test]
    fn skew_defaults_to_zero_beyond_vector() {
        let mut p = FaultPlan::none();
        p.clock_skew_ticks = vec![3, -2];
        assert_eq!(p.skew_of(SiteId::new(0)), 3);
        assert_eq!(p.skew_of(SiteId::new(1)), -2);
        assert_eq!(p.skew_of(SiteId::new(9)), 0);
    }
}
