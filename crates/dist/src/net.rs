//! The simulated inter-site network: sequence numbers, dedup windows,
//! in-flight delays, drops, duplicates, and site liveness.
//!
//! The engine drives everything synchronously, so the network's job is to
//! decide — deterministically, from the [`FaultPlan`]'s seeded PRNG — what
//! *would* have happened to each message and to surface the consequences:
//!
//! * **Requests** ([`Network::rpc`]) retry with bounded exponential
//!   backoff; exhausting the retry budget (or addressing a dead site)
//!   reports a timeout and the caller stalls without advancing, retrying
//!   on its next scheduling slot.
//! * **Reliable notifications** ([`Network::send_reliable`]) — wounds and
//!   grants — are retried until delivered, but the network may *duplicate*
//!   them; every message carries a per-channel sequence number and the
//!   receiving site's dedup window suppresses replays.
//! * **Asynchronous updates** ([`Network::send_async`]) — coordinator
//!   graph maintenance — can be dropped outright, delayed (which reorders
//!   them against later sends), or duplicated; delivery happens when the
//!   engine polls the in-flight queue.
//!
//! Every decision is appended to a bounded textual trace, which is the
//! artifact the determinism proptest compares across replays and the chaos
//! harness uploads for failing seeds.

use crate::fault::{CrashEvent, FaultPlan};
use crate::metrics::DistMetrics;
use crate::site::SiteId;
use pr_model::{EntityId, TxnId};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A site liveness transition surfaced by [`Network::due_transitions`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// The site crashed: its lock grants are lost and recovery must run.
    Down(SiteId),
    /// The site restarted after the given outage length.
    Up(SiteId, u64),
}

/// Outcome of sending an asynchronous (droppable) message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AsyncOutcome {
    /// Delivered immediately (the engine should apply it now).
    Applied,
    /// In flight; it will surface from [`Network::poll`] at a later tick.
    Deferred,
    /// Lost. The reconcile path repairs the resulting staleness.
    Dropped,
    /// The destination site is down; the message cannot be sent at all.
    DestinationDown,
}

/// An asynchronous payload: a waits-for arc update bound for a graph
/// maintained at another site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GraphUpdate {
    /// The waiting transaction.
    pub waiter: TxnId,
    /// The contested entity.
    pub entity: EntityId,
}

#[derive(Clone, Debug)]
struct InFlight {
    deliver_at: u64,
    /// Global send order; ties on `deliver_at` deliver in send order.
    order: u64,
    channel: (u16, u16),
    seq: u64,
    payload: GraphUpdate,
}

/// Bound on retained trace lines (chaos runs are long; traces must not be
/// the thing that runs the host out of memory).
const TRACE_CAP: usize = 20_000;
/// Dedup window pruning thresholds per channel.
const SEEN_HIGH: usize = 2_048;
const SEEN_LOW: usize = 1_024;
/// Cap on reliable-send attempts; with drop ≤ 999‰ the probability of
/// hitting it is ≤ 0.999^64 ≈ 1.6%, and the send succeeds anyway (the
/// model treats the final attempt as delivered) — the cap only bounds the
/// accounting loop.
const RELIABLE_ATTEMPT_CAP: u32 = 64;

/// The simulated network fabric shared by all sites.
#[derive(Clone, Debug)]
pub struct Network {
    plan: FaultPlan,
    rng: SmallRng,
    active: bool,
    now: u64,
    /// Crashes not yet triggered, sorted by `at_tick`.
    pending_crashes: Vec<CrashEvent>,
    /// Down sites → (restart tick, crash tick).
    down: BTreeMap<u16, (u64, u64)>,
    next_seq: BTreeMap<(u16, u16), u64>,
    seen: BTreeMap<(u16, u16), BTreeSet<u64>>,
    queue: Vec<InFlight>,
    send_order: u64,
    trace: Vec<String>,
    trace_dropped: u64,
}

impl Network {
    /// A network with no fault plan: every call takes the zero-overhead
    /// fast path and the engine behaves exactly as without this module.
    pub fn inactive() -> Self {
        Self::build(FaultPlan::none())
    }

    /// A network executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self::build(plan)
    }

    fn build(plan: FaultPlan) -> Self {
        let mut pending = plan.crashes.clone();
        pending.sort_by_key(|c| (c.at_tick, c.site.raw()));
        let active = plan.is_active();
        Network {
            rng: SmallRng::seed_from_u64(plan.seed),
            plan,
            active,
            now: 0,
            pending_crashes: pending,
            down: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            seen: BTreeMap::new(),
            queue: Vec::new(),
            send_order: 0,
            trace: Vec::new(),
            trace_dropped: 0,
        }
    }

    /// Whether fault injection is on.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the virtual clock by one tick (one engine step).
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Jumps the clock forward to `tick` (used when no transaction is
    /// runnable and the system is waiting for the next network event).
    pub fn advance_to(&mut self, tick: u64) {
        if tick > self.now {
            self.now = tick;
        }
    }

    /// Whether `site` is currently crashed.
    pub fn is_down(&self, site: SiteId) -> bool {
        self.down.contains_key(&site.raw())
    }

    /// The earliest tick strictly in the future at which something is
    /// scheduled to happen: a crash, a restart, or an in-flight delivery.
    pub fn next_event_tick(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > self.now && next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        if let Some(c) = self.pending_crashes.first() {
            consider(c.at_tick.max(self.now + 1));
        }
        for &(up_at, _) in self.down.values() {
            consider(up_at.max(self.now + 1));
        }
        for m in &self.queue {
            consider(m.deliver_at.max(self.now + 1));
        }
        next
    }

    /// Site liveness transitions due at or before the current tick, in
    /// deterministic order (crashes before restarts, each by site id).
    pub fn due_transitions(&mut self) -> Vec<Transition> {
        let mut out = Vec::new();
        while self.pending_crashes.first().is_some_and(|c| c.at_tick <= self.now) {
            let c = self.pending_crashes.remove(0);
            // A crash of an already-down site just extends the outage.
            let up_at = self.now + c.down_ticks.max(1);
            let entry = self.down.entry(c.site.raw()).or_insert((up_at, self.now));
            entry.0 = entry.0.max(up_at);
            self.log(format!("[{}] crash {} (down {} ticks)", self.now, c.site, c.down_ticks));
            out.push(Transition::Down(c.site));
        }
        let restarts: Vec<u16> = self
            .down
            .iter()
            .filter(|(_, &(up_at, _))| up_at <= self.now)
            .map(|(&s, _)| s)
            .collect();
        for s in restarts {
            let (_, crashed_at) = self.down.remove(&s).expect("present");
            let outage = self.now - crashed_at;
            self.log(format!("[{}] restart site{s} (outage {outage} ticks)", self.now));
            out.push(Transition::Up(SiteId::new(s), outage));
        }
        out
    }

    /// A synchronous request/response exchange from `from` to `to`:
    /// returns `true` if a request got through within the retry budget.
    /// On `false` the caller must stall (retry on its next slot); the
    /// attempt cost is recorded in `m`.
    pub fn rpc(&mut self, from: SiteId, to: SiteId, m: &mut DistMetrics) -> bool {
        if !self.active {
            return true;
        }
        if self.is_down(to) || self.is_down(from) {
            m.timeouts += 1;
            m.stall_steps += 1;
            self.log(format!("[{}] rpc {from}->{to} timeout (site down)", self.now));
            return false;
        }
        let drop_p = f64::from(self.plan.effective_drop_per_mille()) / 1000.0;
        let limit = self.plan.rpc_retry_limit.max(1);
        for attempt in 0..limit {
            if attempt > 0 {
                m.retries += 1;
                m.messages += 1; // the retried request itself
                let backoff = (self.plan.backoff_base_ticks.max(1) << attempt.min(16)).min(1 << 16);
                m.backoff_ticks += backoff;
            }
            if drop_p == 0.0 || !self.rng.gen_bool(drop_p) {
                if attempt > 0 {
                    self.log(format!(
                        "[{}] rpc {from}->{to} ok after {} retries",
                        self.now, attempt
                    ));
                }
                return true;
            }
            m.dropped_messages += 1;
        }
        m.timeouts += 1;
        m.stall_steps += 1;
        self.log(format!("[{}] rpc {from}->{to} timeout ({limit} attempts)", self.now));
        false
    }

    /// A notification that is retried until it lands (the receiver is
    /// known to be up): wounds and grants. The network may duplicate it;
    /// the duplicate is enqueued and suppressed by the receiver's dedup
    /// window when it arrives.
    pub fn send_reliable(&mut self, from: SiteId, to: SiteId, label: &str, m: &mut DistMetrics) {
        if !self.active {
            return;
        }
        let seq = self.assign_seq(from, to);
        let drop_p = f64::from(self.plan.effective_drop_per_mille()) / 1000.0;
        let mut attempt = 0;
        while drop_p > 0.0 && attempt < RELIABLE_ATTEMPT_CAP && self.rng.gen_bool(drop_p) {
            attempt += 1;
            m.retries += 1;
            m.messages += 1;
            m.dropped_messages += 1;
        }
        self.mark_seen(from, to, seq);
        self.log(format!("[{}] {label} {from}->{to} seq {seq} delivered", self.now));
        if self.roll_dup() {
            // The duplicate carries a dummy payload; the dedup window will
            // suppress it before the payload is ever looked at.
            let deliver_at = self.now + 1 + self.roll_delay();
            self.enqueue(
                from,
                to,
                seq,
                deliver_at,
                GraphUpdate { waiter: TxnId::new(0), entity: EntityId::new(0) },
            );
            self.log(format!("[{}] {label} {from}->{to} seq {seq} duplicated", self.now));
        }
    }

    /// A droppable, delayable, duplicable one-way message carrying a
    /// waits-for update. `Applied` means the caller should apply it
    /// synchronously; `Deferred` copies surface later from [`Network::poll`].
    pub fn send_async(
        &mut self,
        from: SiteId,
        to: SiteId,
        payload: GraphUpdate,
        m: &mut DistMetrics,
    ) -> AsyncOutcome {
        if !self.active {
            return AsyncOutcome::Applied;
        }
        if self.is_down(to) {
            self.log(format!("[{}] async {from}->{to} undeliverable (site down)", self.now));
            return AsyncOutcome::DestinationDown;
        }
        let seq = self.assign_seq(from, to);
        let drop_p = f64::from(self.plan.effective_drop_per_mille()) / 1000.0;
        if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
            m.dropped_messages += 1;
            self.log(format!("[{}] async {from}->{to} seq {seq} dropped", self.now));
            return AsyncOutcome::Dropped;
        }
        let delay = self.roll_delay();
        let dup = self.roll_dup();
        let outcome = if delay == 0 {
            self.mark_seen(from, to, seq);
            self.log(format!("[{}] async {from}->{to} seq {seq} applied", self.now));
            AsyncOutcome::Applied
        } else {
            self.enqueue(from, to, seq, self.now + delay, payload);
            self.log(format!("[{}] async {from}->{to} seq {seq} delayed {delay} ticks", self.now));
            AsyncOutcome::Deferred
        };
        if dup {
            let extra_delay = 1 + self.roll_delay();
            self.enqueue(from, to, seq, self.now + extra_delay, payload);
            self.log(format!("[{}] async {from}->{to} seq {seq} duplicated", self.now));
        }
        outcome
    }

    /// Drains every in-flight message due at or before the current tick,
    /// in `(deliver_at, send order)` order, after dedup filtering.
    /// Messages addressed to a currently-down site are discarded (the
    /// crash lost them; reconcile repairs the staleness).
    pub fn poll(&mut self, m: &mut DistMetrics) -> Vec<GraphUpdate> {
        if !self.active || self.queue.is_empty() {
            return Vec::new();
        }
        let now = self.now;
        let mut due: Vec<InFlight> = Vec::new();
        let mut rest: Vec<InFlight> = Vec::new();
        for msg in self.queue.drain(..) {
            if msg.deliver_at <= now {
                due.push(msg);
            } else {
                rest.push(msg);
            }
        }
        self.queue = rest;
        due.sort_by_key(|msg| (msg.deliver_at, msg.order));
        let mut out = Vec::new();
        for msg in due {
            if self.down.contains_key(&msg.channel.1) {
                m.dropped_messages += 1;
                self.log(format!(
                    "[{now}] deliver seq {} to site{} lost (site down)",
                    msg.seq, msg.channel.1
                ));
                continue;
            }
            let seen = self.seen.entry(msg.channel).or_default();
            if !seen.insert(msg.seq) {
                m.dups_suppressed += 1;
                self.log(format!(
                    "[{now}] deliver seq {} to site{} suppressed (duplicate)",
                    msg.seq, msg.channel.1
                ));
                continue;
            }
            Self::prune_seen(seen);
            self.log(format!("[{now}] deliver seq {} to site{}", msg.seq, msg.channel.1));
            out.push(msg.payload);
        }
        out
    }

    /// Appends a line to the bounded event trace.
    pub fn log(&mut self, line: String) {
        if self.trace.len() >= TRACE_CAP {
            self.trace_dropped += 1;
            return;
        }
        self.trace.push(line);
    }

    /// The retained event trace (the determinism artifact).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Trace lines discarded beyond the retention cap.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    fn assign_seq(&mut self, from: SiteId, to: SiteId) -> u64 {
        let c = self.next_seq.entry((from.raw(), to.raw())).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn mark_seen(&mut self, from: SiteId, to: SiteId, seq: u64) {
        let seen = self.seen.entry((from.raw(), to.raw())).or_default();
        seen.insert(seq);
        Self::prune_seen(seen);
    }

    fn prune_seen(seen: &mut BTreeSet<u64>) {
        if seen.len() > SEEN_HIGH {
            while seen.len() > SEEN_LOW {
                let oldest = *seen.iter().next().expect("non-empty");
                seen.remove(&oldest);
            }
        }
    }

    fn enqueue(&mut self, from: SiteId, to: SiteId, seq: u64, deliver_at: u64, p: GraphUpdate) {
        let order = self.send_order;
        self.send_order += 1;
        self.queue.push(InFlight {
            deliver_at,
            order,
            channel: (from.raw(), to.raw()),
            seq,
            payload: p,
        });
    }

    fn roll_delay(&mut self) -> u64 {
        if self.plan.delay_per_mille == 0 || self.plan.max_delay_ticks == 0 {
            return 0;
        }
        let p = f64::from(self.plan.delay_per_mille.min(1000)) / 1000.0;
        if self.rng.gen_bool(p) {
            self.rng.gen_range(1..=self.plan.max_delay_ticks)
        } else {
            0
        }
    }

    fn roll_dup(&mut self) -> bool {
        if self.plan.dup_per_mille == 0 {
            return false;
        }
        let p = f64::from(self.plan.dup_per_mille.min(1000)) / 1000.0;
        self.rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u16) -> SiteId {
        SiteId::new(i)
    }

    #[test]
    fn inactive_network_is_transparent() {
        let mut net = Network::inactive();
        let mut m = DistMetrics::default();
        assert!(!net.active());
        assert!(net.rpc(site(0), site(1), &mut m));
        net.send_reliable(site(0), site(1), "grant", &mut m);
        assert_eq!(net.send_async(site(0), site(1), gu(1, 0), &mut m), AsyncOutcome::Applied);
        assert_eq!(m, DistMetrics::default(), "no counters move without a plan");
        assert!(net.trace().is_empty());
    }

    fn gu(txn: u32, entity: u32) -> GraphUpdate {
        GraphUpdate { waiter: TxnId::new(txn), entity: EntityId::new(entity) }
    }

    #[test]
    fn certain_duplication_is_suppressed_by_the_dedup_window() {
        let mut plan = FaultPlan::none();
        plan.dup_per_mille = 1000;
        plan.delay_per_mille = 0;
        let mut net = Network::new(plan);
        let mut m = DistMetrics::default();
        // A reliably-sent grant is duplicated; the copy arrives next tick
        // and is suppressed by its sequence number.
        net.send_reliable(site(1), site(0), "grant", &mut m);
        net.tick();
        let delivered = net.poll(&mut m);
        assert!(delivered.is_empty());
        assert_eq!(m.dups_suppressed, 1);
    }

    #[test]
    fn delayed_messages_reorder_but_replay_identically() {
        let mut plan = FaultPlan::none();
        plan.delay_per_mille = 1000;
        plan.max_delay_ticks = 5;
        plan.seed = 7;
        let run = || {
            let mut net = Network::new(plan.clone());
            let mut m = DistMetrics::default();
            for i in 0..10 {
                let _ = net.send_async(site(1), site(0), gu(i, i), &mut m);
            }
            let mut order = Vec::new();
            for _ in 0..10 {
                net.tick();
                order.extend(net.poll(&mut m).into_iter().map(|p| p.waiter.raw()));
            }
            (order, net.trace().to_vec())
        };
        let (a_order, a_trace) = run();
        let (b_order, b_trace) = run();
        assert_eq!(a_order, b_order);
        assert_eq!(a_trace, b_trace, "same seed must replay byte-identically");
        assert_eq!(a_order.len(), 10, "delayed messages all arrive");
    }

    #[test]
    fn crash_and_restart_transitions_fire_in_order() {
        let mut plan = FaultPlan::none();
        plan.crashes = vec![CrashEvent { site: site(1), at_tick: 3, down_ticks: 4 }];
        let mut net = Network::new(plan);
        let mut m = DistMetrics::default();
        for _ in 0..2 {
            net.tick();
            assert!(net.due_transitions().is_empty());
        }
        net.tick(); // now = 3
        assert_eq!(net.due_transitions(), vec![Transition::Down(site(1))]);
        assert!(net.is_down(site(1)));
        assert!(!net.rpc(site(0), site(1), &mut m), "rpc to a dead site times out");
        assert_eq!(m.timeouts, 1);
        assert_eq!(net.next_event_tick(), Some(7));
        net.advance_to(7);
        assert_eq!(net.due_transitions(), vec![Transition::Up(site(1), 4)]);
        assert!(!net.is_down(site(1)));
        assert!(net.rpc(site(0), site(1), &mut m));
    }

    #[test]
    fn rpc_retries_then_times_out_under_heavy_loss() {
        let mut plan = FaultPlan::none();
        plan.drop_per_mille = 999;
        plan.rpc_retry_limit = 4;
        plan.seed = 1;
        let mut net = Network::new(plan);
        let mut m = DistMetrics::default();
        let mut timed_out = false;
        for _ in 0..50 {
            if !net.rpc(site(0), site(1), &mut m) {
                timed_out = true;
                break;
            }
        }
        assert!(timed_out, "999-permille loss must exhaust a 4-attempt budget quickly");
        assert!(m.retries > 0 && m.backoff_ticks > 0 && m.dropped_messages > 0);
    }

    #[test]
    fn messages_to_down_sites_are_lost_in_flight() {
        let mut plan = FaultPlan::none();
        plan.delay_per_mille = 1000;
        plan.max_delay_ticks = 3;
        plan.crashes = vec![CrashEvent { site: site(0), at_tick: 1, down_ticks: 10 }];
        let mut net = Network::new(plan);
        let mut m = DistMetrics::default();
        let out = net.send_async(site(1), site(0), gu(1, 0), &mut m);
        assert_eq!(out, AsyncOutcome::Deferred);
        net.tick();
        let _ = net.due_transitions(); // site 0 crashes
        for _ in 0..4 {
            net.tick();
            assert!(net.poll(&mut m).is_empty());
        }
        assert!(m.dropped_messages >= 1, "in-flight message died with the site");
    }
}
