//! # pr-dist — partial rollback in distributed systems (§3.3)
//!
//! "For distributed systems, in which transactions process data at a
//! number of different sites, the communications among sites required for
//! the maintenance of such global data may make it impractical … Various
//! methods, such as using timestamps or an a priori ordering of the sites
//! … have been proposed. These mechanisms in no way invalidate the
//! advantages of rolling a transaction back to the latest possible state
//! in which the conflict necessitating the rollback no longer exists."
//!
//! This crate builds the multi-site substrate the paper sketches: entities
//! are [partitioned](Partition) across sites, every remote interaction is
//! charged messages, and three deadlock-handling schemes — all combinable
//! with any rollback strategy — are implemented:
//!
//! * [`CrossSiteScheme::GlobalDetection`] — one coordinator maintains the
//!   full concurrency graph (the centralized method of §3, paying graph-
//!   maintenance messages on every wait);
//! * [`CrossSiteScheme::WoundWait`] — timestamp prevention, no detection
//!   at all: an older requester *wounds* (partially rolls back) younger
//!   holders just far enough to take the lock; a younger requester waits.
//!   Cycles are impossible because timestamps strictly increase along
//!   every wait arc;
//! * [`CrossSiteScheme::SiteOrdered`] — the paper's "a priori ordering of
//!   the sites": waiting is allowed only for entities at sites no lower
//!   than any currently held; violations are resolved by partially rolling
//!   the requester back to its latest state holding nothing above the
//!   requested site. Cross-site cycles become impossible, and same-site
//!   cycles are caught by purely *local* detection with the standard
//!   partial-rollback resolution.
//!
//! The experiments quantify §3.3's trade-off: prevention schemes save the
//! coordinator traffic but perform unnecessary rollbacks; partial rollback
//! shrinks the damage of every rollback under *every* scheme.

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod recovery;
pub mod site;

pub use engine::{CrossSiteScheme, DistConfig, DistributedSystem};
pub use fault::{CrashEvent, FaultPlan};
pub use metrics::DistMetrics;
pub use net::Network;
pub use site::{Partition, SiteId};
