//! Site-crash recovery for the distributed engine.
//!
//! When a site crashes it loses its volatile lock table; committed entity
//! values survive on stable storage (the standard §2 assumption). Recovery
//! has to restore three things without wedging any survivor:
//!
//! 1. **Transactions homed at the dead site** lose their workspaces and
//!    are aborted: queued waits are cancelled, every held lock is released
//!    (promoting waiters as usual), and nothing they wrote is published.
//! 2. **Lock grants on the dead site's entities** are expired. A survivor
//!    that can still roll back is *partially rolled back* just past the
//!    lost grant — exactly the paper's machinery, reused for recovery: the
//!    version stacks restore the survivor to its latest state in which it
//!    did not hold the vanished lock, and it re-acquires on its own when
//!    the site returns. A survivor already in its shrinking phase cannot
//!    roll back (2PL forbids it), so its grant is *reinstated* — the
//!    surviving site re-asserts the lock at the recovering site, which is
//!    sound because an expired slot has no holders to conflict with.
//! 3. **Waiters queued at the dead site** are unblocked without rollback:
//!    their program counters still point at the lock request, so they
//!    simply re-issue it (and stall on the down site until it restarts).
//!
//! If the crashed site is the `GlobalDetection` coordinator, the system
//! additionally enters degraded mode: new waits are tracked by site-local
//! fallback detection until the restart, when the global graph is rebuilt
//! from lock-table truth (`reconcile_graphs`).

use crate::engine::{CrossSiteScheme, DistributedSystem};
use crate::site::SiteId;
use pr_core::runtime::Phase;
use pr_core::EngineError;
use pr_graph::CandidateRollback;
use pr_lock::HeldLock;
use pr_model::{EntityId, TxnId};

impl DistributedSystem {
    /// Runs crash recovery for `site` at the current virtual tick.
    pub(crate) fn handle_crash(&mut self, site: SiteId) -> Result<(), EngineError> {
        self.metrics.crashes += 1;
        if self.config.scheme == CrossSiteScheme::GlobalDetection && site == SiteId::COORDINATOR {
            self.metrics.coordinator_outages += 1;
            self.degraded = true;
        }

        // Phase 1 — evict the dead site's lock slots wholesale, *before*
        // touching any transaction: releases performed while aborting
        // below must not promote waiters into grants on a dead site.
        let mut expired: Vec<(EntityId, HeldLock)> = Vec::new();
        for entity in self.table.entities() {
            if self.site_of(entity) != site {
                continue;
            }
            let (holders, waiters) = self.table.evict_entity(entity);
            for h in holders {
                expired.push((entity, h));
            }
            for w in waiters {
                self.unblock_waiter(w.txn, entity);
            }
        }

        // Phase 2 — abort every unsettled transaction homed at the site.
        let homed: Vec<TxnId> = self
            .txns
            .values()
            .filter(|rt| {
                self.home.get(&rt.id) == Some(&site)
                    && !matches!(rt.phase, Phase::Committed | Phase::Aborted)
            })
            .map(|rt| rt.id)
            .collect();
        for txn in homed {
            self.abort_for_crash(txn)?;
        }

        // Phase 3 — expire surviving transactions' grants at the site.
        for (entity, held) in expired {
            let Some(rt) = self.txns.get(&held.txn) else { continue };
            if matches!(rt.phase, Phase::Committed | Phase::Aborted) {
                continue; // aborted in phase 2
            }
            if !rt.held.contains(&entity) {
                continue; // an earlier recovery rollback already shed it
            }
            self.metrics.expired_grants += 1;
            if rt.rollbackable() {
                let ideal =
                    rt.lock_state_for(entity).expect("holder records a lock state for its entity");
                let target = rt.reachable_target(self.config.strategy, ideal);
                let cost = rt.cost_to_lock_state(target);
                let ideal_cost = rt.cost_to_lock_state(ideal);
                let conflict = rt.conflict_state_for(ideal);
                self.execute_rollback(CandidateRollback {
                    txn: held.txn,
                    target,
                    ideal,
                    cost,
                    conflict,
                })?;
                self.metrics.recovery_rollbacks += 1;
                self.metrics.recovery_states_lost += u64::from(cost);
                self.metrics.rollback_overshoot += u64::from(cost - ideal_cost);
            } else {
                // Shrinking phase: 2PL forbids rolling back, so the grant
                // is re-asserted at the recovering site instead. The slot
                // was just evicted, so only fellow reinstated (compatible,
                // shared) survivors can coexist in it.
                let txn = held.txn;
                self.table.reinstate(entity, held).map_err(pr_core::EngineError::from)?;
                self.txns.get_mut(&txn).expect("checked").held.insert(entity);
                self.charge_remote(txn, entity, 1); // re-assertion message
            }
        }
        Ok(())
    }

    /// Completes a site restart after `outage` ticks of downtime.
    pub(crate) fn handle_restart(&mut self, site: SiteId, outage: u64) -> Result<(), EngineError> {
        self.metrics.recoveries += 1;
        self.metrics.ttr_ticks += outage;
        if self.config.scheme == CrossSiteScheme::GlobalDetection && site == SiteId::COORDINATOR {
            // Coordinator is back: leave degraded mode and rebuild its
            // graph from lock-table truth, catching any cross-site cycle
            // that stayed invisible to the site-local fallbacks.
            self.degraded = false;
            self.reconcile_graphs()?;
        }
        Ok(())
    }

    /// Returns an evicted waiter to `Running` so it re-issues its request;
    /// no state is lost (partial rollback of cost zero, conceptually).
    fn unblock_waiter(&mut self, txn: TxnId, entity: EntityId) {
        for g in &mut self.graphs {
            g.clear_wait(txn);
        }
        if let Some(rt) = self.txns.get_mut(&txn) {
            if rt.phase == Phase::Blocked && rt.blocked_on == Some(entity) {
                rt.phase = Phase::Running;
                rt.blocked_on = None;
            }
        }
    }

    /// Aborts a transaction whose home site (and with it the workspace)
    /// is gone: total rollback with nothing published.
    fn abort_for_crash(&mut self, txn: TxnId) -> Result<(), EngineError> {
        if let Some(entity) = {
            let rt = self.txns.get(&txn).expect("caller filtered");
            (rt.phase == Phase::Blocked).then_some(rt.blocked_on).flatten()
        } {
            // The waited-on slot may itself have been evicted in phase 1.
            if self.table.waiting_on(txn, entity).is_some() {
                let granted = self.table.cancel_wait(txn, entity)?;
                self.process_grants(entity, granted)?;
                self.refresh_waiters(entity);
            }
        }
        for g in &mut self.graphs {
            g.clear_wait(txn);
        }
        let held: Vec<EntityId> = {
            let rt = self.txns.get(&txn).expect("checked");
            rt.held.iter().copied().collect()
        };
        for entity in held {
            // Grants at the crashed site itself were evicted in phase 1.
            if self.table.held_by(txn, entity).is_none() {
                continue;
            }
            let granted = self.table.release(txn, entity)?;
            self.process_grants(entity, granted)?;
            self.sync_entity(entity)?;
        }
        let rt = self.txns.get_mut(&txn).expect("checked");
        rt.held.clear();
        rt.phase = Phase::Aborted;
        rt.blocked_on = None;
        self.metrics.crash_aborts += 1;
        Ok(())
    }
}
