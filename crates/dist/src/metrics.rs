//! Distributed-system metrics: everything the single-site engine counts,
//! plus the §3.3 quantities — messages and per-scheme rollback causes.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::DistributedSystem`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistMetrics {
    /// Atomic operations completed.
    pub ops_executed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Inter-site messages: remote lock/unlock traffic, coordinator graph
    /// maintenance (global detection), wound notifications.
    pub messages: u64,
    /// Deadlocks detected by a (global or per-site) graph.
    pub detected_deadlocks: u64,
    /// Rollbacks performed to break detected deadlocks.
    pub detection_rollbacks: u64,
    /// Wounds performed (wound-wait prevention).
    pub wounds: u64,
    /// Site-order violations resolved by rolling the requester back.
    pub order_violations: u64,
    /// States lost across all rollbacks (the paper's damage measure).
    pub states_lost: u64,
    /// States lost beyond ideal targets (strategy overshoot).
    pub rollback_overshoot: u64,
    /// Wait responses issued.
    pub waits: u64,
}

impl DistMetrics {
    /// All rollbacks of any cause.
    pub fn rollbacks(&self) -> u64 {
        self.detection_rollbacks + self.wounds + self.order_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollbacks_sums_causes() {
        let m = DistMetrics {
            detection_rollbacks: 2,
            wounds: 3,
            order_violations: 4,
            ..Default::default()
        };
        assert_eq!(m.rollbacks(), 9);
    }
}
