//! Distributed-system metrics: everything the single-site engine counts,
//! plus the §3.3 quantities — messages and per-scheme rollback causes.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`crate::DistributedSystem`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistMetrics {
    /// Atomic operations completed.
    pub ops_executed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Inter-site messages: remote lock/unlock traffic, coordinator graph
    /// maintenance (global detection), wound notifications.
    pub messages: u64,
    /// Deadlocks detected by a (global or per-site) graph.
    pub detected_deadlocks: u64,
    /// Rollbacks performed to break detected deadlocks.
    pub detection_rollbacks: u64,
    /// Wounds performed (wound-wait prevention).
    pub wounds: u64,
    /// Site-order violations resolved by rolling the requester back.
    pub order_violations: u64,
    /// States lost across all rollbacks (the paper's damage measure).
    pub states_lost: u64,
    /// States lost beyond ideal targets (strategy overshoot).
    pub rollback_overshoot: u64,
    /// Wait responses issued.
    pub waits: u64,
    /// Request attempts beyond the first (fault injection only).
    pub retries: u64,
    /// Requests that exhausted their retry budget and stalled the caller.
    pub timeouts: u64,
    /// Scheduling slots burned by transactions stalled on a timed-out or
    /// down-site request.
    pub stall_steps: u64,
    /// Messages lost in transit (dropped by the plan, or addressed to a
    /// site that was down at delivery time).
    pub dropped_messages: u64,
    /// Duplicate deliveries recognized by sequence number and discarded.
    pub dups_suppressed: u64,
    /// Asynchronous graph updates that arrived after their wait had
    /// already resolved, and were discarded as stale.
    pub stale_updates_discarded: u64,
    /// Virtual ticks spent in exponential backoff between attempts.
    pub backoff_ticks: u64,
    /// Deadlocks found by the site-local fallback detector while the
    /// coordinator was unreachable.
    pub local_fallback_detections: u64,
    /// Times the waits-for graphs were rebuilt from lock-table truth
    /// (coordinator recovery, or the run-loop backstop after message loss).
    pub reconciliations: u64,
    /// Site crashes injected.
    pub crashes: u64,
    /// Transactions aborted because their home site crashed.
    pub crash_aborts: u64,
    /// Lock grants expired because their entity's site crashed.
    pub expired_grants: u64,
    /// Partial rollbacks performed to carry survivors past lost lock state.
    pub recovery_rollbacks: u64,
    /// States lost to recovery rollbacks (included in `states_lost`).
    pub recovery_states_lost: u64,
    /// Site restarts completed.
    pub recoveries: u64,
    /// Total ticks from crash to restart, summed over recoveries
    /// (time-to-recover; divide by `recoveries` for the mean).
    pub ttr_ticks: u64,
    /// Coordinator crashes that forced `GlobalDetection` into degraded,
    /// site-local fallback mode.
    pub coordinator_outages: u64,
}

impl DistMetrics {
    /// All rollbacks of any cause.
    pub fn rollbacks(&self) -> u64 {
        self.detection_rollbacks + self.wounds + self.order_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollbacks_sums_causes() {
        let m = DistMetrics {
            detection_rollbacks: 2,
            wounds: 3,
            order_violations: 4,
            ..Default::default()
        };
        assert_eq!(m.rollbacks(), 9);
    }
}
