//! The distributed execution engine (§3.3).
//!
//! Shares the transaction runtime, lock semantics, rollback strategies and
//! victim machinery with `pr-core`, but distributes deadlock handling:
//! entities live at sites, remote interactions cost messages, and the
//! cross-site scheme decides between detection and prevention.

use crate::fault::FaultPlan;
use crate::metrics::DistMetrics;
use crate::net::{AsyncOutcome, GraphUpdate, Network, Transition};
use crate::site::{Partition, SiteId};
use pr_core::deadlock::{plan_resolution, DeadlockEvent};
use pr_core::runtime::{Phase, TxnRuntime};
use pr_core::scheduler::Scheduler;
use pr_core::{EngineError, StrategyKind, SystemConfig, VictimPolicyKind};
use pr_graph::cycles::cycles_on_wait;
use pr_graph::{CandidateRollback, WaitsForGraph};
use pr_lock::{HeldLock, LockTable, RequestOutcome};
use pr_model::{EntityId, LockIndex, LockMode, Op, TransactionProgram, TxnId};
use pr_storage::GlobalStore;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How cross-site deadlocks are kept at bay (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrossSiteScheme {
    /// One coordinator (site 0) maintains the complete concurrency graph;
    /// every wait registered from another site costs a message. Detection
    /// and min-cost resolution work exactly as in the centralized system.
    GlobalDetection,
    /// Timestamp prevention: an older requester *wounds* (partially rolls
    /// back) every younger incompatible holder just past the contested
    /// entity's lock state; a younger requester waits. Timestamps
    /// strictly increase along every wait arc, so no cycle can ever form
    /// and no detection machinery is needed.
    WoundWait,
    /// The paper's "a priori ordering of the sites": a transaction may
    /// wait only for an entity whose site is ≥ every site it currently
    /// holds entities at. Violations partially roll the requester back to
    /// its latest state holding nothing above the requested site. Any
    /// remaining cycle is confined to a single site and caught by that
    /// site's local graph.
    SiteOrdered,
}

impl CrossSiteScheme {
    /// All schemes, for sweeps.
    pub const ALL: [CrossSiteScheme; 3] = [
        CrossSiteScheme::GlobalDetection,
        CrossSiteScheme::WoundWait,
        CrossSiteScheme::SiteOrdered,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CrossSiteScheme::GlobalDetection => "global-detection",
            CrossSiteScheme::WoundWait => "wound-wait",
            CrossSiteScheme::SiteOrdered => "site-ordered",
        }
    }
}

/// Distributed system configuration.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Entity placement.
    pub partition: Partition,
    /// Cross-site deadlock scheme.
    pub scheme: CrossSiteScheme,
    /// Rollback strategy (shared with the single-site engine).
    pub strategy: StrategyKind,
    /// Victim policy for detection-based resolution.
    pub victim: VictimPolicyKind,
    /// Step limit for `run`.
    pub max_steps: u64,
}

impl DistConfig {
    /// A configuration over `sites` round-robin sites.
    pub fn new(sites: u16, scheme: CrossSiteScheme, strategy: StrategyKind) -> Self {
        DistConfig {
            partition: Partition::RoundRobin { sites },
            scheme,
            strategy,
            victim: VictimPolicyKind::PartialOrder,
            max_steps: 10_000_000,
        }
    }

    fn engine_config(&self) -> SystemConfig {
        let mut c = SystemConfig::new(self.strategy, self.victim);
        c.max_steps = self.max_steps;
        c
    }
}

/// A multi-site database system.
pub struct DistributedSystem {
    pub(crate) store: GlobalStore,
    pub(crate) table: LockTable,
    /// One graph per site under `SiteOrdered` (indexed by entity site);
    /// `graphs[0]` is the coordinator's graph otherwise.
    pub(crate) graphs: Vec<WaitsForGraph>,
    /// Per-site fallback graphs for `GlobalDetection` while the
    /// coordinator is unreachable. Rebuilt from lock-table truth right
    /// before each use, so they never carry stale arcs.
    pub(crate) fallback: Vec<WaitsForGraph>,
    pub(crate) txns: BTreeMap<TxnId, TxnRuntime>,
    pub(crate) home: BTreeMap<TxnId, SiteId>,
    pub(crate) config: DistConfig,
    pub(crate) metrics: DistMetrics,
    pub(crate) net: Network,
    /// `GlobalDetection` only: the coordinator is down and waits are being
    /// tracked site-locally until it returns.
    pub(crate) degraded: bool,
    /// Next tick at which the coordinator refreshes its graph from
    /// lock-table truth (fault injection + `GlobalDetection` only).
    next_reconcile_at: u64,
    next_txn: u32,
    entry_counter: u64,
}

/// Anti-entropy cadence for the coordinator graph under fault injection.
/// Dropped graph-maintenance messages can hide a cycle from the
/// coordinator indefinitely while unrelated transactions keep the system
/// busy (so the quiescence backstop never fires); a periodic rebuild from
/// lock-table truth bounds how long any cycle stays invisible.
const RECONCILE_INTERVAL_TICKS: u64 = 512;

impl DistributedSystem {
    /// Creates a system over `store` with a perfect network and immortal
    /// sites.
    pub fn new(store: GlobalStore, config: DistConfig) -> Self {
        Self::with_faults(store, config, FaultPlan::none())
    }

    /// Creates a system whose network and sites fail per `plan`. An
    /// inactive plan (no faults) is exactly [`DistributedSystem::new`].
    pub fn with_faults(store: GlobalStore, config: DistConfig, plan: FaultPlan) -> Self {
        let sites = config.partition.sites() as usize;
        let graphs = match config.scheme {
            CrossSiteScheme::SiteOrdered => vec![WaitsForGraph::new(); sites],
            _ => vec![WaitsForGraph::new()],
        };
        let net = Network::new(plan);
        let fallback = if net.active() && config.scheme == CrossSiteScheme::GlobalDetection {
            vec![WaitsForGraph::new(); sites]
        } else {
            Vec::new()
        };
        DistributedSystem {
            store,
            table: LockTable::new(),
            graphs,
            fallback,
            txns: BTreeMap::new(),
            home: BTreeMap::new(),
            config,
            metrics: DistMetrics::default(),
            net,
            degraded: false,
            next_reconcile_at: RECONCILE_INTERVAL_TICKS,
            next_txn: 1,
            entry_counter: 0,
        }
    }

    /// Admits a program; the transaction's home site is the site of its
    /// first locked entity (where it originates).
    pub fn admit(&mut self, program: TransactionProgram) -> Result<TxnId, EngineError> {
        pr_model::validate::validate(&program)
            .map_err(|_| EngineError::NotRunnable(TxnId::new(self.next_txn)))?;
        for entity in program.locked_entities() {
            self.store.ensure(entity);
        }
        let home = program
            .locked_entities()
            .first()
            .map(|&e| self.config.partition.site_of(e))
            .unwrap_or(SiteId::COORDINATOR);
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let entry = self.entry_counter;
        self.entry_counter += 1;
        self.txns.insert(id, TxnRuntime::new(id, Arc::new(program), entry, self.config.strategy));
        self.home.insert(id, home);
        Ok(id)
    }

    pub(crate) fn site_of(&self, entity: EntityId) -> SiteId {
        self.config.partition.site_of(entity)
    }

    pub(crate) fn home_of(&self, txn: TxnId) -> SiteId {
        self.home.get(&txn).copied().unwrap_or(SiteId::COORDINATOR)
    }

    pub(crate) fn graph_index(&self, entity: EntityId) -> usize {
        match self.config.scheme {
            CrossSiteScheme::SiteOrdered => usize::from(self.site_of(entity).raw()),
            _ => 0,
        }
    }

    pub(crate) fn charge_remote(&mut self, txn: TxnId, entity: EntityId, msgs: u64) {
        if self.site_of(entity) != self.home_of(txn) {
            self.metrics.messages += msgs;
        }
    }

    /// A request/response exchange between `txn`'s home site and
    /// `entity`'s site. `true` means it got through (always, without a
    /// fault plan); `false` means the caller must stall without advancing
    /// the transaction — the operation is retried the next time the
    /// transaction is scheduled.
    fn remote_rpc(&mut self, txn: TxnId, entity: EntityId) -> bool {
        let from = self.home_of(txn);
        let to = self.site_of(entity);
        if from == to && !self.net.is_down(to) {
            return true;
        }
        self.net.rpc(from, to, &mut self.metrics)
    }

    /// Ready transactions.
    pub fn ready(&self) -> Vec<TxnId> {
        self.txns.values().filter(|rt| rt.phase == Phase::Running).map(|rt| rt.id).collect()
    }

    /// Whether every transaction committed.
    pub fn all_committed(&self) -> bool {
        self.txns.values().all(|rt| rt.phase == Phase::Committed)
    }

    /// Whether every transaction reached a terminal phase — committed, or
    /// cleanly aborted by crash recovery. This is the no-wedge invariant's
    /// success condition under fault injection.
    pub fn all_settled(&self) -> bool {
        self.txns.values().all(|rt| matches!(rt.phase, Phase::Committed | Phase::Aborted))
    }

    /// Runs under `scheduler` until every transaction settles.
    pub fn run<S: Scheduler>(&mut self, scheduler: &mut S) -> Result<(), EngineError> {
        let mut steps = 0u64;
        // Whether a reconcile has been tried since the last real progress;
        // a second consecutive fruitless reconcile means a genuine wedge.
        let mut reconciled = false;
        loop {
            let ready = self.ready();
            if ready.is_empty() {
                if self.all_settled() {
                    return Ok(());
                }
                if self.net.active() {
                    // Nothing is runnable but the network still owes us
                    // events (a restart, a delayed delivery): fast-forward
                    // the virtual clock to the next one.
                    if let Some(tick) = self.net.next_event_tick() {
                        self.net.advance_to(tick);
                        self.process_network_events()?;
                        continue;
                    }
                    // No future events either: lost messages may have left
                    // a graph blind to a real cycle. Rebuild from lock-
                    // table truth and re-run detection once.
                    if !reconciled {
                        reconciled = true;
                        self.reconcile_graphs()?;
                        continue;
                    }
                }
                return Err(EngineError::Stuck {
                    blocked: self
                        .txns
                        .values()
                        .filter(|rt| rt.phase == Phase::Blocked)
                        .map(|rt| rt.id)
                        .collect(),
                });
            }
            reconciled = false;
            steps += 1;
            if steps > self.config.max_steps {
                return Err(EngineError::StepLimitExceeded { limit: self.config.max_steps });
            }
            let pick = scheduler.pick(&ready);
            self.step(pick)?;
        }
    }

    /// Executes one atomic operation of `id`.
    ///
    /// Under a fault plan each step is also one tick of the virtual clock:
    /// due crashes, restarts, and delayed deliveries are processed first,
    /// and may abort or roll back the picked transaction — in that case
    /// the step is consumed as a no-op rather than an error.
    pub fn step(&mut self, id: TxnId) -> Result<(), EngineError> {
        if self.net.active() {
            self.net.tick();
            self.process_network_events()?;
        }
        let rt = self.txns.get(&id).ok_or(EngineError::NoSuchTxn(id))?;
        if rt.phase != Phase::Running {
            if self.net.active() {
                return Ok(()); // consumed by a fault processed this tick
            }
            return Err(EngineError::NotRunnable(id));
        }
        let op = rt.program.op(rt.pc).cloned().ok_or(EngineError::NotRunnable(id))?;
        match op {
            Op::LockShared(e) => self.do_lock(id, e, LockMode::Shared),
            Op::LockExclusive(e) => self.do_lock(id, e, LockMode::Exclusive),
            Op::Unlock(e) => self.do_unlock(id, e),
            Op::Read { entity, into } => {
                if self.net.active() && !self.remote_rpc(id, entity) {
                    return Ok(()); // fetch timed out; retry when rescheduled
                }
                let global = self.store.read(entity)?;
                let rt = self.txns.get_mut(&id).expect("checked");
                let value = rt.read_entity(entity, global);
                rt.assign_var(into, value)?;
                self.charge_remote(id, entity, 1); // remote read fetch
                self.metrics.ops_executed += 1;
                Ok(())
            }
            Op::Write { entity, expr } => {
                let rt = self.txns.get_mut(&id).expect("checked");
                let value = expr.eval(rt.workspace.vars());
                rt.write_entity(entity, value)?;
                self.metrics.ops_executed += 1;
                Ok(())
            }
            Op::Assign { var, expr } => {
                let rt = self.txns.get_mut(&id).expect("checked");
                let value = expr.eval(rt.workspace.vars());
                rt.assign_var(var, value)?;
                self.metrics.ops_executed += 1;
                Ok(())
            }
            Op::Compute(expr) => {
                let rt = self.txns.get_mut(&id).expect("checked");
                let _ = expr.eval(rt.workspace.vars());
                rt.advance();
                self.metrics.ops_executed += 1;
                Ok(())
            }
            Op::Commit => self.do_commit(id),
        }
    }

    fn do_lock(&mut self, id: TxnId, entity: EntityId, mode: LockMode) -> Result<(), EngineError> {
        // The request must first reach the entity's site at all: a dead
        // site or an exhausted retry budget stalls the requester (it
        // re-issues the request on its next scheduling slot).
        if self.net.active() && !self.remote_rpc(id, entity) {
            return Ok(());
        }
        // Site-order rule is checked before the request is even sent.
        if self.config.scheme == CrossSiteScheme::SiteOrdered {
            let s = self.site_of(entity);
            let rt = self.txns.get(&id).expect("checked");
            let violation = rt
                .lock_states
                .iter()
                .position(|ls| self.site_of(ls.entity) > s && rt.held.contains(&ls.entity));
            if let Some(first_bad) = violation {
                // Only an actual wait violates the ordering argument; probe
                // whether the lock would be granted outright.
                let holders = self.table.holder_records(entity);
                let must_wait =
                    holders.iter().any(|h| h.txn != id && !mode.compatible_with(h.mode));
                if must_wait {
                    // Tie-break by entry order so mutual violators cannot
                    // preempt each other forever (the Theorem 2 argument):
                    // the oldest requester wounds the younger holders out
                    // of its way and acquires in the same step; a younger
                    // requester yields by releasing everything. The loop
                    // is needed because each wound's releases may promote
                    // queued waiters into fresh holders.
                    self.metrics.order_violations += 1;
                    let my_key = self.wound_key(rt);
                    let ideal = LockIndex::new(first_bad as u32);
                    loop {
                        let blockers: Vec<TxnId> = self
                            .table
                            .holder_records(entity)
                            .into_iter()
                            .filter(|h| h.txn != id && !mode.compatible_with(h.mode))
                            .map(|h| h.txn)
                            .collect();
                        if blockers.is_empty() {
                            let (state, lock_index) = {
                                let rt = self.txns.get(&id).expect("checked");
                                (rt.state, rt.lock_index())
                            };
                            self.charge_remote(id, entity, 2);
                            match self.table.request(id, entity, mode, state, lock_index)? {
                                RequestOutcome::Granted => {
                                    self.finalize_grant(id, entity, mode)?;
                                    self.sync_entity(entity)?;
                                }
                                RequestOutcome::Wait { .. } => {
                                    unreachable!("no incompatible holders remain")
                                }
                            }
                            return Ok(());
                        }
                        // "Younger" must mean the same thing here as in
                        // the wound routine (the *skewed* key), or a
                        // holder judged woundable would be skipped by the
                        // wound and this loop would never terminate.
                        let all_younger = blockers.iter().all(|t| {
                            self.txns.get(t).is_some_and(|hrt| {
                                self.wound_key(hrt) > my_key && hrt.rollbackable()
                            })
                        });
                        if !all_younger {
                            // Yield: release *everything*. Dropping only
                            // the high-site holdings is not enough — the
                            // older holder may be waiting on a low-site
                            // lock we would keep (a cross-site cycle in
                            // disguise).
                            let rt = self.txns.get(&id).expect("checked");
                            let target = LockIndex::ZERO;
                            let cost = rt.cost_to_lock_state(target);
                            let ideal_cost = rt.cost_to_lock_state(ideal);
                            let conflict = rt.conflict_state_for(ideal);
                            self.execute_rollback(CandidateRollback {
                                txn: id,
                                target,
                                ideal,
                                cost,
                                conflict,
                            })?;
                            self.metrics.rollback_overshoot += u64::from(cost - ideal_cost);
                            return Ok(());
                        }
                        self.wound_younger_holders(id, entity, &blockers)?;
                    }
                }
            }
        }

        let (state, lock_index) = {
            let rt = self.txns.get(&id).expect("checked");
            (rt.state, rt.lock_index())
        };
        self.charge_remote(id, entity, 2); // request + response
        let outcome = self.table.request(id, entity, mode, state, lock_index)?;
        match outcome {
            RequestOutcome::Granted => {
                self.finalize_grant(id, entity, mode)?;
                self.sync_entity(entity)?;
                Ok(())
            }
            RequestOutcome::Wait { holders, .. } => {
                {
                    let rt = self.txns.get_mut(&id).expect("checked");
                    rt.phase = Phase::Blocked;
                    rt.blocked_on = Some(entity);
                }
                self.metrics.waits += 1;
                if self.config.scheme == CrossSiteScheme::WoundWait {
                    let gi = self.graph_index(entity);
                    self.graphs[gi].set_wait(id, entity, &holders);
                    return self.wound_younger_holders(id, entity, &holders);
                }
                if self.config.scheme == CrossSiteScheme::GlobalDetection
                    && self.net.active()
                    && self.home_of(id) != SiteId::COORDINATOR
                {
                    // The coordinator learns of this wait by message; the
                    // message is subject to the fault plan.
                    self.metrics.messages += 1;
                    let update = GraphUpdate { waiter: id, entity };
                    let (from, to) = (self.home_of(id), SiteId::COORDINATOR);
                    return match self.net.send_async(from, to, update, &mut self.metrics) {
                        AsyncOutcome::Applied => {
                            self.graphs[0].set_wait(id, entity, &holders);
                            self.resolve_cycles_in(0, id, entity)
                        }
                        AsyncOutcome::Deferred => Ok(()), // arrives via poll
                        AsyncOutcome::Dropped => Ok(()),  // reconcile repairs
                        AsyncOutcome::DestinationDown => self.local_fallback(id, entity),
                    };
                }
                let gi = self.graph_index(entity);
                self.graphs[gi].set_wait(id, entity, &holders);
                if self.config.scheme == CrossSiteScheme::GlobalDetection
                    && self.home_of(id) != SiteId::COORDINATOR
                {
                    self.metrics.messages += 1; // graph maintenance
                }
                self.resolve_cycles_in(gi, id, entity)
            }
        }
    }

    /// The WoundWait age key of a transaction: its admission timestamp
    /// shifted by its home site's clock skew, with the true entry order as
    /// a tie-break. The skewed values remain a *total* order, so Theorem
    /// 2's liveness argument survives arbitrary skew — what skew changes
    /// is *which* transaction looks older, i.e. who gets wounded.
    pub(crate) fn wound_key(&self, rt: &TxnRuntime) -> (i64, u64) {
        let skew = self.net.plan().skew_of(self.home_of(rt.id));
        (rt.entry_order as i64 + skew, rt.entry_order)
    }

    /// Wound-wait: partially roll back every incompatible holder younger
    /// than the requester, just past the contested entity's lock state.
    fn wound_younger_holders(
        &mut self,
        requester: TxnId,
        entity: EntityId,
        holders: &[TxnId],
    ) -> Result<(), EngineError> {
        let my_key = self.wound_key(self.txns.get(&requester).expect("checked"));
        for &h in holders {
            let Some(hrt) = self.txns.get(&h) else { continue };
            if self.wound_key(hrt) <= my_key || !hrt.rollbackable() {
                continue; // older (or unwoundable) holder: we wait
            }
            let Some(ideal) = hrt.lock_state_for(entity) else { continue };
            let target = hrt.reachable_target(self.config.strategy, ideal);
            let cost = hrt.cost_to_lock_state(target);
            let ideal_cost = hrt.cost_to_lock_state(ideal);
            let conflict = hrt.conflict_state_for(ideal);
            self.execute_rollback(CandidateRollback { txn: h, target, ideal, cost, conflict })?;
            self.metrics.wounds += 1;
            self.metrics.rollback_overshoot += u64::from(cost - ideal_cost);
            self.charge_remote(h, entity, 1); // wound notification
            if self.net.active() {
                let (from, to) = (self.site_of(entity), self.home_of(h));
                self.net.send_reliable(from, to, "wound", &mut self.metrics);
            }
        }
        Ok(())
    }

    /// Detection-based resolution in graph `gi` (the global graph, a
    /// per-site graph under `SiteOrdered`, or a coordinator-outage
    /// fallback graph), mirroring the single-site engine's loop.
    pub(crate) fn resolve_cycles_in(
        &mut self,
        gi: usize,
        causer: TxnId,
        entity: EntityId,
    ) -> Result<(), EngineError> {
        for round in 0..1024 {
            let rt = self.txns.get(&causer).expect("checked");
            if rt.phase != Phase::Blocked {
                return Ok(());
            }
            let Some(mode) = self.table.waiting_on(causer, entity).map(|w| w.mode) else {
                return Ok(());
            };
            let holders: Vec<TxnId> = self
                .table
                .holder_records(entity)
                .into_iter()
                .filter(|h| h.txn != causer && !mode.compatible_with(h.mode))
                .map(|h| h.txn)
                .collect();
            self.graphs[gi].clear_wait(causer);
            let cycles = cycles_on_wait(&self.graphs[gi], causer, entity, &holders, 64);
            self.graphs[gi].set_wait(causer, entity, &holders);
            if cycles.is_empty() {
                return Ok(());
            }
            self.metrics.detected_deadlocks += 1;
            let event = DeadlockEvent { causer, entity, cycles };
            let plan = plan_resolution(&event, &self.config.engine_config(), &self.txns);
            if plan.rollbacks.is_empty() {
                break;
            }
            for rb in &plan.rollbacks {
                self.execute_rollback(*rb)?;
                self.metrics.detection_rollbacks += 1;
            }
            let _ = round;
        }
        Err(EngineError::Stuck { blocked: vec![causer] })
    }

    pub(crate) fn execute_rollback(&mut self, rb: CandidateRollback) -> Result<(), EngineError> {
        let victim = rb.txn;
        let blocked_entity = {
            let rt = self.txns.get(&victim).ok_or(EngineError::NoSuchTxn(victim))?;
            (rt.phase == Phase::Blocked).then(|| rt.blocked_on.expect("blocked records entity"))
        };
        if let Some(entity) = blocked_entity {
            let granted = self.table.cancel_wait(victim, entity)?;
            let gi = self.graph_index(entity);
            self.graphs[gi].clear_wait(victim);
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
        }
        let (released, cost) = {
            let rt = self.txns.get_mut(&victim).expect("checked");
            let target = rb.target.min(rt.lock_index());
            let cost = rt.cost_to_lock_state(target);
            (rt.rollback_to(target)?, cost)
        };
        self.metrics.states_lost += u64::from(cost);
        for ls in released {
            // A nested wound triggered by an earlier release in this loop
            // may already have rolled the victim further and released this
            // entity; the lock table is the source of truth.
            if self.table.held_by(victim, ls.entity).is_none() {
                continue;
            }
            self.charge_remote(victim, ls.entity, 1);
            let granted = self.table.release(victim, ls.entity)?;
            self.process_grants(ls.entity, granted)?;
            self.sync_entity(ls.entity)?;
        }
        Ok(())
    }

    fn do_unlock(&mut self, id: TxnId, entity: EntityId) -> Result<(), EngineError> {
        if self.net.active() && !self.remote_rpc(id, entity) {
            return Ok(()); // unlock could not reach the entity's site yet
        }
        let published = {
            let rt = self.txns.get_mut(&id).expect("checked");
            rt.complete_unlock(entity)
        };
        if let Some(v) = published {
            self.store.publish(entity, v)?;
        }
        self.charge_remote(id, entity, 1);
        let granted = self.table.release(id, entity)?;
        self.process_grants(entity, granted)?;
        self.sync_entity(entity)?;
        self.metrics.ops_executed += 1;
        Ok(())
    }

    fn do_commit(&mut self, id: TxnId) -> Result<(), EngineError> {
        let held: Vec<EntityId> = {
            let rt = self.txns.get(&id).expect("checked");
            rt.held.iter().copied().collect()
        };
        for entity in held {
            // Commit releases one entity per iteration and is re-entrant:
            // if a site is unreachable the step returns with the remaining
            // entities still held, and the next scheduling slot resumes
            // exactly here.
            if self.net.active() && !self.remote_rpc(id, entity) {
                return Ok(());
            }
            let published = {
                let rt = self.txns.get_mut(&id).expect("checked");
                let v = rt.complete_unlock(entity);
                rt.pc -= 1;
                rt.state = pr_model::StateIndex::new(rt.state.raw() - 1);
                v
            };
            if let Some(v) = published {
                self.store.publish(entity, v)?;
            }
            self.charge_remote(id, entity, 1);
            let granted = self.table.release(id, entity)?;
            self.process_grants(entity, granted)?;
            self.sync_entity(entity)?;
        }
        let rt = self.txns.get_mut(&id).expect("checked");
        rt.advance();
        rt.phase = Phase::Committed;
        self.metrics.ops_executed += 1;
        self.metrics.commits += 1;
        Ok(())
    }

    fn finalize_grant(
        &mut self,
        id: TxnId,
        entity: EntityId,
        mode: LockMode,
    ) -> Result<(), EngineError> {
        let global = self.store.read(entity)?;
        let rt = self.txns.get_mut(&id).expect("grantee exists");
        rt.complete_lock(entity, mode, global);
        self.metrics.ops_executed += 1;
        Ok(())
    }

    pub(crate) fn process_grants(
        &mut self,
        entity: EntityId,
        granted: Vec<HeldLock>,
    ) -> Result<(), EngineError> {
        let gi = self.graph_index(entity);
        for h in granted {
            self.graphs[gi].clear_wait(h.txn);
            self.finalize_grant(h.txn, entity, h.mode)?;
            // A remote grantee learns of its grant by a reliable (possibly
            // duplicated, dedup-suppressed) notification.
            if self.net.active() {
                let (from, to) = (self.site_of(entity), self.home_of(h.txn));
                if from != to {
                    self.metrics.messages += 1;
                    self.net.send_reliable(from, to, "grant", &mut self.metrics);
                }
            }
        }
        Ok(())
    }

    /// Refreshes waiter arcs and re-applies the wound-wait rule: a newly
    /// granted *younger* holder must not keep an older waiter waiting, or
    /// the timestamp invariant (waits only run young → old) breaks and an
    /// undetectable cycle could form.
    pub(crate) fn sync_entity(&mut self, entity: EntityId) -> Result<(), EngineError> {
        self.refresh_waiters(entity);
        if self.config.scheme != CrossSiteScheme::WoundWait {
            return Ok(());
        }
        loop {
            let holders = self.table.holder_records(entity);
            let mut wound: Option<CandidateRollback> = None;
            'outer: for w in self.table.waiters_of(entity) {
                let w_key = match self.txns.get(&w.txn) {
                    Some(rt) => self.wound_key(rt),
                    None => continue,
                };
                for h in &holders {
                    if h.txn == w.txn || w.mode.compatible_with(h.mode) {
                        continue;
                    }
                    let Some(hrt) = self.txns.get(&h.txn) else { continue };
                    if self.wound_key(hrt) > w_key && hrt.rollbackable() {
                        let Some(ideal) = hrt.lock_state_for(entity) else { continue };
                        let target = hrt.reachable_target(self.config.strategy, ideal);
                        let cost = hrt.cost_to_lock_state(target);
                        let conflict = hrt.conflict_state_for(ideal);
                        wound =
                            Some(CandidateRollback { txn: h.txn, target, ideal, cost, conflict });
                        break 'outer;
                    }
                }
            }
            let Some(rb) = wound else { return Ok(()) };
            let ideal_cost = self.txns.get(&rb.txn).expect("checked").cost_to_lock_state(rb.ideal);
            self.execute_rollback(rb)?;
            self.metrics.wounds += 1;
            self.metrics.rollback_overshoot += u64::from(rb.cost - ideal_cost);
            self.charge_remote(rb.txn, entity, 1);
            self.refresh_waiters(entity);
        }
    }

    pub(crate) fn refresh_waiters(&mut self, entity: EntityId) {
        let gi = self.graph_index(entity);
        let holders = self.table.holder_records(entity);
        for w in self.table.waiters_of(entity) {
            let blockers: Vec<TxnId> = holders
                .iter()
                .filter(|h| h.txn != w.txn && !w.mode.compatible_with(h.mode))
                .map(|h| h.txn)
                .collect();
            self.graphs[gi].set_wait(w.txn, entity, &blockers);
        }
    }

    /// Processes every network event due at the current tick: site
    /// crashes (run recovery), restarts (reconcile), and delayed graph
    /// updates (apply + detect).
    pub(crate) fn process_network_events(&mut self) -> Result<(), EngineError> {
        for t in self.net.due_transitions() {
            match t {
                Transition::Down(site) => self.handle_crash(site)?,
                Transition::Up(site, outage) => self.handle_restart(site, outage)?,
            }
        }
        for update in self.net.poll(&mut self.metrics) {
            self.apply_graph_update(update)?;
        }
        if self.config.scheme == CrossSiteScheme::GlobalDetection
            && !self.degraded
            && self.net.now() >= self.next_reconcile_at
        {
            self.next_reconcile_at = self.net.now() + RECONCILE_INTERVAL_TICKS;
            self.reconcile_graphs()?;
        }
        Ok(())
    }

    /// Applies a (possibly late, possibly reordered) waits-for update at
    /// the coordinator. The carried snapshot is ignored in favour of
    /// current lock-table truth — together with per-channel sequence
    /// numbers this is what makes reordered updates harmless; an update
    /// whose waiter has since moved on is discarded as stale.
    fn apply_graph_update(&mut self, u: GraphUpdate) -> Result<(), EngineError> {
        let still_blocked = self
            .txns
            .get(&u.waiter)
            .is_some_and(|rt| rt.phase == Phase::Blocked && rt.blocked_on == Some(u.entity));
        if !still_blocked {
            self.metrics.stale_updates_discarded += 1;
            return Ok(());
        }
        let blockers = self.table.blockers_of(u.waiter, u.entity);
        self.graphs[0].set_wait(u.waiter, u.entity, &blockers);
        self.resolve_cycles_in(0, u.waiter, u.entity)
    }

    /// `GlobalDetection` with the coordinator unreachable: track the wait
    /// in the entity's site-local fallback graph and resolve same-site
    /// cycles locally. Cross-site cycles stay invisible until the
    /// coordinator restarts and [`Self::reconcile_graphs`] runs.
    pub(crate) fn local_fallback(
        &mut self,
        causer: TxnId,
        entity: EntityId,
    ) -> Result<(), EngineError> {
        self.degraded = true;
        let site = usize::from(self.site_of(entity).raw());
        for _round in 0..1024 {
            let rt = self.txns.get(&causer).expect("checked");
            if rt.phase != Phase::Blocked {
                return Ok(());
            }
            let Some(mode) = self.table.waiting_on(causer, entity).map(|w| w.mode) else {
                return Ok(());
            };
            let holders: Vec<TxnId> = self
                .table
                .holder_records(entity)
                .into_iter()
                .filter(|h| h.txn != causer && !mode.compatible_with(h.mode))
                .map(|h| h.txn)
                .collect();
            self.rebuild_fallback_graph(site);
            self.fallback[site].clear_wait(causer);
            let cycles = cycles_on_wait(&self.fallback[site], causer, entity, &holders, 64);
            if cycles.is_empty() {
                return Ok(());
            }
            self.metrics.detected_deadlocks += 1;
            self.metrics.local_fallback_detections += 1;
            let event = DeadlockEvent { causer, entity, cycles };
            let plan = plan_resolution(&event, &self.config.engine_config(), &self.txns);
            if plan.rollbacks.is_empty() {
                break;
            }
            for rb in &plan.rollbacks {
                self.execute_rollback(*rb)?;
                self.metrics.detection_rollbacks += 1;
            }
        }
        Err(EngineError::Stuck { blocked: vec![causer] })
    }

    /// Rebuilds one site's fallback graph from lock-table truth,
    /// restricted to entities homed at that site.
    fn rebuild_fallback_graph(&mut self, site: usize) {
        let mut g = WaitsForGraph::new();
        for entity in self.table.entities() {
            if usize::from(self.site_of(entity).raw()) != site {
                continue;
            }
            for w in self.table.waiters_of(entity) {
                let blockers = self.table.blockers_of(w.txn, entity);
                g.set_wait(w.txn, entity, &blockers);
            }
        }
        self.fallback[site] = g;
    }

    /// Rebuilds every maintained waits-for graph from lock-table truth
    /// and re-runs detection for each blocked transaction — the repair
    /// step after lost graph-maintenance messages or a coordinator
    /// outage. Costs one message per blocked transaction (each site
    /// re-reports its waits).
    pub(crate) fn reconcile_graphs(&mut self) -> Result<(), EngineError> {
        self.metrics.reconciliations += 1;
        let now = self.net.now();
        self.net.log(format!("[{now}] reconcile graphs from lock-table truth"));
        for g in &mut self.graphs {
            *g = WaitsForGraph::new();
        }
        for entity in self.table.entities() {
            let gi = self.graph_index(entity);
            for w in self.table.waiters_of(entity) {
                let blockers = self.table.blockers_of(w.txn, entity);
                self.graphs[gi].set_wait(w.txn, entity, &blockers);
            }
        }
        let blocked: Vec<(TxnId, EntityId)> = self
            .txns
            .values()
            .filter(|rt| rt.phase == Phase::Blocked)
            .map(|rt| (rt.id, rt.blocked_on.expect("blocked transactions record their entity")))
            .collect();
        self.metrics.messages += blocked.len() as u64;
        if self.config.scheme == CrossSiteScheme::WoundWait {
            return Ok(()); // prevention: wounds happen at request time
        }
        for (txn, entity) in blocked {
            // An earlier iteration's resolution may have already rolled
            // this transaction back to Running.
            if self.txns.get(&txn).is_some_and(|rt| rt.phase == Phase::Blocked) {
                let gi = self.graph_index(entity);
                self.resolve_cycles_in(gi, txn, entity)?;
            }
        }
        Ok(())
    }

    /// Cross-layer consistency sweep used by the chaos harness and the
    /// fault tests: lock-table invariants, per-transaction workspace
    /// integrity, phase/lock coherence, and store consistency.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check_invariants()?;
        self.store.check_consistency().map_err(|e| format!("store: {e}"))?;
        for rt in self.txns.values() {
            rt.workspace.check_integrity().map_err(|e| format!("{}: {e}", rt.id))?;
            match rt.phase {
                Phase::Committed | Phase::Aborted => {
                    if !rt.held.is_empty() {
                        return Err(format!("{} settled but still holds locks", rt.id));
                    }
                }
                Phase::Blocked => {
                    let Some(entity) = rt.blocked_on else {
                        return Err(format!("{} blocked without an entity", rt.id));
                    };
                    if self.table.waiting_on(rt.id, entity).is_none() {
                        return Err(format!(
                            "{} blocked on {entity} without a queued request",
                            rt.id
                        ));
                    }
                }
                Phase::Running => {}
            }
        }
        for entity in self.table.entities() {
            for h in self.table.holders_of(entity) {
                let Some(rt) = self.txns.get(&h) else {
                    return Err(format!("{entity}: holder {h} has no runtime"));
                };
                if matches!(rt.phase, Phase::Committed | Phase::Aborted) {
                    return Err(format!("{entity}: settled transaction {h} still holds it"));
                }
                if !rt.held.contains(&entity) {
                    return Err(format!("{entity}: holder {h} does not track it as held"));
                }
            }
        }
        Ok(())
    }

    /// The database.
    pub fn store(&self) -> &GlobalStore {
        &self.store
    }

    /// The simulated network (fault trace, virtual clock, liveness).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &DistMetrics {
        &self.metrics
    }

    /// A transaction's runtime.
    pub fn txn(&self, id: TxnId) -> Option<&TxnRuntime> {
        self.txns.get(&id)
    }

    /// A transaction's home site.
    pub fn home(&self, id: TxnId) -> SiteId {
        self.home_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_core::scheduler::RoundRobin;
    use pr_model::{ProgramBuilder, Value};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// Lock a then b with padding — entities chosen so sites differ under
    /// a 2-site round-robin partition (even ids site0, odd ids site1).
    fn two_lock(a: u32, b: u32, pads: usize) -> TransactionProgram {
        ProgramBuilder::new()
            .lock_exclusive(e(a))
            .write_const(e(a), 1)
            .pad(pads)
            .lock_exclusive(e(b))
            .write_const(e(b), 2)
            .build()
            .unwrap()
    }

    fn sys(scheme: CrossSiteScheme, strategy: StrategyKind) -> DistributedSystem {
        let store = GlobalStore::with_entities(8, Value::new(100));
        DistributedSystem::new(store, DistConfig::new(2, scheme, strategy))
    }

    #[test]
    fn home_site_is_first_locked_entitys_site() {
        let mut s = sys(CrossSiteScheme::GlobalDetection, StrategyKind::Mcs);
        let t1 = s.admit(two_lock(0, 1, 0)).unwrap();
        let t2 = s.admit(two_lock(1, 0, 0)).unwrap();
        assert_eq!(s.home(t1), SiteId::new(0));
        assert_eq!(s.home(t2), SiteId::new(1));
    }

    #[test]
    fn all_schemes_resolve_the_classic_cross_site_deadlock() {
        for scheme in CrossSiteScheme::ALL {
            let mut s = sys(scheme, StrategyKind::Mcs);
            let t1 = s.admit(two_lock(0, 1, 2)).unwrap();
            let t2 = s.admit(two_lock(1, 0, 2)).unwrap();
            // Both take their first lock, then collide.
            s.step(t1).unwrap();
            s.step(t2).unwrap();
            s.run(&mut RoundRobin::new()).unwrap_or_else(|err| panic!("{scheme:?}: {err}"));
            assert!(s.all_committed(), "{scheme:?}");
            // Each entity's final value is the last committer's write —
            // either serial order is correct.
            for ent in [e(0), e(1)] {
                let v = s.store().read(ent).unwrap();
                assert!(v == Value::new(1) || v == Value::new(2), "{scheme:?}: {ent} = {v}");
            }
            assert!(s.metrics().rollbacks() >= 1, "{scheme:?} had to roll someone back");
        }
    }

    #[test]
    fn global_detection_pays_graph_maintenance_messages() {
        let run = |scheme| {
            let mut s = sys(scheme, StrategyKind::Mcs);
            for i in 0..6 {
                let (a, b) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                s.admit(two_lock(a, b, 2)).unwrap();
            }
            s.run(&mut RoundRobin::new()).unwrap();
            s.metrics().clone()
        };
        let global = run(CrossSiteScheme::GlobalDetection);
        let wound = run(CrossSiteScheme::WoundWait);
        assert!(global.messages > 0 && wound.messages > 0);
        assert_eq!(wound.detected_deadlocks, 0, "prevention never detects");
        assert!(global.detected_deadlocks > 0);
    }

    #[test]
    fn wound_wait_rolls_back_younger_holders_only() {
        let mut s = sys(CrossSiteScheme::WoundWait, StrategyKind::Mcs);
        let t1 = s.admit(two_lock(0, 1, 2)).unwrap(); // older
        let t2 = s.admit(two_lock(1, 0, 2)).unwrap(); // younger
        s.step(t1).unwrap(); // T1 holds a
        s.step(t2).unwrap(); // T2 holds b
                             // T2 (younger) runs up to and including its request of a (held by
                             // the older T1): it waits.
        for _ in 0..4 {
            s.step(t2).unwrap();
        }
        assert_eq!(s.txn(t2).unwrap().phase, Phase::Blocked);
        assert_eq!(s.metrics().wounds, 0);
        // T1 (older) requests b held by T2 (younger): wounds T2.
        for _ in 0..4 {
            s.step(t1).unwrap();
        }
        assert_eq!(s.metrics().wounds, 1);
        assert!(s.txn(t1).unwrap().held.contains(&e(1)), "T1 got b after the wound");
        s.run(&mut RoundRobin::new()).unwrap();
        assert!(s.all_committed());
    }

    #[test]
    fn site_ordered_rolls_back_order_violations() {
        // T1 locks b (site1) then a (site0): waiting for a while holding
        // site1 violates the order whenever a is contested.
        let mut s = sys(CrossSiteScheme::SiteOrdered, StrategyKind::Mcs);
        let t1 = s.admit(two_lock(1, 0, 2)).unwrap(); // b then a: descending
        let t2 = s.admit(two_lock(0, 2, 8)).unwrap(); // holds a a while
        s.step(t2).unwrap(); // T2 holds a
        s.step(t1).unwrap(); // T1 holds b
        for _ in 0..4 {
            s.step(t1).unwrap(); // write, pads, then the request of a
        }
        // T1's request of contested a (site0 < site1 of held b) violates
        // the order: T1 was rolled back instead of enqueued.
        assert_eq!(s.metrics().order_violations, 1);
        assert_eq!(s.txn(t1).unwrap().phase, Phase::Running);
        s.run(&mut RoundRobin::new()).unwrap();
        assert!(s.all_committed());
    }

    #[test]
    fn site_ordered_detects_same_site_cycles_locally() {
        // Entities 0 and 2 both live at site 0 under 2-site round-robin:
        // a same-site deadlock, resolved by the local graph.
        let mut s = sys(CrossSiteScheme::SiteOrdered, StrategyKind::Mcs);
        let t1 = s.admit(two_lock(0, 2, 2)).unwrap();
        let t2 = s.admit(two_lock(2, 0, 2)).unwrap();
        s.step(t1).unwrap();
        s.step(t2).unwrap();
        s.run(&mut RoundRobin::new()).unwrap();
        assert!(s.all_committed());
        assert!(s.metrics().detected_deadlocks >= 1, "local detection fired");
        assert_eq!(s.metrics().order_violations, 0, "same-site locks never violate the order");
    }

    #[test]
    fn remote_operations_cost_messages_local_ones_do_not() {
        let mut s = sys(CrossSiteScheme::WoundWait, StrategyKind::Mcs);
        // Both entities at site 0 (ids 0 and 2), txn homed at site 0: no
        // remote traffic at all.
        let t1 = s.admit(two_lock(0, 2, 0)).unwrap();
        let _ = t1;
        s.run(&mut RoundRobin::new()).unwrap();
        assert_eq!(s.metrics().messages, 0);

        // Cross-site transaction pays for its remote lock.
        let store = GlobalStore::with_entities(8, Value::new(100));
        let mut s = DistributedSystem::new(
            store,
            DistConfig::new(2, CrossSiteScheme::WoundWait, StrategyKind::Mcs),
        );
        s.admit(two_lock(0, 1, 0)).unwrap();
        s.run(&mut RoundRobin::new()).unwrap();
        assert!(s.metrics().messages >= 3, "remote lock + read + release");
    }

    #[test]
    fn distributed_runs_are_deterministic() {
        let run = || {
            let store = GlobalStore::with_entities(8, Value::new(100));
            let mut s = DistributedSystem::new(
                store,
                DistConfig::new(2, CrossSiteScheme::SiteOrdered, StrategyKind::Mcs),
            );
            for i in 0..10 {
                let (a, b) = if i % 2 == 0 { (0, 3) } else { (3, 0) };
                s.admit(two_lock(a, b, 4)).unwrap();
            }
            s.run(&mut RoundRobin::new()).unwrap();
            (s.metrics().clone(), s.store().snapshot())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distributed_outcomes_match_some_serial_order() {
        // Two conflicting writers: the final value of each entity must be
        // one of the two serial outcomes under every scheme.
        for scheme in CrossSiteScheme::ALL {
            let mut s = sys(scheme, StrategyKind::Sdg);
            let p1 = ProgramBuilder::new()
                .lock_exclusive(e(0))
                .write_const(e(0), 10)
                .pad(2)
                .lock_exclusive(e(1))
                .write_const(e(1), 11)
                .build()
                .unwrap();
            let p2 = ProgramBuilder::new()
                .lock_exclusive(e(1))
                .write_const(e(1), 21)
                .pad(2)
                .lock_exclusive(e(0))
                .write_const(e(0), 20)
                .build()
                .unwrap();
            let t1 = s.admit(p1).unwrap();
            let t2 = s.admit(p2).unwrap();
            s.step(t1).unwrap();
            s.step(t2).unwrap();
            s.run(&mut RoundRobin::new()).unwrap();
            let v0 = s.store().read(e(0)).unwrap().raw();
            let v1 = s.store().read(e(1)).unwrap().raw();
            // Serial T1;T2 → (20, 21); serial T2;T1 → (10, 11).
            assert!(
                (v0, v1) == (20, 21) || (v0, v1) == (10, 11),
                "{scheme:?}: ({v0}, {v1}) is not a serial outcome"
            );
        }
    }

    #[test]
    fn partial_rollback_beats_total_under_every_scheme() {
        for scheme in CrossSiteScheme::ALL {
            let run = |strategy| {
                let store = GlobalStore::with_entities(8, Value::new(100));
                let mut s = DistributedSystem::new(store, DistConfig::new(2, scheme, strategy));
                for i in 0..8 {
                    let (a, b) = if i % 2 == 0 { (0, 3) } else { (3, 0) };
                    s.admit(two_lock(a, b, 6)).unwrap();
                }
                s.run(&mut RoundRobin::new()).unwrap();
                assert!(s.all_committed());
                s.metrics().clone()
            };
            let total = run(StrategyKind::Total);
            let mcs = run(StrategyKind::Mcs);
            assert!(
                mcs.states_lost <= total.states_lost,
                "{scheme:?}: partial {} vs total {}",
                mcs.states_lost,
                total.states_lost
            );
        }
    }
}
