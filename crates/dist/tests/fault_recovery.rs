//! Fault-injection and recovery regression tests: message duplication
//! dedup, coordinator-outage fallback, crash recovery via partial
//! rollback, crash aborts, and clock-skewed wound-wait.

use pr_core::runtime::Phase;
use pr_core::scheduler::RoundRobin;
use pr_core::StrategyKind;
use pr_dist::{CrashEvent, CrossSiteScheme, DistConfig, DistributedSystem, FaultPlan, SiteId};
use pr_model::{EntityId, ProgramBuilder, TransactionProgram, Value};
use pr_storage::GlobalStore;

fn e(i: u32) -> EntityId {
    EntityId::new(i)
}

fn store(n: u32) -> GlobalStore {
    GlobalStore::with_entities(n, Value::new(100))
}

fn sys_with(
    sites: u16,
    scheme: CrossSiteScheme,
    strategy: StrategyKind,
    plan: FaultPlan,
) -> DistributedSystem {
    DistributedSystem::with_faults(store(8), DistConfig::new(sites, scheme, strategy), plan)
}

/// Lock `a` then `b` with padding in between (2-site round-robin: even
/// entity ids live at site 0, odd ids at site 1).
fn two_lock(a: u32, b: u32, pads: usize) -> TransactionProgram {
    ProgramBuilder::new()
        .lock_exclusive(e(a))
        .write_const(e(a), 1)
        .pad(pads)
        .lock_exclusive(e(b))
        .write_const(e(b), 2)
        .build()
        .unwrap()
}

#[test]
fn duplicated_grant_messages_are_suppressed_and_harmless() {
    let mut plan = FaultPlan::none();
    plan.seed = 3;
    plan.dup_per_mille = 1000; // every reliable notification is duplicated
    let mut s = sys_with(2, CrossSiteScheme::GlobalDetection, StrategyKind::Mcs, plan);
    // t2 (home site 1) takes e1 first; t1 (home site 0) must wait for it,
    // so its eventual grant crosses sites — and is duplicated.
    let t2 = s
        .admit(
            ProgramBuilder::new().lock_exclusive(e(1)).write_const(e(1), 7).pad(2).build().unwrap(),
        )
        .unwrap();
    let t1 = s.admit(two_lock(0, 1, 1)).unwrap();
    s.step(t2).unwrap();
    s.step(t1).unwrap();
    s.run(&mut RoundRobin::new()).unwrap();
    assert!(s.all_committed());
    assert!(
        s.metrics().dups_suppressed >= 1,
        "certain duplication must produce suppressed deliveries: {:?}",
        s.metrics()
    );
    // The duplicate grant changed nothing: t1 wrote e1 last.
    assert_eq!(s.store().read(e(1)).unwrap(), Value::new(2));
    s.check_invariants().unwrap();
}

#[test]
fn coordinator_outage_falls_back_locally_and_reconciles_on_restart() {
    let mut plan = FaultPlan::none();
    plan.crashes = vec![CrashEvent { site: SiteId::new(0), at_tick: 1, down_ticks: 300 }];
    let mut s = sys_with(3, CrossSiteScheme::GlobalDetection, StrategyKind::Mcs, plan);
    // A cross-site cycle between sites 1 and 2, formed while the
    // coordinator (site 0) is down: site-local fallback graphs cannot see
    // it; the restart reconcile must.
    let t1 = s.admit(two_lock(1, 2, 1)).unwrap();
    let t2 = s.admit(two_lock(2, 1, 1)).unwrap();
    s.step(t1).unwrap(); // tick 1: coordinator crashes, then t1 takes e1
    s.step(t2).unwrap();
    s.run(&mut RoundRobin::new()).unwrap();
    assert!(s.all_committed());
    let m = s.metrics();
    assert_eq!(m.coordinator_outages, 1);
    assert_eq!(m.crashes, 1);
    assert_eq!(m.recoveries, 1);
    assert!(m.reconciliations >= 1, "restart must rebuild the coordinator graph");
    assert!(m.detected_deadlocks >= 1, "the hidden cross-site cycle must be found");
    s.check_invariants().unwrap();
}

/// Runs one transaction spanning both sites into a crash of site 1 while
/// it holds a lock there, and returns the recovery rollback cost.
fn recovery_cost(strategy: StrategyKind) -> (u64, DistributedSystem) {
    let mut plan = FaultPlan::none();
    plan.crashes = vec![CrashEvent { site: SiteId::new(1), at_tick: 8, down_ticks: 20 }];
    let mut s = sys_with(2, CrossSiteScheme::GlobalDetection, strategy, plan);
    let t1 = s
        .admit(
            ProgramBuilder::new()
                .lock_exclusive(e(0))
                .write_const(e(0), 1)
                .pad(3)
                .lock_exclusive(e(1))
                .write_const(e(1), 2)
                .pad(3)
                .build()
                .unwrap(),
        )
        .unwrap();
    s.run(&mut RoundRobin::new()).unwrap();
    assert!(s.all_committed(), "{strategy:?}");
    let m = s.metrics();
    assert_eq!(m.crashes, 1, "{strategy:?}");
    assert_eq!(m.expired_grants, 1, "{strategy:?}: the e1 grant dies with site 1");
    assert_eq!(m.recovery_rollbacks, 1, "{strategy:?}");
    assert_eq!(m.recoveries, 1, "{strategy:?}");
    assert_eq!(m.ttr_ticks, 20, "{strategy:?}");
    assert_eq!(s.txn(t1).unwrap().phase, Phase::Committed);
    s.check_invariants().unwrap();
    (m.recovery_states_lost, s)
}

#[test]
fn crash_recovery_rolls_survivors_back_partially_not_totally() {
    let (mcs_cost, _) = recovery_cost(StrategyKind::Mcs);
    let (total_cost, _) = recovery_cost(StrategyKind::Total);
    assert!(mcs_cost >= 1, "losing the e1 grant must cost something");
    assert!(
        mcs_cost < total_cost,
        "partial rollback must save recovery work: mcs {mcs_cost} vs total {total_cost}"
    );
}

#[test]
fn crash_aborts_home_transactions_and_unblocks_their_waiters() {
    let mut plan = FaultPlan::none();
    plan.crashes = vec![CrashEvent { site: SiteId::new(1), at_tick: 6, down_ticks: 5 }];
    let mut s = sys_with(2, CrossSiteScheme::GlobalDetection, StrategyKind::Mcs, plan);
    // t1 is homed at the doomed site and holds e1 there; t2 waits for e1.
    let t1 = s
        .admit(
            ProgramBuilder::new().lock_exclusive(e(1)).write_const(e(1), 9).pad(8).build().unwrap(),
        )
        .unwrap();
    let t2 = s.admit(two_lock(0, 1, 1)).unwrap();
    s.step(t1).unwrap();
    s.run(&mut RoundRobin::new()).unwrap();
    assert!(s.all_settled());
    assert!(!s.all_committed());
    assert_eq!(s.txn(t1).unwrap().phase, Phase::Aborted, "t1's home site died");
    assert_eq!(s.txn(t2).unwrap().phase, Phase::Committed, "t2 must survive the crash");
    let m = s.metrics();
    assert_eq!(m.crash_aborts, 1);
    assert_eq!(m.commits, 1);
    // Nothing t1 wrote was published: e1 carries t2's write.
    assert_eq!(s.store().read(e(1)).unwrap(), Value::new(2));
    s.check_invariants().unwrap();
}

#[test]
fn clock_skew_reverses_wound_wait_age() {
    // t1 enters first (entry order 0) and holds e1; t2 enters second.
    // Without skew t2 is younger and waits. With +100 ticks of skew on
    // t1's home site, t2 looks older and wounds t1 instead.
    let run = |skew: Vec<i64>| {
        let mut plan = FaultPlan::none();
        plan.clock_skew_ticks = skew;
        let mut s = sys_with(2, CrossSiteScheme::WoundWait, StrategyKind::Mcs, plan);
        let t1 = s.admit(two_lock(0, 1, 2)).unwrap();
        let t2 = s
            .admit(
                ProgramBuilder::new()
                    .lock_exclusive(e(1))
                    .write_const(e(1), 5)
                    .pad(2)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        for _ in 0..5 {
            s.step(t1).unwrap(); // lock e0, write, 2 pads, take e1
        }
        s.step(t2).unwrap(); // t2 requests e1 while t1 holds it
        let wounds = s.metrics().wounds;
        s.run(&mut RoundRobin::new()).unwrap();
        assert!(s.all_committed());
        s.check_invariants().unwrap();
        wounds
    };
    assert_eq!(run(vec![0, 0]), 0, "unskewed: the younger requester waits");
    assert!(run(vec![100, 0]) >= 1, "skewed: the requester looks older and wounds");
}
