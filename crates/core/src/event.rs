//! Structured event log: every externally meaningful engine action, in
//! order, for debugging, tracing, and the narrated examples.
//!
//! Logging is off by default (the hot experiment loops pay nothing) and
//! bounded when on, so a runaway workload cannot exhaust memory.

use pr_model::{EntityId, LockIndex, LockMode, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a rollback happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RollbackReason {
    /// Chosen as a deadlock victim.
    DeadlockVictim,
    /// A held grant expired — the site holding the lock state crashed and
    /// the survivor was rolled back past the lost state.
    GrantExpired,
}

/// One engine event.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Event {
    /// A transaction was admitted.
    Admitted {
        /// The new transaction.
        txn: TxnId,
    },
    /// A lock was granted (immediately or after waiting).
    Granted {
        /// Grantee.
        txn: TxnId,
        /// Entity locked.
        entity: EntityId,
        /// Mode acquired.
        mode: LockMode,
    },
    /// A lock request had to wait.
    Waited {
        /// Requester.
        txn: TxnId,
        /// Contested entity.
        entity: EntityId,
        /// Holders being waited on.
        holders: Vec<TxnId>,
    },
    /// A deadlock was detected.
    DeadlockDetected {
        /// The transaction whose request closed the cycle(s).
        causer: TxnId,
        /// The requested entity.
        entity: EntityId,
        /// Number of cycles closed.
        cycles: usize,
    },
    /// A transaction was rolled back.
    RolledBack {
        /// The victim.
        victim: TxnId,
        /// Lock state rolled back to.
        target: LockIndex,
        /// States lost.
        cost: u32,
        /// Cause.
        reason: RollbackReason,
    },
    /// An entity's new global value was published (unlock/commit).
    Published {
        /// Publisher.
        txn: TxnId,
        /// Entity published.
        entity: EntityId,
    },
    /// A transaction committed.
    Committed {
        /// The transaction.
        txn: TxnId,
    },
    /// A held grant was forcibly expired (crash recovery): the lock is
    /// gone from the table without an unlock by its holder.
    GrantExpired {
        /// The (former) holder.
        txn: TxnId,
        /// Entity whose lock state was lost.
        entity: EntityId,
    },
    /// A transaction was aborted by an upper layer (e.g. its home site
    /// crashed); all its locks were released without publishing.
    Aborted {
        /// The transaction.
        txn: TxnId,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Admitted { txn } => write!(f, "{txn} admitted"),
            Event::Granted { txn, entity, mode } => {
                write!(f, "{txn} granted {mode}-lock on {entity}")
            }
            Event::Waited { txn, entity, holders } => {
                write!(f, "{txn} waits for {entity} held by {holders:?}")
            }
            Event::DeadlockDetected { causer, entity, cycles } => {
                write!(f, "deadlock: {causer}'s request of {entity} closed {cycles} cycle(s)")
            }
            Event::RolledBack { victim, target, cost, .. } => {
                write!(f, "{victim} rolled back to lock state {target} (cost {cost})")
            }
            Event::Published { txn, entity } => write!(f, "{txn} published {entity}"),
            Event::Committed { txn } => write!(f, "{txn} committed"),
            Event::GrantExpired { txn, entity } => {
                write!(f, "{txn}'s lock on {entity} expired (site crash)")
            }
            Event::Aborted { txn } => write!(f, "{txn} aborted"),
        }
    }
}

/// A bounded, optionally enabled event log.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<(u64, Event)>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Default bound on retained events.
    pub const DEFAULT_CAPACITY: usize = 100_000;

    /// Creates a disabled log.
    pub fn new() -> Self {
        EventLog {
            enabled: false,
            events: Vec::new(),
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
        }
    }

    /// Enables recording with the given bound; events beyond it are
    /// counted but not retained.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at logical time `step` (no-op while disabled).
    pub fn record(&mut self, step: u64, event: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push((step, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Events that arrived after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a human-readable timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (step, ev) in &self.events {
            out.push_str(&format!("[{step:>6}] {ev}\n"));
        }
        if self.dropped > 0 {
            out.push_str(&format!("… {} further events dropped (capacity)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> Event {
        Event::Committed { txn: TxnId::new(i) }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new();
        log.record(1, ev(1));
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new();
        log.enable(10);
        log.record(1, ev(1));
        log.record(2, ev(2));
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].0, 1);
        let rendered = log.render();
        assert!(rendered.contains("T1 committed"));
        assert!(rendered.contains("T2 committed"));
    }

    #[test]
    fn capacity_bounds_retention() {
        let mut log = EventLog::new();
        log.enable(2);
        for i in 0..5 {
            log.record(u64::from(i), ev(i));
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert!(log.render().contains("3 further events dropped"));
    }

    #[test]
    fn event_display_forms() {
        use pr_model::{EntityId, LockIndex, LockMode};
        let e = Event::Granted {
            txn: TxnId::new(1),
            entity: EntityId::new(0),
            mode: LockMode::Exclusive,
        };
        assert_eq!(e.to_string(), "T1 granted X-lock on a");
        let e = Event::RolledBack {
            victim: TxnId::new(2),
            target: LockIndex::new(1),
            cost: 4,
            reason: RollbackReason::DeadlockVictim,
        };
        assert_eq!(e.to_string(), "T2 rolled back to lock state 1 (cost 4)");
        let e =
            Event::DeadlockDetected { causer: TxnId::new(2), entity: EntityId::new(4), cycles: 1 };
        assert!(e.to_string().contains("closed 1 cycle"));
    }
}
