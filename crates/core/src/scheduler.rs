//! Scheduler abstraction: which ready transaction steps next.
//!
//! Concurrency in the paper's model is interleaving of atomic operations;
//! a scheduler fixes the interleaving, making every run reproducible. The
//! engine hands the scheduler the ready set (sorted by id) and lets it
//! pick. `pr-sim` adds a seeded random scheduler and scripted schedulers
//! for the figure reproductions.

use pr_model::TxnId;

/// Picks the next transaction to step from the (non-empty) ready set.
pub trait Scheduler {
    /// Chooses one of `ready` (sorted ascending, never empty).
    fn pick(&mut self, ready: &[TxnId]) -> TxnId;
}

/// Deterministic round-robin over transaction ids.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    last: Option<TxnId>,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, ready: &[TxnId]) -> TxnId {
        let pick = match self.last {
            Some(last) => ready.iter().copied().find(|&t| t > last).unwrap_or(ready[0]),
            None => ready[0],
        };
        self.last = Some(pick);
        pick
    }
}

/// A scheduler that follows a scripted order of transaction ids, skipping
/// entries that are not currently ready; falls back to round-robin when
/// the script is exhausted. Used to reproduce the paper's figures, whose
/// deadlocks depend on specific interleavings.
#[derive(Clone, Debug)]
pub struct Scripted {
    script: Vec<TxnId>,
    pos: usize,
    fallback: RoundRobin,
}

impl Scripted {
    /// Creates a scripted scheduler from an explicit pick order.
    pub fn new(script: Vec<TxnId>) -> Self {
        Scripted { script, pos: 0, fallback: RoundRobin::new() }
    }

    /// Remaining scripted picks.
    pub fn remaining(&self) -> usize {
        self.script.len().saturating_sub(self.pos)
    }
}

impl Scheduler for Scripted {
    fn pick(&mut self, ready: &[TxnId]) -> TxnId {
        while self.pos < self.script.len() {
            let want = self.script[self.pos];
            self.pos += 1;
            if ready.contains(&want) {
                self.fallback.last = Some(want);
                return want;
            }
            // A scripted pick for a blocked/committed transaction is
            // skipped: the script positions are advisory.
        }
        self.fallback.pick(ready)
    }
}

/// Wraps any scheduler and records every pick it makes, so a run can be
/// replayed exactly with [`Scripted`]. This is the model checker's and the
/// chaos harness's bridge from "a schedule explored/generated dynamically"
/// to "a deterministic counterexample trace".
#[derive(Clone, Debug)]
pub struct Recording<S> {
    inner: S,
    picks: Vec<TxnId>,
}

impl<S: Scheduler> Recording<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Recording { inner, picks: Vec::new() }
    }

    /// The picks made so far, in order.
    pub fn picks(&self) -> &[TxnId] {
        &self.picks
    }

    /// Consumes the wrapper, returning the recorded schedule.
    pub fn into_script(self) -> Vec<TxnId> {
        self.picks
    }
}

impl<S: Scheduler> Scheduler for Recording<S> {
    fn pick(&mut self, ready: &[TxnId]) -> TxnId {
        let pick = self.inner.pick(ready);
        self.picks.push(pick);
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn recording_replays_identically() {
        let mut rec = Recording::new(RoundRobin::new());
        let ready = [t(1), t(2), t(3)];
        let first: Vec<TxnId> = (0..5).map(|_| rec.pick(&ready)).collect();
        let mut replay = Scripted::new(rec.into_script());
        let second: Vec<TxnId> = (0..5).map(|_| replay.pick(&ready)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn round_robin_cycles_through_ready_set() {
        let mut s = RoundRobin::new();
        let ready = [t(1), t(2), t(3)];
        assert_eq!(s.pick(&ready), t(1));
        assert_eq!(s.pick(&ready), t(2));
        assert_eq!(s.pick(&ready), t(3));
        assert_eq!(s.pick(&ready), t(1));
    }

    #[test]
    fn round_robin_adapts_to_shrinking_ready_set() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick(&[t(1), t(2), t(3)]), t(1));
        // T2 blocked; next larger than 1 among ready is 3.
        assert_eq!(s.pick(&[t(1), t(3)]), t(3));
        assert_eq!(s.pick(&[t(1), t(3)]), t(1));
    }

    #[test]
    fn scripted_follows_script_then_falls_back() {
        let mut s = Scripted::new(vec![t(2), t(2), t(1)]);
        let ready = [t(1), t(2)];
        assert_eq!(s.pick(&ready), t(2));
        assert_eq!(s.pick(&ready), t(2));
        assert_eq!(s.pick(&ready), t(1));
        assert_eq!(s.remaining(), 0);
        // Fallback round-robin.
        assert_eq!(s.pick(&ready), t(2));
    }

    #[test]
    fn scripted_skips_unready_entries() {
        let mut s = Scripted::new(vec![t(9), t(1)]);
        assert_eq!(s.pick(&[t(1), t(2)]), t(1));
    }
}
