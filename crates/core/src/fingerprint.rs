//! Canonical engine-state encoding for exhaustive state-space exploration.
//!
//! The `pr-explore` model checker memoizes visited states, so it needs a
//! *canonical* encoding of a [`System`]: two systems encode identically iff
//! every future behaviour is identical. The encoding covers exactly the
//! state that drives the engine's dynamics — transaction runtimes (program
//! counter, state index, phase, lock states, workspace contents,
//! state-dependency graph), the lock table (holders and the wait queue per
//! entity), the waits-for graph, and the database — and excludes
//! monotone instrumentation (metrics, histories, event logs, peak
//! counters) that never feeds back into execution.
//!
//! The Repair strategy's replay tape and open replay window are likewise
//! excluded. The tape only ever supplies a value when that value is
//! verified equal to what re-execution would produce (reads compare
//! against the live entity; computed ops reuse only when every input is
//! untainted), so two systems differing solely in tape contents have
//! identical future behaviour — the tape steers the replayed/reused
//! *ledgers*, which are instrumentation, never the values.
//!
//! The visited set keys on the **full encoding**, never on a hash alone: a
//! 64-bit fingerprint collision would silently merge distinct states and
//! unsoundly prune reachable behaviours. [`fingerprint`] exists for
//! compact display and statistics only.
//!
//! ## Transaction-id symmetry
//!
//! [`canonical_state_relabeled`] encodes under a transaction-id relabeling
//! so callers can canonicalise states that differ only by which of two
//! *identical* programs got which id. This is sound only when nothing
//! id-dependent feeds the dynamics — entry orders must be excluded (so the
//! `PartialOrder`/`Youngest` policies, which consult them, are out), and
//! even then id-order tie-breaks (the cut-set solver keeps the first best
//! solution; `BTreeSet` iteration is id-ordered) can make two symmetric
//! states *diverge in trace* while agreeing in outcome. `pr-explore`
//! therefore uses symmetry only for statistics, validating it empirically
//! against the full exploration, never for the oracles.

use crate::engine::System;
use crate::runtime::{Phase, Workspace};
use pr_model::TxnId;
use std::fmt::Write;

/// Canonical encoding of the system's dynamic state under the identity
/// relabeling, entry orders included. See the module docs for coverage.
pub fn canonical_state(sys: &System) -> String {
    canonical_state_relabeled(sys, &|t| t, true)
}

/// Canonical encoding under a transaction-id relabeling.
///
/// `relabel` must be a bijection over the admitted transaction ids.
/// `include_entry_order` keeps each transaction's ω rank in the encoding;
/// pass `false` only under id-symmetry reduction (where entry orders are
/// id-correlated and would defeat the relabeling).
pub fn canonical_state_relabeled(
    sys: &System,
    relabel: &dyn Fn(TxnId) -> TxnId,
    include_entry_order: bool,
) -> String {
    let mut out = String::with_capacity(512);

    // Transactions, sorted by relabeled id so symmetric states agree.
    let mut txns: Vec<(TxnId, TxnId)> =
        sys.txn_ids().into_iter().map(|id| (relabel(id), id)).collect();
    txns.sort_unstable();
    for (label, id) in &txns {
        let rt = sys.txn(*id).expect("listed id exists");
        let _ = write!(
            out,
            "T{}:pc{},s{},ph{},sh{}",
            label.raw(),
            rt.pc,
            rt.state.raw(),
            match rt.phase {
                Phase::Running => 'R',
                Phase::Blocked => 'B',
                Phase::Committed => 'C',
                Phase::Aborted => 'A',
            },
            u8::from(rt.shrinking),
        );
        if include_entry_order {
            let _ = write!(out, ",w{}", rt.entry_order);
        }
        if let Some(entity) = rt.blocked_on {
            let _ = write!(out, ",b{}", entity.raw());
        }
        out.push('|');
        for ls in &rt.lock_states {
            let _ = write!(
                out,
                "L{},{:?},{},{};",
                ls.entity.raw(),
                ls.mode,
                ls.state_index.raw(),
                ls.pc
            );
        }
        out.push('|');
        match &rt.workspace {
            Workspace::Mcs(ws) => {
                out.push('M');
                ws.encode_state(&mut out);
            }
            Workspace::Single(ws) => {
                out.push('S');
                ws.encode_state(&mut out);
            }
        }
        if let Some(sdg) = &rt.sdg {
            let _ = write!(out, "|G{sdg:?}");
        }
        out.push('\n');
    }

    // Lock table: holders (sorted by relabeled id — grant order among
    // concurrent holders is immaterial) and the wait queue (in order — the
    // fair queue promotes positionally).
    let mut entities = sys.table().entities();
    entities.sort_unstable();
    for entity in entities {
        let _ = write!(out, "e{}:", entity.raw());
        let mut holders: Vec<String> = sys
            .table()
            .holder_records(entity)
            .iter()
            .map(|h| {
                format!(
                    "{},{:?},{},{}",
                    relabel(h.txn).raw(),
                    h.mode,
                    h.requested_from_state.raw(),
                    h.lock_state.raw()
                )
            })
            .collect();
        holders.sort_unstable();
        for h in &holders {
            let _ = write!(out, "h{h};");
        }
        for w in sys.table().waiters_of(entity) {
            let _ = write!(
                out,
                "q{},{:?},{},{};",
                relabel(w.txn).raw(),
                w.mode,
                w.requested_from_state.raw(),
                w.lock_state.raw()
            );
        }
        out.push('\n');
    }

    // Waits-for graph (technically derivable from table + phases, but
    // cheap to include and it makes a table/graph divergence visible as a
    // distinct state rather than a silent merge).
    let mut waits: Vec<String> = sys
        .txn_ids()
        .into_iter()
        .filter_map(|id| {
            sys.graph().wait_of(id).map(|(entity, mut blockers)| {
                for b in &mut blockers {
                    *b = relabel(*b);
                }
                blockers.sort_unstable();
                let list: Vec<String> = blockers.iter().map(|b| b.raw().to_string()).collect();
                format!("W{}:{}<{}", relabel(id).raw(), entity.raw(), list.join(","))
            })
        })
        .collect();
    waits.sort_unstable();
    for w in &waits {
        let _ = writeln!(out, "{w}");
    }

    // Database values.
    for (id, value) in sys.store().iter() {
        let _ = write!(out, "D{}={};", id.raw(), value.raw());
    }
    out
}

/// 64-bit FNV-1a of the canonical encoding — for display and statistics
/// (state-space reports, trace labels), **not** for visited-set keys.
pub fn fingerprint(sys: &System) -> u64 {
    fnv1a(canonical_state(sys).as_bytes())
}

/// FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StrategyKind, SystemConfig, VictimPolicyKind};
    use crate::engine::StepOutcome;
    use pr_model::{EntityId, ProgramBuilder, Value};
    use pr_storage::GlobalStore;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn two_txn_system(strategy: StrategyKind) -> System {
        let store = GlobalStore::with_entities(2, Value::new(10));
        let mut sys = System::new(store, SystemConfig::new(strategy, VictimPolicyKind::MinCost));
        let p = |a: u32, b: u32| {
            ProgramBuilder::new()
                .lock_exclusive(e(a))
                .write_const(e(a), 7)
                .lock_exclusive(e(b))
                .unlock(e(a))
                .unlock(e(b))
                .build_unchecked()
        };
        sys.admit_unchecked(p(0, 1));
        sys.admit_unchecked(p(1, 0));
        sys
    }

    #[test]
    fn identical_histories_encode_identically() {
        let mk = || {
            let mut sys = two_txn_system(StrategyKind::Mcs);
            sys.step(TxnId::new(1)).unwrap();
            sys.step(TxnId::new(2)).unwrap();
            sys
        };
        let (a, b) = (mk(), mk());
        assert_eq!(canonical_state(&a), canonical_state(&b));
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn a_step_changes_the_encoding() {
        let mut sys = two_txn_system(StrategyKind::Mcs);
        let before = canonical_state(&sys);
        sys.step(TxnId::new(1)).unwrap();
        assert_ne!(before, canonical_state(&sys));
    }

    #[test]
    fn clone_preserves_encoding_and_behaviour() {
        let mut sys = two_txn_system(StrategyKind::Sdg);
        sys.step(TxnId::new(1)).unwrap();
        sys.step(TxnId::new(1)).unwrap();
        let mut copy = sys.clone();
        assert_eq!(canonical_state(&sys), canonical_state(&copy));
        // Stepping the original and the clone identically keeps them equal.
        let a = sys.step(TxnId::new(2)).unwrap();
        let b = copy.step(TxnId::new(2)).unwrap();
        assert_eq!(a, b);
        assert_eq!(canonical_state(&sys), canonical_state(&copy));
    }

    #[test]
    fn clone_is_independent_of_the_original() {
        let mut sys = two_txn_system(StrategyKind::Mcs);
        let copy = sys.clone();
        let before = canonical_state(&copy);
        sys.step(TxnId::new(1)).unwrap();
        sys.step(TxnId::new(2)).unwrap();
        assert_eq!(canonical_state(&copy), before, "clone unaffected by original's steps");
    }

    #[test]
    fn symmetric_relabeling_of_identical_programs_agrees() {
        // Two identical programs; run the mirror-image schedules and check
        // the swapped relabeling makes the states agree (entry orders
        // excluded).
        let prog = || {
            ProgramBuilder::new()
                .lock_exclusive(e(0))
                .write_const(e(0), 3)
                .unlock(e(0))
                .build_unchecked()
        };
        let store = || GlobalStore::with_entities(1, Value::ZERO);
        let config = SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        let mut a = System::new(store(), config);
        a.admit_unchecked(prog());
        a.admit_unchecked(prog());
        let mut b = a.clone();
        // a steps T1; b steps T2 — mirror images.
        assert_eq!(a.step(TxnId::new(1)).unwrap(), StepOutcome::Progressed);
        assert_eq!(b.step(TxnId::new(2)).unwrap(), StepOutcome::Progressed);
        let swap = |t: TxnId| {
            if t == TxnId::new(1) {
                TxnId::new(2)
            } else if t == TxnId::new(2) {
                TxnId::new(1)
            } else {
                t
            }
        };
        let ident = |t: TxnId| t;
        assert_eq!(
            canonical_state_relabeled(&a, &ident, false),
            canonical_state_relabeled(&b, &swap, false),
        );
        // With entry orders included the relabeling no longer matches.
        assert_ne!(
            canonical_state_relabeled(&a, &ident, true),
            canonical_state_relabeled(&b, &swap, true),
        );
    }
}
