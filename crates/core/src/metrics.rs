//! Engine metrics — the quantities the paper's arguments are about.

use pr_model::TxnId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters accumulated by a [`crate::System`] over its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Scheduler steps taken (including steps that ended in a wait).
    pub steps: u64,
    /// Atomic operations completed (state-index increments).
    pub ops_executed: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Rollbacks performed to a lock state `> 0`.
    pub partial_rollbacks: u64,
    /// Rollbacks performed to lock state 0 (restarts).
    pub total_rollbacks: u64,
    /// Sum of rollback costs: states (= operations) lost and re-executed.
    /// This is the paper's measure of the damage deadlock handling does.
    pub states_lost: u64,
    /// States lost *beyond* the ideal (MCS-reachable) target because the
    /// SDG strategy had to fall back to an earlier well-defined state —
    /// the price of single-copy storage.
    pub rollback_overshoot: u64,
    /// Wait responses issued.
    pub waits: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Deadlock resolutions whose cut set was provably optimal.
    pub cutset_optimal: u64,
    /// Deadlock resolutions that used the greedy fallback.
    pub cutset_greedy: u64,
    /// Peak total local copies held across all live transactions at once
    /// (Theorem 3 accounting: stack elements beyond base for MCS, one per
    /// exclusively held entity for single-copy strategies).
    pub peak_copies: usize,
    /// Times each transaction was chosen as a rollback victim.
    pub preemptions: BTreeMap<TxnId, u32>,
}

impl Metrics {
    /// Largest preemption count suffered by any single transaction — the
    /// mutual-preemption indicator (Figure 2 / Theorem 2).
    pub fn max_preemptions(&self) -> u32 {
        self.preemptions.values().copied().max().unwrap_or(0)
    }

    /// Total rollbacks of either kind.
    pub fn rollbacks(&self) -> u64 {
        self.partial_rollbacks + self.total_rollbacks
    }

    /// Fraction of executed operations that were wasted (re-executed
    /// work), in [0, 1].
    pub fn waste_ratio(&self) -> f64 {
        if self.ops_executed == 0 {
            0.0
        } else {
            self.states_lost as f64 / self.ops_executed as f64
        }
    }

    /// Records a victimisation of `txn`.
    pub fn record_preemption(&mut self, txn: TxnId) {
        *self.preemptions.entry(txn).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_tracking() {
        let mut m = Metrics::default();
        assert_eq!(m.max_preemptions(), 0);
        m.record_preemption(TxnId::new(1));
        m.record_preemption(TxnId::new(1));
        m.record_preemption(TxnId::new(2));
        assert_eq!(m.max_preemptions(), 2);
        assert_eq!(m.preemptions[&TxnId::new(1)], 2);
    }

    #[test]
    fn derived_quantities() {
        let m = Metrics {
            partial_rollbacks: 3,
            total_rollbacks: 2,
            states_lost: 50,
            ops_executed: 200,
            ..Default::default()
        };
        assert_eq!(m.rollbacks(), 5);
        assert!((m.waste_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(Metrics::default().waste_ratio(), 0.0);
    }
}
