//! Engine metrics — the quantities the paper's arguments are about, plus
//! the latency/contention instrumentation behind the throughput harness:
//! a log-bucket histogram ([`LogHistogram`]), per-entity wait-queue
//! high-water marks, and a JSON-serialisable [`MetricsSnapshot`].

use pr_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A histogram with power-of-two ("log") buckets: bucket 0 counts the
/// value 0 and bucket *i* ≥ 1 counts values in `[2^(i−1), 2^i)`. Records
/// are O(1), storage is O(log max), and quantiles are read back as the
/// upper bound of the containing bucket (clamped to the observed max) —
/// exact enough for p50/p95/p99 in engine steps without storing samples.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// Bucket index for `value`: its bit length.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one (used to aggregate runs).
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in [0, 1]) as the upper bound of the bucket
    /// containing the target rank, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The raw per-bucket counts (bucket 0 counts the value 0, bucket
    /// *i* ≥ 1 counts `[2^(i−1), 2^i)`). With [`Self::sum`] and
    /// [`Self::max`] this is the histogram's full state — the load
    /// driver ships these across process boundaries as plain integer
    /// lists and rebuilds with [`Self::from_raw_parts`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Reassembles a histogram from parts produced by
    /// [`Self::bucket_counts`] / [`Self::sum`] / [`Self::max`] (the
    /// count is the bucket total).
    pub fn from_raw_parts(buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        let count = buckets.iter().sum();
        LogHistogram { buckets, count, sum, max }
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Counters accumulated by a [`crate::System`] over its lifetime.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Scheduler steps taken (including steps that ended in a wait).
    pub steps: u64,
    /// Atomic operations completed (state-index increments).
    pub ops_executed: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Rollbacks performed to a lock state `> 0`.
    pub partial_rollbacks: u64,
    /// Rollbacks performed to lock state 0 (restarts).
    pub total_rollbacks: u64,
    /// Sum of rollback costs: states (= operations) lost and re-executed.
    /// This is the paper's measure of the damage deadlock handling does.
    pub states_lost: u64,
    /// States lost *beyond* the ideal (MCS-reachable) target because the
    /// SDG strategy had to fall back to an earlier well-defined state —
    /// the price of single-copy storage.
    pub rollback_overshoot: u64,
    /// Wait responses issued.
    pub waits: u64,
    /// Waits for which deadlock detection was skipped because the
    /// installed acquisition-order certificate vouched for every blocked
    /// transaction (`GrantPolicy::Ordered` fast path).
    pub certified_waits: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Deadlock resolutions whose cut set was provably optimal.
    pub cutset_optimal: u64,
    /// Deadlock resolutions that used the greedy fallback.
    pub cutset_greedy: u64,
    /// Peak total local copies held across all live transactions at once
    /// (Theorem 3 accounting: stack elements beyond base for MCS, one per
    /// exclusively held entity for single-copy strategies).
    pub peak_copies: usize,
    /// Times each transaction was chosen as a rollback victim.
    pub preemptions: BTreeMap<TxnId, u32>,
    /// Steps each promoted waiter spent blocked before its lock was
    /// granted (grant latency; immediate grants are not recorded).
    pub grant_latency: LogHistogram,
    /// Total rollback cost (states lost) per resolved deadlock.
    pub resolution_cost: LogHistogram,
    /// Per-entity high-water mark of the wait-queue depth.
    pub queue_depth_high_water: BTreeMap<EntityId, usize>,
    /// Grants forcibly expired by crash recovery ([`crate::System::expire_grant`]).
    pub expired_grants: u64,
    /// Transactions aborted by an upper layer ([`crate::System::abort`]).
    pub aborts: u64,
    /// Repair rollbacks performed (Repair strategy only): rollbacks whose
    /// suffix is re-executed from the replay tape rather than from scratch.
    pub repairs: u64,
    /// Suffix length (states between the rollback target and the
    /// high-water mark) per repair rollback. In a clean pure-Repair run
    /// its mass equals `states_lost` — the same reconciliation the
    /// resolution-cost histogram satisfies for the classic strategies.
    pub repair_suffix: LogHistogram,
    /// Suffix operations recomputed during replay (committed transactions
    /// only; harvested at commit time from the per-transaction ledger).
    pub ops_replayed: u64,
    /// Suffix operations whose taped outcome was reused during replay
    /// (committed transactions only). In a clean pure-Repair run,
    /// `ops_replayed + ops_reused == states_lost`.
    pub ops_reused: u64,
}

impl Metrics {
    /// Largest preemption count suffered by any single transaction — the
    /// mutual-preemption indicator (Figure 2 / Theorem 2).
    pub fn max_preemptions(&self) -> u32 {
        self.preemptions.values().copied().max().unwrap_or(0)
    }

    /// Total rollbacks of either kind.
    pub fn rollbacks(&self) -> u64 {
        self.partial_rollbacks + self.total_rollbacks
    }

    /// Fraction of executed operations that were wasted (re-executed
    /// work), in [0, 1].
    pub fn waste_ratio(&self) -> f64 {
        if self.ops_executed == 0 {
            0.0
        } else {
            self.states_lost as f64 / self.ops_executed as f64
        }
    }

    /// Records a victimisation of `txn`.
    pub fn record_preemption(&mut self, txn: TxnId) {
        *self.preemptions.entry(txn).or_insert(0) += 1;
    }

    /// Raises `entity`'s queue-depth high-water mark to `depth` if deeper.
    pub fn note_queue_depth(&mut self, entity: EntityId, depth: usize) {
        let hw = self.queue_depth_high_water.entry(entity).or_insert(0);
        *hw = (*hw).max(depth);
    }

    /// Deepest wait queue observed on any entity.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth_high_water.values().copied().max().unwrap_or(0)
    }

    /// Folds another metrics record into this one — used by the parallel
    /// engine to aggregate per-worker metrics into a run-level total.
    /// Counters and histograms add; high-water marks take the maximum of
    /// the per-worker maxima (`peak_copies` is therefore a lower bound on
    /// the true cross-worker concurrent peak, which no single worker can
    /// observe).
    pub fn merge(&mut self, other: &Metrics) {
        self.steps += other.steps;
        self.ops_executed += other.ops_executed;
        self.deadlocks += other.deadlocks;
        self.partial_rollbacks += other.partial_rollbacks;
        self.total_rollbacks += other.total_rollbacks;
        self.states_lost += other.states_lost;
        self.rollback_overshoot += other.rollback_overshoot;
        self.waits += other.waits;
        self.commits += other.commits;
        self.cutset_optimal += other.cutset_optimal;
        self.cutset_greedy += other.cutset_greedy;
        self.peak_copies = self.peak_copies.max(other.peak_copies);
        for (txn, n) in &other.preemptions {
            *self.preemptions.entry(*txn).or_insert(0) += n;
        }
        self.grant_latency.merge(&other.grant_latency);
        self.resolution_cost.merge(&other.resolution_cost);
        for (entity, depth) in &other.queue_depth_high_water {
            self.note_queue_depth(*entity, *depth);
        }
        self.expired_grants += other.expired_grants;
        self.aborts += other.aborts;
        self.repairs += other.repairs;
        self.repair_suffix.merge(&other.repair_suffix);
        self.ops_replayed += other.ops_replayed;
        self.ops_reused += other.ops_reused;
    }

    /// A flat, JSON-serialisable summary of these metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            steps: self.steps,
            ops_executed: self.ops_executed,
            commits: self.commits,
            waits: self.waits,
            deadlocks: self.deadlocks,
            partial_rollbacks: self.partial_rollbacks,
            total_rollbacks: self.total_rollbacks,
            states_lost: self.states_lost,
            max_preemptions: self.max_preemptions(),
            max_queue_depth: self.max_queue_depth(),
            grant_latency: HistogramSummary::of(&self.grant_latency),
            resolution_cost: HistogramSummary::of(&self.resolution_cost),
            repairs: self.repairs,
            ops_replayed: self.ops_replayed,
            ops_reused: self.ops_reused,
        }
    }
}

/// Summary statistics of one [`LogHistogram`], for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSummary {
    /// Summarises `h`.
    pub fn of(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            max: h.max(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        );
    }
}

/// A flat summary of [`Metrics`] with hand-rolled JSON serialisation —
/// like `pr-analyze`, the workspace deliberately has no serde_json, so
/// machine-readable output is written by hand from static keys and
/// numeric values (nothing needs escaping).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Scheduler steps taken.
    pub steps: u64,
    /// Atomic operations completed.
    pub ops_executed: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Wait responses issued.
    pub waits: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Partial (lock state > 0) rollbacks.
    pub partial_rollbacks: u64,
    /// Total rollbacks (restarts).
    pub total_rollbacks: u64,
    /// States lost to rollbacks.
    pub states_lost: u64,
    /// Largest preemption count of any transaction.
    pub max_preemptions: u32,
    /// Deepest wait queue observed on any entity.
    pub max_queue_depth: usize,
    /// Grant-latency distribution, in steps.
    pub grant_latency: HistogramSummary,
    /// Per-deadlock resolution-cost distribution, in states lost.
    pub resolution_cost: HistogramSummary,
    /// Repair rollbacks performed (0 under non-Repair strategies).
    pub repairs: u64,
    /// Suffix operations recomputed during replay.
    pub ops_replayed: u64,
    /// Suffix operations reused from the replay tape.
    pub ops_reused: u64,
}

impl MetricsSnapshot {
    /// Serialises the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"steps\":{},\"ops_executed\":{},\"commits\":{},\"waits\":{},\
             \"deadlocks\":{},\"partial_rollbacks\":{},\"total_rollbacks\":{},\
             \"states_lost\":{},\"max_preemptions\":{},\"max_queue_depth\":{},",
            self.steps,
            self.ops_executed,
            self.commits,
            self.waits,
            self.deadlocks,
            self.partial_rollbacks,
            self.total_rollbacks,
            self.states_lost,
            self.max_preemptions,
            self.max_queue_depth
        );
        out.push_str("\"grant_latency\":");
        self.grant_latency.write_json(&mut out);
        out.push_str(",\"resolution_cost\":");
        self.resolution_cost.write_json(&mut out);
        let _ = write!(
            out,
            ",\"repairs\":{},\"ops_replayed\":{},\"ops_reused\":{}}}",
            self.repairs, self.ops_replayed, self.ops_reused
        );
        out
    }
}

/// Counters for the networked front end (`pr-server`): wire traffic,
/// admission, and group-commit behaviour. The engine-side story stays in
/// [`Metrics`]; this struct covers everything that happens between the
/// socket and the batch executor. One instance lives behind the server's
/// stats mutex; the STATS wire request serialises it with
/// [`ServerMetrics::to_json`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Malformed or oversized frames answered with a protocol error.
    pub protocol_errors: u64,
    /// Transactions submitted (admitted into a batch).
    pub submissions: u64,
    /// Submissions rejected before admission (unknown entity, bad
    /// program).
    pub rejected: u64,
    /// Submissions aborted unexecuted because the server was shutting
    /// down.
    pub aborted_on_shutdown: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batch flushes triggered by the batch filling up.
    pub flushes_full: u64,
    /// Batch flushes triggered by the group-commit deadline.
    pub flushes_deadline: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Write-ahead-log records appended (batch records + commit markers).
    pub wal_appends: u64,
    /// Write-ahead-log fsyncs issued (policy flushes, segment rolls, and
    /// the drain sync).
    pub wal_fsyncs: u64,
    /// Write-ahead-log bytes appended.
    pub wal_bytes: u64,
    /// Batches replayed from the redo log at startup (`--recover`).
    pub batches_recovered: u64,
    /// Transactions replayed from the redo log at startup.
    pub txns_recovered: u64,
    /// Transactions per executed batch.
    pub batch_fill: LogHistogram,
    /// Microseconds each submission waited in the open batch before its
    /// flush started — the group-commit latency contribution.
    pub group_wait_us: LogHistogram,
}

impl ServerMetrics {
    /// Folds another record into this one.
    pub fn merge(&mut self, other: &ServerMetrics) {
        self.connections += other.connections;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.protocol_errors += other.protocol_errors;
        self.submissions += other.submissions;
        self.rejected += other.rejected;
        self.aborted_on_shutdown += other.aborted_on_shutdown;
        self.batches += other.batches;
        self.flushes_full += other.flushes_full;
        self.flushes_deadline += other.flushes_deadline;
        self.commits += other.commits;
        self.wal_appends += other.wal_appends;
        self.wal_fsyncs += other.wal_fsyncs;
        self.wal_bytes += other.wal_bytes;
        self.batches_recovered += other.batches_recovered;
        self.txns_recovered += other.txns_recovered;
        self.batch_fill.merge(&other.batch_fill);
        self.group_wait_us.merge(&other.group_wait_us);
    }

    /// Serialises the record as a JSON object (hand-rolled, like the rest
    /// of the workspace's machine-readable output).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"pr-server-metrics-v1\",\"connections\":{},\
             \"frames_in\":{},\"frames_out\":{},\"protocol_errors\":{},\
             \"submissions\":{},\"rejected\":{},\"aborted_on_shutdown\":{},\
             \"batches\":{},\"flushes_full\":{},\"flushes_deadline\":{},\
             \"commits\":{},\"wal_appends\":{},\"wal_fsyncs\":{},\
             \"wal_bytes\":{},\"batches_recovered\":{},\"txns_recovered\":{},",
            self.connections,
            self.frames_in,
            self.frames_out,
            self.protocol_errors,
            self.submissions,
            self.rejected,
            self.aborted_on_shutdown,
            self.batches,
            self.flushes_full,
            self.flushes_deadline,
            self.commits,
            self.wal_appends,
            self.wal_fsyncs,
            self.wal_bytes,
            self.batches_recovered,
            self.txns_recovered
        );
        out.push_str("\"batch_fill\":");
        HistogramSummary::of(&self.batch_fill).write_json(&mut out);
        out.push_str(",\"group_wait_us\":");
        HistogramSummary::of(&self.group_wait_us).write_json(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_tracking() {
        let mut m = Metrics::default();
        assert_eq!(m.max_preemptions(), 0);
        m.record_preemption(TxnId::new(1));
        m.record_preemption(TxnId::new(1));
        m.record_preemption(TxnId::new(2));
        assert_eq!(m.max_preemptions(), 2);
        assert_eq!(m.preemptions[&TxnId::new(1)], 2);
    }

    #[test]
    fn derived_quantities() {
        let m = Metrics {
            partial_rollbacks: 3,
            total_rollbacks: 2,
            states_lost: 50,
            ops_executed: 200,
            ..Default::default()
        };
        assert_eq!(m.rollbacks(), 5);
        assert!((m.waste_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(Metrics::default().waste_ratio(), 0.0);
    }

    #[test]
    fn log_histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 126);
        assert_eq!(h.max(), 100);
        // Rank 5 of 9 falls in the [2,4) bucket, upper bound 3.
        assert_eq!(h.p50(), 3);
        // p99 rank is the final sample; its bucket upper bound (127) is
        // clamped to the observed max.
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 100);
        assert!((h.mean() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge_matches_recording_everything_in_one() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut all = LogHistogram::default();
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 300] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn log_histogram_is_exact_on_zero_and_one() {
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 1);
    }

    #[test]
    fn metrics_merge_adds_counters_and_maxes_high_water_marks() {
        let mut a =
            Metrics { steps: 5, commits: 2, states_lost: 7, peak_copies: 3, ..Default::default() };
        a.record_preemption(TxnId::new(1));
        a.note_queue_depth(EntityId::new(0), 4);
        a.grant_latency.record(8);
        let mut b =
            Metrics { steps: 3, commits: 1, states_lost: 2, peak_copies: 9, ..Default::default() };
        b.record_preemption(TxnId::new(1));
        b.record_preemption(TxnId::new(2));
        b.note_queue_depth(EntityId::new(0), 2);
        b.grant_latency.record(16);
        a.merge(&b);
        assert_eq!(a.steps, 8);
        assert_eq!(a.commits, 3);
        assert_eq!(a.states_lost, 9);
        assert_eq!(a.peak_copies, 9);
        assert_eq!(a.preemptions[&TxnId::new(1)], 2);
        assert_eq!(a.preemptions[&TxnId::new(2)], 1);
        assert_eq!(a.queue_depth_high_water[&EntityId::new(0)], 4);
        assert_eq!(a.grant_latency.count(), 2);
        assert_eq!(a.grant_latency.sum(), 24);
    }

    #[test]
    fn queue_depth_high_water_is_monotone() {
        let mut m = Metrics::default();
        let a = EntityId::new(0);
        m.note_queue_depth(a, 2);
        m.note_queue_depth(a, 5);
        m.note_queue_depth(a, 3);
        m.note_queue_depth(EntityId::new(1), 1);
        assert_eq!(m.queue_depth_high_water[&a], 5);
        assert_eq!(m.max_queue_depth(), 5);
    }

    #[test]
    fn log_histogram_raw_parts_round_trip() {
        let mut h = LogHistogram::default();
        for v in [0u64, 1, 3, 8, 500] {
            h.record(v);
        }
        let rebuilt = LogHistogram::from_raw_parts(h.bucket_counts().to_vec(), h.sum(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), 5);
        assert_eq!(rebuilt.p99(), h.p99());
    }

    #[test]
    fn server_metrics_merge_and_json() {
        let mut a =
            ServerMetrics { connections: 2, submissions: 10, commits: 9, ..Default::default() };
        a.batch_fill.record(5);
        a.group_wait_us.record(120);
        let mut b = ServerMetrics {
            connections: 1,
            submissions: 4,
            commits: 4,
            protocol_errors: 1,
            ..Default::default()
        };
        b.batch_fill.record(4);
        a.merge(&b);
        assert_eq!(a.connections, 3);
        assert_eq!(a.submissions, 14);
        assert_eq!(a.commits, 13);
        assert_eq!(a.protocol_errors, 1);
        assert_eq!(a.batch_fill.count(), 2);
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"schema\":\"pr-server-metrics-v1\"",
            "\"connections\":3",
            "\"submissions\":14",
            "\"commits\":13",
            "\"protocol_errors\":1",
            "\"batch_fill\":{\"count\":2",
            "\"group_wait_us\":{\"count\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn snapshot_json_is_well_formed_and_complete() {
        let mut m = Metrics { steps: 10, commits: 3, deadlocks: 1, ..Default::default() };
        m.grant_latency.record(4);
        m.grant_latency.record(9);
        m.resolution_cost.record(12);
        m.note_queue_depth(EntityId::new(7), 4);
        let json = m.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"steps\":10",
            "\"commits\":3",
            "\"deadlocks\":1",
            "\"max_queue_depth\":4",
            "\"grant_latency\":{\"count\":2",
            "\"resolution_cost\":{\"count\":1",
            "\"p95\":",
            "\"p99\":",
            "\"repairs\":0",
            "\"ops_replayed\":0",
            "\"ops_reused\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
