//! # pr-core — the partial-rollback deadlock removal engine
//!
//! This crate is the paper's contribution proper: a deterministic
//! two-phase-locking execution engine whose response to deadlock is a
//! **partial rollback** — returning a victim to the latest state in which
//! it no longer holds the contested lock — rather than the traditional
//! total removal and restart.
//!
//! ## Architecture
//!
//! [`System`] owns the database ([`pr_storage::GlobalStore`]), the lock
//! manager ([`pr_lock::LockTable`]), the concurrency graph
//! ([`pr_graph::WaitsForGraph`]) and one [`runtime::TxnRuntime`] per live
//! transaction. A [`Scheduler`] chooses which ready transaction executes
//! its next atomic operation; every blocked lock request triggers the §3
//! deadlock test (reachability in the waits-for graph), and every detected
//! deadlock is resolved by the configured combination of:
//!
//! * a rollback strategy ([`config::StrategyKind`]) — **Total** (restart
//!   from scratch, the baseline of the paper's refs \[7,10\]), **MCS**
//!   (multi-lock copy stacks, §4, rollback to *any* lock state), or **SDG**
//!   (single-copy workspace + state-dependency graph, §4, rollback to the
//!   deepest *well-defined* lock state at or below the ideal target), and
//! * a victim policy ([`config::VictimPolicyKind`]) — **MinCost** (the §3.1
//!   optimum, vulnerable to potentially infinite mutual preemption),
//!   **PartialOrder** (Theorem 2's ω-restricted policy, livelock-free),
//!   **Youngest**, or **ConflictCauser**.
//!
//! Multi-cycle deadlocks (shared locks, §3.2) are resolved through the
//! min-cost vertex-cut solvers in [`pr_graph::cutset`].
//!
//! The engine is fully deterministic given a scheduler, which is what makes
//! the paper's figures exactly reproducible (see `pr-sim`).

pub mod config;
pub mod deadlock;
pub mod engine;
pub mod error;
pub mod event;
pub mod fingerprint;
pub mod metrics;
pub mod runtime;
pub mod scheduler;
#[cfg(feature = "invariants")]
pub mod sentinel;
pub mod victim;

pub use config::{StrategyKind, SystemConfig, VictimPolicyKind};
pub use deadlock::{DeadlockEvent, ResolutionAudit, ResolutionPlan};
pub use engine::{StepOutcome, System};
pub use error::EngineError;
pub use event::{Event, EventLog};
pub use fingerprint::{canonical_state, canonical_state_relabeled, fingerprint};
pub use metrics::{HistogramSummary, LogHistogram, Metrics, MetricsSnapshot, ServerMetrics};
pub use pr_lock::{derive_order, EntityOrder, GrantPolicy, PrecedenceCycle};
pub use runtime::RuntimeView;
pub use scheduler::{Recording, RoundRobin, Scheduler};
