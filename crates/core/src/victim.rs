//! Victim candidate construction and policy filtering (§3.1–§3.2).
//!
//! For each deadlock cycle, every member transaction is in principle a
//! candidate victim: rolling it back to (at or below) its lock state for
//! the entity its successor waits on breaks the cycle. The rollback
//! strategy adjusts the *reachable* target — SDG must land on a
//! well-defined state, total rollback always lands on state 0 — and the
//! §3.1 cost function prices the candidate. The victim policy then
//! restricts which members may be chosen, trading optimality against the
//! livelock-freedom of Theorem 2.

use crate::config::{StrategyKind, VictimPolicyKind};
use crate::runtime::RuntimeView;
use pr_graph::{CandidateRollback, Cycle};
use pr_model::TxnId;

/// Builds the candidate for one cycle member under the given strategy, or
/// `None` if the member cannot be rolled back (shrinking transactions —
/// which, being unblockable, should never appear on a cycle).
fn candidate_for<V: RuntimeView>(
    txns: &V,
    strategy: StrategyKind,
    txn: TxnId,
    holds: pr_model::EntityId,
) -> Option<CandidateRollback> {
    let rt = txns.runtime(txn)?;
    if !rt.rollbackable() {
        return None;
    }
    let ideal = match rt.lock_state_for(holds) {
        Some(ls) => ls,
        // A fair-queue arc may point at a member *queued ahead* on the
        // contended entity rather than holding it; the member is then
        // blocked on that same entity. Cancelling its pending request —
        // a rollback to its current lock state — re-enqueues it at the
        // tail, which breaks the arc without losing any states (the
        // strategy may still deepen the target, e.g. total restarts).
        None if rt.blocked_on == Some(holds) => rt.lock_index(),
        None => return None,
    };
    let target = rt.reachable_target(strategy, ideal);
    let cost = rt.cost_to_lock_state(target);
    let conflict = rt.conflict_state_for(ideal);
    Some(CandidateRollback { txn, target, ideal, cost, conflict })
}

/// Builds the cut-set instance for a deadlock: one candidate list per
/// cycle, already filtered by the victim policy.
///
/// Every returned list is non-empty: the conflict causer is a member of
/// every cycle (§3.2) and serves as the fallback candidate whenever a
/// policy's preferred set is empty on some cycle.
pub fn build_instance<V: RuntimeView>(
    cycles: &[Cycle],
    policy: VictimPolicyKind,
    strategy: StrategyKind,
    causer: TxnId,
    txns: &V,
) -> Vec<Vec<CandidateRollback>> {
    let causer_entry = txns.runtime(causer).map(|rt| rt.entry_order).unwrap_or(u64::MAX);
    cycles
        .iter()
        .map(|cycle| {
            let all: Vec<(TxnId, CandidateRollback, u64)> = cycle
                .members
                .iter()
                .filter_map(|m| {
                    let cand = candidate_for(txns, strategy, m.txn, m.holds)?;
                    let entry = txns.runtime(m.txn).map(|rt| rt.entry_order).unwrap_or(u64::MAX);
                    Some((m.txn, cand, entry))
                })
                .collect();
            let filtered: Vec<CandidateRollback> = match policy {
                VictimPolicyKind::MinCost => all.iter().map(|(_, c, _)| *c).collect(),
                VictimPolicyKind::PartialOrder => {
                    // ω = "entered the system later than": victims must be
                    // strictly *younger* than the causer; when the causer
                    // is the youngest member, the causer itself yields.
                    // Any time-invariant order satisfies Theorem 2 (no
                    // mutual preemption); this direction additionally
                    // guarantees termination, because the globally oldest
                    // transaction can never be chosen — not through
                    // others' conflicts (it is younger than no one) and
                    // not through its own (a cycle has at least one other,
                    // necessarily younger, member) — so it always
                    // progresses and the system drains by induction.
                    let younger: Vec<CandidateRollback> = all
                        .iter()
                        .filter(|(t, _, entry)| *t != causer && *entry > causer_entry)
                        .map(|(_, c, _)| *c)
                        .collect();
                    if younger.is_empty() {
                        all.iter().filter(|(t, _, _)| *t == causer).map(|(_, c, _)| *c).collect()
                    } else {
                        younger
                    }
                }
                VictimPolicyKind::Youngest => all
                    .iter()
                    .max_by_key(|(t, _, entry)| (*entry, *t))
                    .map(|(_, c, _)| vec![*c])
                    .unwrap_or_default(),
                VictimPolicyKind::ConflictCauser => {
                    all.iter().filter(|(t, _, _)| *t == causer).map(|(_, c, _)| *c).collect()
                }
            };
            debug_assert!(
                !filtered.is_empty() || all.is_empty(),
                "policy filtering must leave a candidate when any exist"
            );
            filtered
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TxnRuntime;
    use pr_graph::CycleMember;
    use pr_model::{EntityId, LockIndex, LockMode, ProgramBuilder, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// Builds a runtime that has locked the given entities in order, with
    /// `pad` filler operations between lock requests so costs differ.
    fn rt_with_locks(id: u32, entry: u64, entities: &[u32], pad: usize) -> TxnRuntime {
        let mut b = ProgramBuilder::new();
        for &ent in entities {
            b = b.lock_exclusive(e(ent)).pad(pad);
        }
        let p = Arc::new(b.build_unchecked());
        let mut rt = TxnRuntime::new(t(id), p, entry, StrategyKind::Mcs);
        for &ent in entities {
            rt.complete_lock(e(ent), LockMode::Exclusive, Value::ZERO);
            for _ in 0..pad {
                rt.advance();
            }
        }
        rt
    }

    fn two_txn_cycle() -> (Vec<Cycle>, BTreeMap<TxnId, TxnRuntime>) {
        // T1 (entry 0) holds a then b...; T2 (entry 1) holds c.
        // Cycle: T1 must release a (lock state 0), T2 must release c.
        let cycle = Cycle {
            members: vec![
                CycleMember { txn: t(1), holds: e(0) },
                CycleMember { txn: t(2), holds: e(2) },
            ],
        };
        let mut txns = BTreeMap::new();
        txns.insert(t(1), rt_with_locks(1, 0, &[0, 1], 3));
        txns.insert(t(2), rt_with_locks(2, 1, &[2], 1));
        (vec![cycle], txns)
    }

    #[test]
    fn min_cost_keeps_all_members() {
        let (cycles, txns) = two_txn_cycle();
        let inst =
            build_instance(&cycles, VictimPolicyKind::MinCost, StrategyKind::Mcs, t(1), &txns);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].len(), 2);
        // T1 rolling to release a (lock state 0) loses all 8 states;
        // T2 rolling to release c loses 2 states.
        let c1 = inst[0].iter().find(|c| c.txn == t(1)).unwrap();
        let c2 = inst[0].iter().find(|c| c.txn == t(2)).unwrap();
        assert_eq!(c1.cost, 8);
        assert_eq!(c1.target, LockIndex::ZERO);
        assert_eq!(c2.cost, 2);
        // The conflicting access is where the contested lock was issued.
        assert_eq!(c1.conflict, pr_model::StateIndex::ZERO);
        assert_eq!(c2.conflict, pr_model::StateIndex::ZERO);
    }

    #[test]
    fn partial_order_prefers_strictly_younger_than_causer() {
        let (cycles, txns) = two_txn_cycle();
        // Causer T1 (entry 0): only T2 (entry 1) is younger.
        let inst =
            build_instance(&cycles, VictimPolicyKind::PartialOrder, StrategyKind::Mcs, t(1), &txns);
        assert_eq!(inst[0].iter().map(|c| c.txn).collect::<Vec<_>>(), vec![t(2)]);
    }

    #[test]
    fn partial_order_falls_back_to_causer_when_it_is_youngest() {
        let (cycles, txns) = two_txn_cycle();
        // Causer T2 (entry 1) is the youngest member: it yields itself.
        // The oldest transaction is never chosen either way.
        let inst =
            build_instance(&cycles, VictimPolicyKind::PartialOrder, StrategyKind::Mcs, t(2), &txns);
        assert_eq!(inst[0].iter().map(|c| c.txn).collect::<Vec<_>>(), vec![t(2)]);
    }

    #[test]
    fn youngest_picks_latest_entry() {
        let (cycles, txns) = two_txn_cycle();
        let inst =
            build_instance(&cycles, VictimPolicyKind::Youngest, StrategyKind::Mcs, t(1), &txns);
        assert_eq!(inst[0].iter().map(|c| c.txn).collect::<Vec<_>>(), vec![t(2)]);
    }

    #[test]
    fn conflict_causer_picks_only_the_causer() {
        let (cycles, txns) = two_txn_cycle();
        let inst = build_instance(
            &cycles,
            VictimPolicyKind::ConflictCauser,
            StrategyKind::Mcs,
            t(2),
            &txns,
        );
        assert_eq!(inst[0].iter().map(|c| c.txn).collect::<Vec<_>>(), vec![t(2)]);
    }

    #[test]
    fn total_strategy_candidates_target_zero() {
        let (cycles, txns) = two_txn_cycle();
        let inst =
            build_instance(&cycles, VictimPolicyKind::MinCost, StrategyKind::Total, t(1), &txns);
        for c in &inst[0] {
            assert_eq!(c.target, LockIndex::ZERO);
        }
        // Total rollback of T2 costs its full 2 states; of T1 all 8.
        let c2 = inst[0].iter().find(|c| c.txn == t(2)).unwrap();
        assert_eq!(c2.cost, 2);
    }

    #[test]
    fn missing_txn_is_skipped() {
        let cycle = Cycle { members: vec![CycleMember { txn: t(9), holds: e(0) }] };
        let inst = build_instance(
            &[cycle],
            VictimPolicyKind::MinCost,
            StrategyKind::Mcs,
            t(9),
            &BTreeMap::<TxnId, TxnRuntime>::new(),
        );
        assert!(inst[0].is_empty());
    }

    /// A fair-queue arc can point at a member that is merely *queued
    /// ahead* on the contended entity, not holding it. Such a member must
    /// still be a candidate — cancelling its pending request (rollback to
    /// its current lock state, zero states lost under MCS) re-enqueues it
    /// at the tail and breaks the arc.
    #[test]
    fn queued_ahead_member_yields_a_requeue_candidate() {
        use crate::runtime::Phase;
        let cycle = Cycle {
            members: vec![
                CycleMember { txn: t(1), holds: e(0) },
                // T2 does not hold e(5); it is queued ahead of T1's
                // successor on it, blocked on that same entity.
                CycleMember { txn: t(2), holds: e(5) },
            ],
        };
        let mut txns = BTreeMap::new();
        txns.insert(t(1), rt_with_locks(1, 0, &[0, 1], 3));
        let mut rt2 = rt_with_locks(2, 1, &[2], 1);
        rt2.phase = Phase::Blocked;
        rt2.blocked_on = Some(e(5));
        let current = rt2.lock_index();
        txns.insert(t(2), rt2);

        let inst = build_instance(
            &cycle_vec(cycle.clone()),
            VictimPolicyKind::MinCost,
            StrategyKind::Mcs,
            t(1),
            &txns,
        );
        let c2 =
            inst[0].iter().find(|c| c.txn == t(2)).expect("queued-ahead member is a candidate");
        assert_eq!(c2.ideal, current);
        assert_eq!(c2.target, current);
        assert_eq!(c2.cost, 0, "cancel-and-requeue loses no states under MCS");
        assert_eq!(c2.conflict, txns[&t(2)].state, "requeue conflicts at the current state");

        // Under the partial-order policy the queued-ahead member (younger
        // than the causer) must be selectable — previously the candidate
        // list came back empty and resolution failed outright.
        let inst = build_instance(
            &cycle_vec(cycle),
            VictimPolicyKind::PartialOrder,
            StrategyKind::Total,
            t(1),
            &txns,
        );
        assert_eq!(inst[0].iter().map(|c| c.txn).collect::<Vec<_>>(), vec![t(2)]);
        assert_eq!(inst[0][0].target, LockIndex::ZERO, "total strategy still restarts");
    }

    fn cycle_vec(c: Cycle) -> Vec<Cycle> {
        vec![c]
    }
}
