//! Deadlock events and resolution planning (§3's rule 3).

use crate::config::SystemConfig;
use crate::runtime::RuntimeView;
use crate::victim;
use pr_graph::{cutset, CandidateRollback, Cycle};
use pr_model::{EntityId, TxnId};
use serde::{Deserialize, Serialize};

/// A detected deadlock: the request that would close cycle(s) in the
/// concurrency graph.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DeadlockEvent {
    /// The transaction whose lock request caused the deadlock.
    pub causer: TxnId,
    /// The entity it requested.
    pub entity: EntityId,
    /// Every cycle the wait response would create (all pass through
    /// `causer`, §3.2), capped at the configured enumeration limit.
    pub cycles: Vec<Cycle>,
}

/// The rollbacks chosen to break a deadlock.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ResolutionPlan {
    /// Planned rollbacks, one per victim.
    pub rollbacks: Vec<CandidateRollback>,
    /// Sum of the victims' §3.1 costs.
    pub total_cost: u64,
    /// Whether the cut-set solver proved optimality (within the policy's
    /// candidate restriction).
    pub optimal: bool,
}

/// A complete record of one deadlock resolution, captured by the engine
/// at planning time (before any rollback executes) when resolution
/// auditing is enabled. External brute-force oracles — the `pr-explore`
/// model checker in particular — replay the solver inputs recorded here to
/// verify §3.1 victim-cost optimality and to measure the §3.2 cut
/// heuristic's gap from the exact optimum.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResolutionAudit {
    /// The deadlock as detected.
    pub event: DeadlockEvent,
    /// The candidate instance with *no* policy filtering (every cycle
    /// member, MinCost semantics) — the §3.1/§3.2 search space.
    pub unfiltered: Vec<Vec<CandidateRollback>>,
    /// The instance after the configured victim policy's filtering, as
    /// actually handed to the cut-set solver (empty cycles dropped).
    pub filtered: Vec<Vec<CandidateRollback>>,
    /// The plan the engine executed.
    pub plan: ResolutionPlan,
    /// Whether every cycle member held its cycle entity *exclusively* at
    /// detection time — the §3.1 single-cycle regime where the chosen
    /// victim's cost must equal the brute-force minimum over the cycle.
    pub exclusive_only: bool,
    /// Entry order (ω rank) of every transaction on a cycle, for checking
    /// Theorem 2's victims-younger-than-causer restriction.
    pub entry_orders: std::collections::BTreeMap<TxnId, u64>,
}

/// Plans the resolution of `event`: builds the policy-filtered candidate
/// instance and solves the minimum-cost vertex-cut problem over the
/// cycles.
///
/// For the exclusive-only case the instance has a single cycle and this
/// reduces to §3.1's "traverse the cycle, pick the cheapest legal victim".
pub fn plan_resolution<V: RuntimeView>(
    event: &DeadlockEvent,
    config: &SystemConfig,
    txns: &V,
) -> ResolutionPlan {
    let instance =
        victim::build_instance(&event.cycles, config.victim, config.strategy, event.causer, txns);
    // Cycles whose candidates all vanished (defensively) cannot constrain
    // the cut; drop them rather than making the instance unsolvable.
    let instance: Vec<Vec<CandidateRollback>> =
        instance.into_iter().filter(|c| !c.is_empty()).collect();
    let solution = cutset::solve(&instance, config.cutset_node_budget);
    ResolutionPlan {
        rollbacks: solution.rollbacks,
        total_cost: solution.total_cost,
        optimal: solution.optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StrategyKind, VictimPolicyKind};
    use crate::runtime::TxnRuntime;
    use pr_graph::CycleMember;
    use pr_model::{LockMode, ProgramBuilder, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// Reproduces Figure 1(a)'s costs: T2 waits from state 12 having
    /// requested b from state 8; T3 from 11 having requested c from 5;
    /// T4 from 15 having requested e from 10. Min-cost picks T2 (cost 4).
    #[test]
    fn figure1_costs_select_t2() {
        let mut txns = BTreeMap::new();
        // Build runtimes whose state indices match the figure. Each locks
        // one relevant entity at the figure's request state and then
        // advances to its waiting state.
        let mk = |id: u32, entity: u32, req_state: u32, wait_state: u32| {
            let mut b = ProgramBuilder::new().lock_exclusive(e(99 + id)).pad(200);
            b = b.lock_exclusive(e(entity)).pad(200);
            let p = Arc::new(b.build_unchecked());
            let mut rt = TxnRuntime::new(t(id), p, u64::from(id), StrategyKind::Mcs);
            // Advance to req_state via a warm-up lock + padding.
            rt.complete_lock(e(99 + id), LockMode::Exclusive, Value::ZERO);
            while rt.state.raw() < req_state {
                rt.advance();
            }
            rt.complete_lock(e(entity), LockMode::Exclusive, Value::ZERO);
            while rt.state.raw() < wait_state {
                rt.advance();
            }
            rt
        };
        txns.insert(t(2), mk(2, 1, 8, 12)); // holds b, requested from 8, waits at 12
        txns.insert(t(3), mk(3, 2, 5, 11)); // holds c
        txns.insert(t(4), mk(4, 4, 10, 15)); // holds e

        let event = DeadlockEvent {
            causer: t(2),
            entity: e(4),
            cycles: vec![Cycle {
                members: vec![
                    CycleMember { txn: t(2), holds: e(1) },
                    CycleMember { txn: t(3), holds: e(2) },
                    CycleMember { txn: t(4), holds: e(4) },
                ],
            }],
        };
        let config = SystemConfig::new(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        let plan = plan_resolution(&event, &config, &txns);
        assert!(plan.optimal);
        assert_eq!(plan.total_cost, 4, "T2's rollback costs 12-8=4");
        assert_eq!(plan.rollbacks.len(), 1);
        assert_eq!(plan.rollbacks[0].txn, t(2));
    }

    #[test]
    fn empty_event_plans_nothing() {
        let event = DeadlockEvent { causer: t(1), entity: e(0), cycles: vec![] };
        let config = SystemConfig::default();
        let plan = plan_resolution(&event, &config, &BTreeMap::<TxnId, TxnRuntime>::new());
        assert!(plan.rollbacks.is_empty());
        assert_eq!(plan.total_cost, 0);
    }
}
