//! Engine configuration: rollback strategy, victim policy, grant policy,
//! limits.

use pr_lock::GrantPolicy;
use serde::{Deserialize, Serialize};

/// Which §4 rollback implementation the system runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Total removal and restart — the baseline the paper improves on.
    /// Single-copy workspace; every rollback goes to lock state 0.
    Total,
    /// Multi-lock copy strategy: per-lock-state value stacks allow rollback
    /// to *any* lock state, at up to `n(n+1)/2` copies (Theorem 3).
    Mcs,
    /// State-dependency-graph strategy: single-copy workspace, rollback to
    /// the deepest **well-defined** lock state at or below the ideal target
    /// (Theorem 4) — total-rollback storage cost, near-MCS rollback depth.
    Sdg,
    /// Bounded-copy MCS: version stacks capped at the given number of
    /// copies per entity/variable, evicting the oldest copy on overflow.
    /// Implements the extension proposed in the paper's closing paragraph
    /// ("the state-dependency graph implementation … can easily be
    /// extended to allow more than one local copy"): budget 1 behaves
    /// like the single-copy strategies, a large budget like full MCS,
    /// and the sweep in between answers the paper's open question of how
    /// bounded extra storage buys back well-defined states.
    Bounded(u32),
    /// Transaction repair (Veldhuizen, arXiv 1403.5645): lock state rolls
    /// back exactly like MCS (to the conflicting access, §4's ideal
    /// target), but instead of discarding the suffix's work the victim
    /// records a replay tape and deterministically *re-executes* the
    /// suffix against current entity values, reusing every operation
    /// whose inputs did not change. Rollback depth and victim choice are
    /// identical to MCS (planner-equivalent by construction); the saving
    /// is re-execution work, accounted as `ops_reused` vs `ops_replayed`.
    Repair,
}

impl StrategyKind {
    /// All strategies, for sweeps.
    pub const ALL: [StrategyKind; 4] =
        [StrategyKind::Total, StrategyKind::Mcs, StrategyKind::Sdg, StrategyKind::Repair];

    /// Short display name used in experiment tables.
    pub fn name(self) -> String {
        match self {
            StrategyKind::Total => "total".into(),
            StrategyKind::Mcs => "mcs".into(),
            StrategyKind::Sdg => "sdg".into(),
            StrategyKind::Bounded(k) => format!("bounded-{k}"),
            StrategyKind::Repair => "repair".into(),
        }
    }

    /// Parses a strategy name as the CLI bins spell it: `total`, `mcs`,
    /// `sdg`, `repair`, or `bounded-K`. One parser for all five bins so
    /// `repair` cannot be accepted in one sweep and rejected in another.
    pub fn parse(name: &str) -> Option<StrategyKind> {
        match name {
            "total" => Some(StrategyKind::Total),
            "mcs" => Some(StrategyKind::Mcs),
            "sdg" => Some(StrategyKind::Sdg),
            "repair" => Some(StrategyKind::Repair),
            other => {
                let k = other.strip_prefix("bounded-")?;
                k.parse().ok().map(StrategyKind::Bounded)
            }
        }
    }
}

/// How the victim(s) of a deadlock are chosen (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VictimPolicyKind {
    /// Minimise total rollback cost with full freedom — the §3.1 optimum.
    /// Exercising it without restriction risks *potentially infinite
    /// mutual preemption* (Figure 2).
    MinCost,
    /// Theorem 2's remedy: restrict victims by a time-invariant partial
    /// order ω on entry times. We orient ω so that victims are strictly
    /// *younger* than the causer (the wound-wait direction), with the
    /// causer yielding when it is itself the youngest on the cycle. Any
    /// orientation rules out mutual preemption (Theorem 2); this one also
    /// guarantees termination: the globally oldest transaction can never
    /// be a victim, so it always progresses.
    PartialOrder,
    /// Roll back the youngest (latest-entry) member of each cycle —
    /// a common heuristic baseline.
    Youngest,
    /// Always roll back the transaction that caused the conflict. Sound
    /// for multi-cycle deadlocks too, since every cycle passes through the
    /// causer (§3.2).
    ConflictCauser,
}

impl VictimPolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [VictimPolicyKind; 4] = [
        VictimPolicyKind::MinCost,
        VictimPolicyKind::PartialOrder,
        VictimPolicyKind::Youngest,
        VictimPolicyKind::ConflictCauser,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicyKind::MinCost => "min-cost",
            VictimPolicyKind::PartialOrder => "partial-order",
            VictimPolicyKind::Youngest => "youngest",
            VictimPolicyKind::ConflictCauser => "causer",
        }
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Rollback implementation.
    pub strategy: StrategyKind,
    /// Victim selection policy.
    pub victim: VictimPolicyKind,
    /// Lock-grant policy: paper-faithful barging (default) or the
    /// anti-starvation fair queue. See [`GrantPolicy`].
    pub grant_policy: GrantPolicy,
    /// Maximum cycles enumerated per deadlock (multi-cycle deadlocks
    /// beyond the cap are still broken: every cycle passes through the
    /// causer, and unresolved cycles resurface on the next blocked step).
    pub cycle_cap: usize,
    /// Node budget for the exact cut-set solver before falling back to the
    /// greedy heuristic.
    pub cutset_node_budget: u64,
    /// Safety valve for `run_to_completion`: abort after this many steps.
    pub max_steps: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            strategy: StrategyKind::Mcs,
            victim: VictimPolicyKind::PartialOrder,
            grant_policy: GrantPolicy::default(),
            cycle_cap: 64,
            cutset_node_budget: 200_000,
            max_steps: 10_000_000,
        }
    }
}

impl SystemConfig {
    /// A configuration with the given strategy and policy, default limits.
    pub fn new(strategy: StrategyKind, victim: VictimPolicyKind) -> Self {
        SystemConfig { strategy, victim, ..Default::default() }
    }

    /// The same configuration with the given grant policy.
    pub fn with_grant_policy(mut self, grant_policy: GrantPolicy) -> Self {
        self.grant_policy = grant_policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SystemConfig::default();
        assert_eq!(c.strategy, StrategyKind::Mcs);
        assert_eq!(c.victim, VictimPolicyKind::PartialOrder);
        assert_eq!(c.grant_policy, GrantPolicy::Barging, "paper-faithful default");
        assert!(c.cycle_cap > 0);
        assert!(c.max_steps > 0);
    }

    #[test]
    fn grant_policy_builder_overrides_only_that_field() {
        let c = SystemConfig::new(StrategyKind::Total, VictimPolicyKind::Youngest)
            .with_grant_policy(GrantPolicy::FairQueue);
        assert_eq!(c.grant_policy, GrantPolicy::FairQueue);
        assert_eq!(c.strategy, StrategyKind::Total);
        assert_eq!(c.victim, VictimPolicyKind::Youngest);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> =
            StrategyKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(StrategyKind::Bounded(3).name(), "bounded-3");
        let names: std::collections::HashSet<&str> =
            VictimPolicyKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn parse_round_trips_every_name() {
        for s in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(&s.name()), Some(s));
        }
        assert_eq!(StrategyKind::parse("bounded-3"), Some(StrategyKind::Bounded(3)));
        assert_eq!(StrategyKind::parse("repair"), Some(StrategyKind::Repair));
        assert_eq!(StrategyKind::parse("restart"), None);
        assert_eq!(StrategyKind::parse("bounded-"), None);
        assert_eq!(StrategyKind::parse(""), None);
    }

    #[test]
    fn new_overrides_strategy_and_policy_only() {
        let c = SystemConfig::new(StrategyKind::Sdg, VictimPolicyKind::MinCost);
        assert_eq!(c.strategy, StrategyKind::Sdg);
        assert_eq!(c.victim, VictimPolicyKind::MinCost);
        assert_eq!(c.cycle_cap, SystemConfig::default().cycle_cap);
    }
}
