//! The execution engine: 2PL with partial-rollback deadlock removal.

use crate::config::SystemConfig;
use crate::deadlock::{plan_resolution, DeadlockEvent, ResolutionPlan};
use crate::error::EngineError;
use crate::event::{Event, EventLog, RollbackReason};
use crate::metrics::Metrics;
use crate::runtime::{Phase, TxnRuntime};
use crate::scheduler::Scheduler;
use pr_graph::cycles::cycles_on_wait;
use pr_graph::{CandidateRollback, WaitsForGraph};
use pr_lock::{EntityOrder, GrantPolicy, HeldLock, LockTable, RequestOutcome};
use pr_model::{EntityId, LockIndex, LockMode, Op, TransactionProgram, TxnId};
use pr_storage::GlobalStore;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Result of stepping one transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The operation completed; the transaction remains ready.
    Progressed,
    /// The operation was a lock request that must wait (no deadlock).
    Blocked {
        /// The contested entity.
        entity: EntityId,
    },
    /// The request would have deadlocked; the plan was executed.
    DeadlockResolved {
        /// The detected deadlock.
        event: DeadlockEvent,
        /// The rollbacks performed.
        plan: ResolutionPlan,
    },
    /// The transaction committed.
    Committed,
}

/// Maximum resolution rounds per blocked request. Each round performs at
/// least one rollback, which strictly reduces held locks, so this bound is
/// never reached by a correct engine; it converts a hypothetical
/// resolution-loop bug into a visible error instead of an infinite loop.
const MAX_RESOLUTION_ROUNDS: usize = 1024;

/// A concurrent database system executing two-phase transactions under the
/// configured rollback strategy and victim policy.
///
/// `Clone` snapshots the entire system — database, lock table, graph, and
/// every transaction runtime — which is what lets the model checker in
/// `pr-explore` branch the execution at every scheduling choice.
#[derive(Clone)]
pub struct System {
    store: GlobalStore,
    table: LockTable,
    wfg: WaitsForGraph,
    txns: BTreeMap<TxnId, TxnRuntime>,
    config: SystemConfig,
    metrics: Metrics,
    next_txn: u32,
    entry_counter: u64,
    /// Every deadlock the system resolved, with the plan used — the
    /// scenario tests and figure reproductions assert on this log.
    history: Vec<(DeadlockEvent, ResolutionPlan)>,
    /// Optional structured event log (off by default).
    events: EventLog,
    /// Step at which each currently blocked transaction blocked, for the
    /// grant-latency histogram.
    blocked_since: BTreeMap<TxnId, u64>,
    /// Incrementally maintained total of live local copies, so the peak
    /// metric costs O(1) per operation instead of a scan over all
    /// transactions.
    copies_cache: BTreeMap<TxnId, usize>,
    copies_total: usize,
    /// When `Some`, every resolved deadlock also records a
    /// [`ResolutionAudit`] — the raw solver inputs captured *before* the
    /// rollbacks execute — for external optimality oracles. Off by default.
    audits: Option<Vec<crate::deadlock::ResolutionAudit>>,
    /// The installed acquisition-order certificate, if any (only
    /// consulted under [`GrantPolicy::Ordered`]).
    certified_order: Option<EntityOrder>,
    /// Admitted transactions whose whole lock sequence the certificate
    /// vouches for. Deadlock detection is skipped on a wait only when the
    /// waiter *and every other blocked transaction* are covered: covered
    /// transactions acquire in strictly ascending certified rank, so any
    /// hold-and-wait cycle among them would force ranks to increase
    /// forever — no cycle can exist and there is nothing to detect.
    covered: BTreeSet<TxnId>,
    /// Runtime invariant sentinel (feature `invariants`): bounded event
    /// trace plus workload facts for the Theorem 1 / ω-order checks.
    #[cfg(feature = "invariants")]
    sentinel: crate::sentinel::Sentinel,
}

impl System {
    /// Creates a system over `store` with the given configuration.
    pub fn new(store: GlobalStore, config: SystemConfig) -> Self {
        System {
            store,
            table: LockTable::with_policy(config.grant_policy),
            wfg: WaitsForGraph::new(),
            txns: BTreeMap::new(),
            config,
            metrics: Metrics::default(),
            next_txn: 1,
            entry_counter: 0,
            history: Vec::new(),
            events: EventLog::new(),
            blocked_since: BTreeMap::new(),
            copies_cache: BTreeMap::new(),
            copies_total: 0,
            audits: None,
            certified_order: None,
            covered: BTreeSet::new(),
            #[cfg(feature = "invariants")]
            sentinel: crate::sentinel::Sentinel::new(),
        }
    }

    /// Installs an acquisition-order certificate, recomputing coverage
    /// for every already-admitted transaction (later admissions are
    /// checked as they arrive). Returns how many admitted transactions
    /// the order covers. Transactions the order cannot vouch for simply
    /// stay uncovered: their waits run the full partial-rollback
    /// machinery, so a permissive install is always safe.
    pub fn install_order(&mut self, order: EntityOrder) -> usize {
        self.covered = self
            .txns
            .values()
            .filter(|rt| order.covers_program(&rt.program))
            .map(|rt| rt.id)
            .collect();
        self.certified_order = Some(order);
        self.covered.len()
    }

    /// Installs a certificate strictly: errors (installing nothing)
    /// unless the order covers every already-admitted transaction. This
    /// is the runtime checker that rejects forged certificates — an
    /// order violating some program's lock sequence, or any "certificate"
    /// for a workload whose precedence graph is cyclic (no order can
    /// cover all of its programs).
    pub fn install_certificate(&mut self, order: EntityOrder) -> Result<usize, EngineError> {
        for rt in self.txns.values() {
            if let Some((pc, entity)) = order.first_violation(&rt.program) {
                return Err(EngineError::CertificateViolation { txn: rt.id, pc, entity });
            }
        }
        Ok(self.install_order(order))
    }

    /// The installed acquisition-order certificate, if any.
    pub fn certified_order(&self) -> Option<&EntityOrder> {
        self.certified_order.as_ref()
    }

    /// Admitted transactions the installed certificate covers.
    pub fn covered_txns(&self) -> Vec<TxnId> {
        self.covered.iter().copied().collect()
    }

    /// Whether `causer`'s wait is provably cycle-free without running
    /// detection: the policy is [`GrantPolicy::Ordered`] and the
    /// certificate vouches for the waiter and for every currently
    /// blocked transaction (any deadlock cycle consists of blocked
    /// transactions only).
    fn ordered_wait_is_certified(&self, causer: TxnId) -> bool {
        self.config.grant_policy == GrantPolicy::Ordered
            && self.covered.contains(&causer)
            && self.blocked_since.keys().all(|t| self.covered.contains(t))
    }

    /// Turns on structured event logging with the given retention bound.
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.events.enable(capacity);
    }

    /// Turns on resolution auditing: every deadlock resolved from now on
    /// also records a [`crate::deadlock::ResolutionAudit`] with the exact
    /// solver inputs (unfiltered and policy-filtered candidate instances,
    /// lock modes, entry orders) captured before any rollback executes.
    /// The model checker's optimality oracles consume these via
    /// [`Self::take_resolution_audits`].
    pub fn enable_resolution_audit(&mut self) {
        if self.audits.is_none() {
            self.audits = Some(Vec::new());
        }
    }

    /// Drains the resolution audits recorded since the last call (empty
    /// unless [`Self::enable_resolution_audit`] was called).
    pub fn take_resolution_audits(&mut self) -> Vec<crate::deadlock::ResolutionAudit> {
        self.audits.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The recorded events (empty unless enabled).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Admits a transaction program; entities it locks are created in the
    /// store (zero-valued) if missing. Returns the new transaction's id.
    ///
    /// The program must be valid (see `pr_model::validate`); invalid
    /// programs are rejected.
    pub fn admit(&mut self, program: TransactionProgram) -> Result<TxnId, EngineError> {
        pr_model::validate::validate(&program)
            .map_err(|_| EngineError::NotRunnable(TxnId::new(self.next_txn)))?;
        for entity in program.locked_entities() {
            self.store.ensure(entity);
        }
        let id = TxnId::new(self.next_txn);
        self.next_txn += 1;
        let entry = self.entry_counter;
        self.entry_counter += 1;
        self.txns.insert(id, TxnRuntime::new(id, Arc::new(program), entry, self.config.strategy));
        if let Some(order) = &self.certified_order {
            if order.covers_program(&self.txns[&id].program) {
                self.covered.insert(id);
            }
        }
        #[cfg(feature = "invariants")]
        {
            if self.txns[&id].program.lock_requests().iter().any(|(_, _, m)| *m == LockMode::Shared)
            {
                self.sentinel.note_shared_mode();
            }
            self.sentinel.record(format!("{id} admitted (entry order {entry})"));
        }
        self.events.record(self.metrics.steps, Event::Admitted { txn: id });
        Ok(id)
    }

    /// Admits a pre-validated program without re-checking (builder output).
    pub fn admit_unchecked(&mut self, program: TransactionProgram) -> TxnId {
        self.admit(program).expect("program failed validation at admission")
    }

    /// Transactions currently ready to step, ascending by id.
    pub fn ready(&self) -> Vec<TxnId> {
        self.txns.values().filter(|rt| rt.phase == Phase::Running).map(|rt| rt.id).collect()
    }

    /// Transactions currently blocked, ascending by id.
    pub fn blocked(&self) -> Vec<TxnId> {
        self.txns.values().filter(|rt| rt.phase == Phase::Blocked).map(|rt| rt.id).collect()
    }

    /// Whether every admitted transaction has committed.
    pub fn all_committed(&self) -> bool {
        self.txns.values().all(|rt| rt.phase == Phase::Committed)
    }

    /// Whether every admitted transaction has terminated — committed or
    /// cleanly aborted. This is the no-wedge invariant the chaos harness
    /// asserts: no transaction may be left running or blocked forever.
    pub fn all_settled(&self) -> bool {
        self.txns.values().all(|rt| matches!(rt.phase, Phase::Committed | Phase::Aborted))
    }

    /// Executes one atomic operation of `id`.
    pub fn step(&mut self, id: TxnId) -> Result<StepOutcome, EngineError> {
        self.metrics.steps += 1;
        let rt = self.txns.get(&id).ok_or(EngineError::NoSuchTxn(id))?;
        if rt.phase != Phase::Running {
            return Err(EngineError::NotRunnable(id));
        }
        let op = rt.program.op(rt.pc).cloned().ok_or(EngineError::NotRunnable(id))?;
        let result = match op {
            Op::LockShared(entity) => self.do_lock(id, entity, LockMode::Shared),
            Op::LockExclusive(entity) => self.do_lock(id, entity, LockMode::Exclusive),
            Op::Unlock(entity) => self.do_unlock(id, entity),
            Op::Read { entity, into } => {
                let global = self.store.read(entity)?;
                let rt = self.txns.get_mut(&id).expect("checked above");
                rt.exec_read(entity, into, global)?;
                self.metrics.ops_executed += 1;
                Ok(StepOutcome::Progressed)
            }
            Op::Write { entity, expr } => {
                let rt = self.txns.get_mut(&id).expect("checked above");
                rt.exec_write(entity, &expr)?;
                self.metrics.ops_executed += 1;
                self.update_peak_copies_for(id);
                Ok(StepOutcome::Progressed)
            }
            Op::Assign { var, expr } => {
                let rt = self.txns.get_mut(&id).expect("checked above");
                rt.exec_assign(var, &expr)?;
                self.metrics.ops_executed += 1;
                self.update_peak_copies_for(id);
                Ok(StepOutcome::Progressed)
            }
            Op::Compute(expr) => {
                let rt = self.txns.get_mut(&id).expect("checked above");
                rt.exec_compute(&expr);
                self.metrics.ops_executed += 1;
                Ok(StepOutcome::Progressed)
            }
            Op::Commit => self.do_commit(id),
        };
        // Every successful step — in particular every wait response and
        // every completed deadlock resolution — must leave the system in a
        // state satisfying the structural invariants.
        #[cfg(feature = "invariants")]
        if result.is_ok() {
            self.sentinel_verify("post-step check");
        }
        result
    }

    /// Runs transactions under `scheduler` until all commit.
    pub fn run<S: Scheduler>(&mut self, scheduler: &mut S) -> Result<(), EngineError> {
        let mut steps: u64 = 0;
        loop {
            let ready = self.ready();
            if ready.is_empty() {
                if self.all_settled() {
                    return Ok(());
                }
                return Err(EngineError::Stuck { blocked: self.blocked() });
            }
            steps += 1;
            if steps > self.config.max_steps {
                return Err(EngineError::StepLimitExceeded { limit: self.config.max_steps });
            }
            let pick = scheduler.pick(&ready);
            self.step(pick)?;
        }
    }

    // ------------------------------------------------------------------
    // Operation handlers
    // ------------------------------------------------------------------

    fn do_lock(
        &mut self,
        id: TxnId,
        entity: EntityId,
        mode: LockMode,
    ) -> Result<StepOutcome, EngineError> {
        let rt = self.txns.get(&id).expect("caller verified");
        let outcome = self.table.request(id, entity, mode, rt.state, rt.lock_index())?;
        match outcome {
            RequestOutcome::Granted => {
                self.finalize_grant(id, entity, mode)?;
                // A compatible request may be granted while others wait
                // (e.g. a shared lock joining shared holders past a blocked
                // exclusive waiter): those waiters now wait on this new
                // holder as well, and their arcs must say so or a later
                // cycle through it would go undetected.
                self.refresh_waiters(entity);
                Ok(StepOutcome::Progressed)
            }
            RequestOutcome::Wait { holders, .. } => {
                {
                    let rt = self.txns.get_mut(&id).expect("caller verified");
                    rt.phase = Phase::Blocked;
                    rt.blocked_on = Some(entity);
                }
                self.events.record(
                    self.metrics.steps,
                    Event::Waited { txn: id, entity, holders: holders.clone() },
                );
                self.wfg.set_wait(id, entity, &holders);
                self.metrics.waits += 1;
                self.metrics.note_queue_depth(entity, self.table.queue_depth(entity));
                self.blocked_since.insert(id, self.metrics.steps);
                #[cfg(feature = "invariants")]
                self.sentinel
                    .record(format!("{id} waits on {entity} held by {holders:?} ({mode:?})"));
                // Certified fast path: when every blocked transaction is
                // covered by the installed order, no cycle can exist, so
                // detection is skipped outright. The wait arcs were still
                // recorded above — the invariant checks (including the
                // acyclicity check) see the same graph either way.
                let resolved = if self.ordered_wait_is_certified(id) {
                    self.metrics.certified_waits += 1;
                    None
                } else {
                    self.resolve_deadlocks(id)?
                };
                match resolved {
                    Some((event, plan)) => Ok(StepOutcome::DeadlockResolved { event, plan }),
                    None => Ok(StepOutcome::Blocked { entity }),
                }
            }
        }
    }

    /// Detects and resolves every cycle through the blocked transaction
    /// `causer`, looping because (a) the cycle cap may hide cycles and
    /// (b) rollbacks reshape the graph. Returns the first event/plan pair
    /// (subsequent rounds are appended to the history).
    fn resolve_deadlocks(
        &mut self,
        causer: TxnId,
    ) -> Result<Option<(DeadlockEvent, ResolutionPlan)>, EngineError> {
        let mut first: Option<(DeadlockEvent, ResolutionPlan)> = None;
        for round in 0.. {
            if round >= MAX_RESOLUTION_ROUNDS {
                return Err(EngineError::Stuck { blocked: self.blocked() });
            }
            let rt = self.txns.get(&causer).expect("causer exists");
            if rt.phase != Phase::Blocked {
                break; // granted (or rolled back) during a previous round
            }
            let entity = rt.blocked_on.expect("blocked transactions record their entity");
            // Recompute the (possibly changed) blocker set under the
            // table's grant policy: the incompatible holders, plus — fair
            // queue — incompatible requests queued ahead of the causer.
            debug_assert!(
                self.table.waiting_on(causer, entity).is_some(),
                "blocked transaction has a queued request"
            );
            let holders = self.table.blockers_of(causer, entity);
            // Detection runs on the graph without the causer's own arcs.
            self.wfg.clear_wait(causer);
            let cycles = cycles_on_wait(&self.wfg, causer, entity, &holders, self.config.cycle_cap);
            self.wfg.set_wait(causer, entity, &holders);
            if cycles.is_empty() {
                break;
            }
            #[cfg(feature = "invariants")]
            {
                self.sentinel.record(format!(
                    "deadlock: {causer}'s wait on {entity} closes {} cycle(s)",
                    cycles.len()
                ));
                // Theorem 1: with exclusive locks only and the paper's
                // grant rule, the graph was a forest before this wait, so
                // the new arcs can close at most one cycle. The fair queue
                // deviates from that grant rule (a waiter may have arcs to
                // both a holder and a queued predecessor), so the theorem's
                // premise — and the check — only applies under barging.
                if self.sentinel.exclusive_only()
                    && self.config.grant_policy == GrantPolicy::Barging
                    && cycles.len() > 1
                {
                    self.sentinel.fail(
                        "deadlock detection",
                        &format!(
                            "exclusive-only wait by {causer} closed {} cycles; \
                             Theorem 1 allows at most one",
                            cycles.len()
                        ),
                    );
                }
            }
            self.metrics.deadlocks += 1;
            self.events.record(
                self.metrics.steps,
                Event::DeadlockDetected { causer, entity, cycles: cycles.len() },
            );
            let event = DeadlockEvent { causer, entity, cycles };
            let plan = plan_resolution(&event, &self.config, &self.txns);
            if self.audits.is_some() {
                // Capture the solver's inputs *now*: the rollbacks below
                // mutate lock modes and runtime costs, so a post-hoc audit
                // could not reconstruct the instance the plan was built
                // from.
                let unfiltered = crate::victim::build_instance(
                    &event.cycles,
                    crate::config::VictimPolicyKind::MinCost,
                    self.config.strategy,
                    causer,
                    &self.txns,
                );
                let filtered: Vec<Vec<CandidateRollback>> = crate::victim::build_instance(
                    &event.cycles,
                    self.config.victim,
                    self.config.strategy,
                    causer,
                    &self.txns,
                )
                .into_iter()
                .filter(|c| !c.is_empty())
                .collect();
                let exclusive_only = event.cycles.iter().all(|c| {
                    c.members.iter().all(|m| {
                        self.table
                            .held_by(m.txn, m.holds)
                            .is_some_and(|h| h.mode == LockMode::Exclusive)
                    })
                });
                let entry_orders = event
                    .cycles
                    .iter()
                    .flat_map(|c| c.members.iter().map(|m| m.txn))
                    .filter_map(|txn| self.txns.get(&txn).map(|rt| (txn, rt.entry_order)))
                    .collect();
                let audit = crate::deadlock::ResolutionAudit {
                    event: event.clone(),
                    unfiltered,
                    filtered,
                    plan: plan.clone(),
                    exclusive_only,
                    entry_orders,
                };
                if let Some(audits) = &mut self.audits {
                    audits.push(audit);
                }
            }
            if plan.optimal {
                self.metrics.cutset_optimal += 1;
            } else {
                self.metrics.cutset_greedy += 1;
            }
            if plan.rollbacks.is_empty() {
                // Defensive: cannot happen while every cycle member is
                // rollbackable; surface as stuck rather than spinning.
                return Err(EngineError::Stuck { blocked: self.blocked() });
            }
            // Theorem 2 (ω-order legality): the partial-order policy may
            // only preempt transactions strictly younger than the causer —
            // or the causer itself when it is the youngest cycle member —
            // which is what guarantees system-wide progress.
            #[cfg(feature = "invariants")]
            if self.config.victim == crate::config::VictimPolicyKind::PartialOrder {
                let causer_entry =
                    self.txns.get(&causer).map(|rt| rt.entry_order).unwrap_or(u64::MAX);
                for rb in &plan.rollbacks {
                    let legal = rb.txn == causer
                        || self.txns.get(&rb.txn).is_some_and(|rt| rt.entry_order > causer_entry);
                    if !legal {
                        self.sentinel.fail(
                            "victim selection",
                            &format!(
                                "partial-order policy chose {} (not younger than causer \
                                 {causer}) as a victim",
                                rb.txn
                            ),
                        );
                    }
                }
            }
            self.metrics.resolution_cost.record(plan.total_cost);
            for rb in &plan.rollbacks {
                self.execute_rollback(*rb, RollbackReason::DeadlockVictim)?;
            }
            self.history.push((event.clone(), plan.clone()));
            if first.is_none() {
                first = Some((event, plan));
            }
        }
        Ok(first)
    }

    /// Performs one planned rollback: §4's procedure, engine side.
    fn execute_rollback(
        &mut self,
        rb: CandidateRollback,
        reason: RollbackReason,
    ) -> Result<(), EngineError> {
        let CandidateRollback { txn: victim, target, ideal, .. } = rb;
        // Step 1: halt the transaction — cancel its pending request if any.
        let blocked_entity = {
            let rt = self.txns.get(&victim).ok_or(EngineError::NoSuchTxn(victim))?;
            (rt.phase == Phase::Blocked)
                .then(|| rt.blocked_on.expect("blocked transactions record their entity"))
        };
        if let Some(entity) = blocked_entity {
            let granted = self.table.cancel_wait(victim, entity)?;
            self.wfg.clear_wait(victim);
            self.blocked_since.remove(&victim);
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
        }
        // Steps 2–5: workspace and runtime rollback.
        let (released, cost, overshoot) = {
            let rt = self.txns.get_mut(&victim).expect("checked above");
            let target = target.min(rt.lock_index());
            let ideal = ideal.min(rt.lock_index());
            let cost = rt.cost_to_lock_state(target);
            let ideal_cost = rt.cost_to_lock_state(ideal);
            let released = rt.rollback_to(target)?;
            (released, cost, cost - ideal_cost)
        };
        self.events.record(self.metrics.steps, Event::RolledBack { victim, target, cost, reason });
        #[cfg(feature = "invariants")]
        self.sentinel
            .record(format!("{victim} rolled back to lock state {} (cost {cost})", target.raw()));
        self.metrics.states_lost += u64::from(cost);
        self.metrics.rollback_overshoot += u64::from(overshoot);
        if target == LockIndex::ZERO {
            self.metrics.total_rollbacks += 1;
        } else {
            self.metrics.partial_rollbacks += 1;
        }
        if self.config.strategy == crate::config::StrategyKind::Repair {
            // The rolled-back suffix is not discarded: the victim replays
            // it from its tape. Its length is the histogram mass that must
            // reconcile with `states_lost` (and with the per-transaction
            // replayed/reused ledgers) in a clean run.
            self.metrics.repairs += 1;
            self.metrics.repair_suffix.record(u64::from(cost));
        }
        self.metrics.record_preemption(victim);
        self.update_peak_copies_for(victim);
        // Release the undone locks — without publishing: the database still
        // holds the pre-lock global values (§4's deferred update).
        for ls in released {
            let granted = self.table.release(victim, ls.entity)?;
            self.process_grants(ls.entity, granted)?;
            self.refresh_waiters(ls.entity);
        }
        Ok(())
    }

    fn do_unlock(&mut self, id: TxnId, entity: EntityId) -> Result<StepOutcome, EngineError> {
        let published = {
            let rt = self.txns.get_mut(&id).expect("caller verified");
            rt.complete_unlock(entity)
        };
        if let Some(value) = published {
            self.store.publish(entity, value)?;
            self.events.record(self.metrics.steps, Event::Published { txn: id, entity });
        }
        self.update_peak_copies_for(id);
        let granted = self.table.release(id, entity)?;
        self.process_grants(entity, granted)?;
        self.refresh_waiters(entity);
        self.metrics.ops_executed += 1;
        Ok(StepOutcome::Progressed)
    }

    fn do_commit(&mut self, id: TxnId) -> Result<StepOutcome, EngineError> {
        // Release every lock still held, publishing exclusive finals
        // ("the system may equivalently release any entities which a
        // transaction has failed to unlock at the time it terminates").
        let held: Vec<EntityId> = {
            let rt = self.txns.get(&id).expect("caller verified");
            rt.held.iter().copied().collect()
        };
        for entity in held {
            let published = {
                let rt = self.txns.get_mut(&id).expect("caller verified");
                rt.complete_unlock(entity)
            };
            // complete_unlock advanced pc/state; commit-time releases are
            // not separate operations, so undo the advance.
            {
                let rt = self.txns.get_mut(&id).expect("caller verified");
                rt.pc -= 1;
                rt.state = pr_model::StateIndex::new(rt.state.raw() - 1);
            }
            if let Some(value) = published {
                self.store.publish(entity, value)?;
            }
            let granted = self.table.release(id, entity)?;
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
        }
        let rt = self.txns.get_mut(&id).expect("caller verified");
        rt.advance();
        rt.phase = Phase::Committed;
        // Harvest the repair ledger at commit — the one point where it is
        // final. (Aborted transactions drop theirs, which is why the
        // replayed + reused == states_lost reconciliation only holds in
        // clean runs.)
        let (replayed, reused) = rt.repair_ops();
        self.metrics.ops_replayed += replayed;
        self.metrics.ops_reused += reused;
        self.events.record(self.metrics.steps, Event::Committed { txn: id });
        #[cfg(feature = "invariants")]
        self.sentinel.record(format!("{id} committed"));
        self.update_peak_copies_for(id);
        self.metrics.ops_executed += 1;
        self.metrics.commits += 1;
        Ok(StepOutcome::Committed)
    }

    // ------------------------------------------------------------------
    // Crash-recovery hooks (used by the distributed layer's fault
    // injection; see `pr-dist` and DESIGN §9)
    // ------------------------------------------------------------------

    /// Forcibly expires `txn`'s granted lock on `entity`, as when the site
    /// holding the lock state crashes and its volatile lock table is lost.
    ///
    /// A still-growing holder is partially rolled back just past the lost
    /// lock state — the §4 machinery and the version stacks make this a
    /// partial rollback, not a restart. A shrinking holder cannot be
    /// rolled back (two-phase rule); it merely loses the table record, and
    /// any unpublished update to `entity` is lost with the site.
    ///
    /// Returns the states lost to the recovery rollback (0 for shrinking
    /// holders).
    pub fn expire_grant(&mut self, txn: TxnId, entity: EntityId) -> Result<u32, EngineError> {
        let rt = self.txns.get(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        if self.table.held_by(txn, entity).is_none() {
            return Err(pr_lock::LockError::NotHeld { txn, entity }.into());
        }
        self.events.record(self.metrics.steps, Event::GrantExpired { txn, entity });
        #[cfg(feature = "invariants")]
        self.sentinel.record(format!("{txn}'s grant on {entity} expired (site crash)"));
        self.metrics.expired_grants += 1;
        let cost = if rt.rollbackable() {
            let ideal = rt.lock_state_for(entity).expect("held entities have a lock state");
            let target = rt.reachable_target(self.config.strategy, ideal);
            let cost = rt.cost_to_lock_state(target);
            let conflict = rt.conflict_state_for(ideal);
            self.execute_rollback(
                CandidateRollback { txn, target, ideal, cost, conflict },
                RollbackReason::GrantExpired,
            )?;
            cost
        } else {
            let granted = self.table.release(txn, entity)?;
            self.txns.get_mut(&txn).expect("checked above").held.remove(&entity);
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
            0
        };
        #[cfg(feature = "invariants")]
        self.sentinel_verify("post-expiry check");
        Ok(cost)
    }

    /// Terminates `txn` without commit: cancels its pending request,
    /// releases every held lock *without* publishing (uncommitted local
    /// values die with the workspace), and marks it [`Phase::Aborted`].
    /// Used when a transaction's home site crashes and its volatile
    /// execution state is unrecoverable.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), EngineError> {
        let rt = self.txns.get(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        if matches!(rt.phase, Phase::Committed | Phase::Aborted) {
            return Err(EngineError::NotRunnable(txn));
        }
        let blocked_entity = (rt.phase == Phase::Blocked)
            .then(|| rt.blocked_on.expect("blocked transactions record their entity"));
        if let Some(entity) = blocked_entity {
            let granted = self.table.cancel_wait(txn, entity)?;
            self.wfg.clear_wait(txn);
            self.blocked_since.remove(&txn);
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
        }
        let held: Vec<EntityId> = self.txns[&txn].held.iter().copied().collect();
        for entity in held {
            let granted = self.table.release(txn, entity)?;
            self.process_grants(entity, granted)?;
            self.refresh_waiters(entity);
        }
        let rt = self.txns.get_mut(&txn).expect("checked above");
        rt.held.clear();
        rt.blocked_on = None;
        rt.phase = Phase::Aborted;
        self.metrics.aborts += 1;
        self.events.record(self.metrics.steps, Event::Aborted { txn });
        self.update_peak_copies_for(txn);
        #[cfg(feature = "invariants")]
        {
            self.sentinel.record(format!("{txn} aborted"));
            self.sentinel_verify("post-abort check");
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Grant plumbing
    // ------------------------------------------------------------------

    fn finalize_grant(
        &mut self,
        id: TxnId,
        entity: EntityId,
        mode: LockMode,
    ) -> Result<(), EngineError> {
        let global = self.store.read(entity)?;
        let rt = self.txns.get_mut(&id).expect("grantee exists");
        rt.complete_lock(entity, mode, global);
        self.events.record(self.metrics.steps, Event::Granted { txn: id, entity, mode });
        #[cfg(feature = "invariants")]
        self.sentinel.record(format!("{id} granted {mode:?} lock on {entity}"));
        self.metrics.ops_executed += 1;
        self.update_peak_copies_for(id);
        Ok(())
    }

    /// Completes promoted waiters after a release or cancellation.
    fn process_grants(
        &mut self,
        entity: EntityId,
        granted: Vec<HeldLock>,
    ) -> Result<(), EngineError> {
        for h in granted {
            self.wfg.clear_wait(h.txn);
            if let Some(since) = self.blocked_since.remove(&h.txn) {
                self.metrics.grant_latency.record(self.metrics.steps.saturating_sub(since));
            }
            self.finalize_grant(h.txn, entity, h.mode)?;
        }
        Ok(())
    }

    /// Re-points the waits-for arcs of every transaction still queued on
    /// `entity` at its *current* blockers under the grant policy. Blocker
    /// sets change at every release, cancellation, and grant; a stale arc
    /// would make deadlock detection miss cycles through the new holders
    /// (the DESIGN §7 hazard: a shared lock barging past a blocked
    /// exclusive waiter becomes one of that waiter's blockers).
    ///
    /// Refreshing never closes a cycle itself: under barging it can only
    /// retarget arcs at freshly *granted* (hence running, non-waiting)
    /// transactions, and under the fair queue a waiter's blocker set only
    /// ever shrinks (new requests join behind it, and a grant compatible
    /// with every queued waiter cannot be an incompatible holder of one).
    fn refresh_waiters(&mut self, entity: EntityId) {
        for w in self.table.waiters_of(entity) {
            let blockers = self.table.blockers_of(w.txn, entity);
            debug_assert!(!blockers.is_empty(), "grantable waiter left in queue");
            self.wfg.set_wait(w.txn, entity, &blockers);
        }
    }

    /// Refreshes the cached copy count of `id` and bumps the peak metric.
    fn update_peak_copies_for(&mut self, id: TxnId) {
        let now = self.txns.get(&id).map(TxnRuntime::copies).unwrap_or(0);
        let prev = self.copies_cache.insert(id, now).unwrap_or(0);
        self.copies_total = self.copies_total + now - prev.min(self.copies_total);
        if self.copies_total > self.metrics.peak_copies {
            self.metrics.peak_copies = self.copies_total;
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The database.
    pub fn store(&self) -> &GlobalStore {
        &self.store
    }

    /// Mutable database access (for scenario setup).
    pub fn store_mut(&mut self) -> &mut GlobalStore {
        &mut self.store
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The engine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The lock table.
    pub fn table(&self) -> &LockTable {
        &self.table
    }

    /// The concurrency graph.
    pub fn graph(&self) -> &WaitsForGraph {
        &self.wfg
    }

    /// Runtime state of one transaction.
    pub fn txn(&self, id: TxnId) -> Option<&TxnRuntime> {
        self.txns.get(&id)
    }

    /// All transaction ids, ascending.
    pub fn txn_ids(&self) -> Vec<TxnId> {
        self.txns.keys().copied().collect()
    }

    /// The deadlock/resolution log, oldest first.
    pub fn history(&self) -> &[(DeadlockEvent, ResolutionPlan)] {
        &self.history
    }

    /// Engine-wide invariant check, used liberally by the test suites:
    /// lock-table consistency, graph/table agreement, and two-phase
    /// discipline of every runtime.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check_invariants()?;
        for rt in self.txns.values() {
            match rt.phase {
                Phase::Blocked => {
                    let entity = rt
                        .blocked_on
                        .ok_or_else(|| format!("{}: blocked without entity", rt.id))?;
                    if self.table.waiting_on(rt.id, entity).is_none() {
                        return Err(format!("{}: blocked but not queued on {entity}", rt.id));
                    }
                    if !self.wfg.is_waiting(rt.id) {
                        return Err(format!("{}: blocked but absent from waits-for graph", rt.id));
                    }
                }
                Phase::Running | Phase::Committed => {
                    if self.wfg.is_waiting(rt.id) {
                        return Err(format!("{}: not blocked but waits in graph", rt.id));
                    }
                }
                Phase::Aborted => {
                    if self.wfg.is_waiting(rt.id) {
                        return Err(format!("{}: aborted but waits in graph", rt.id));
                    }
                    if !rt.held.is_empty() {
                        return Err(format!("{}: aborted but still holds locks", rt.id));
                    }
                }
            }
            for entity in &rt.held {
                if self.table.held_by(rt.id, *entity).is_none() {
                    return Err(format!(
                        "{}: believes it holds {entity} but table disagrees",
                        rt.id
                    ));
                }
            }
        }
        if self.wfg.has_cycle() {
            return Err("waits-for graph contains an unresolved cycle".into());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Runtime invariant sentinel (feature `invariants`)
    // ------------------------------------------------------------------

    /// Re-proves the structural invariants at a quiet point; panics with
    /// the recent event trace on violation. See [`crate::sentinel`].
    #[cfg(feature = "invariants")]
    fn sentinel_verify(&self, context: &str) {
        if let Err(violation) = self.wfg.check_consistent() {
            self.sentinel.fail(context, &violation);
        }
        if let Err(violation) = self.check_invariants() {
            self.sentinel.fail(context, &violation);
        }
        // Theorem 1: an exclusive-only waits-for graph is a forest at
        // every quiet point (all cycles already resolved). Holds only
        // under the paper's grant rule: the fair queue gives waiters arcs
        // to queued predecessors as well as holders, so a chain of
        // exclusive waiters is legitimately not a forest there.
        if self.sentinel.exclusive_only()
            && self.config.grant_policy == GrantPolicy::Barging
            && !self.wfg.is_forest()
        {
            self.sentinel
                .fail(context, "exclusive-only waits-for graph is not a forest (Theorem 1)");
        }
    }

    /// Runs the sentinel's full check on demand (test entry point).
    ///
    /// Panics with the recent event trace if any invariant is violated.
    #[cfg(feature = "invariants")]
    pub fn sentinel_assert(&self) {
        self.sentinel_verify("explicit check");
    }

    /// Mutable access to the waits-for graph, bypassing the engine —
    /// exists only so negative tests can corrupt the graph (e.g. with
    /// [`WaitsForGraph::forge_arc_unchecked`]) and prove
    /// [`Self::sentinel_assert`] catches it. Compiled out of production
    /// builds: only tests and `invariants` builds can reach it.
    #[cfg(any(test, feature = "invariants"))]
    pub fn graph_mut_unchecked(&mut self) -> &mut WaitsForGraph {
        &mut self.wfg
    }

    /// Plants the unsound-reuse mutant in every admitted Repair runtime:
    /// replay will trust taped `Read` outcomes without re-checking them
    /// against live values. Exists only so the equivalence battery can
    /// prove the differential oracle catches a repair that skips a
    /// conflicting suffix op; a no-op under other strategies.
    #[doc(hidden)]
    pub fn plant_repair_mutant(&mut self) {
        for rt in self.txns.values_mut() {
            rt.plant_unsound_skip_taint();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StrategyKind, VictimPolicyKind};
    use crate::scheduler::{RoundRobin, Scripted};
    use pr_model::{Expr, ProgramBuilder, Value, VarId};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    fn transfer(from: u32, to: u32, amount: i64) -> pr_model::TransactionProgram {
        let v = VarId::new(0);
        ProgramBuilder::new()
            .lock_exclusive(e(from))
            .lock_exclusive(e(to))
            .read(e(from), v)
            .assign(v, Expr::sub(Expr::var(v), Expr::lit(amount)))
            .write(e(from), Expr::var(v))
            .read(e(to), v)
            .assign(v, Expr::add(Expr::var(v), Expr::lit(amount)))
            .write(e(to), Expr::var(v))
            .unlock(e(from))
            .unlock(e(to))
            .build_unchecked()
    }

    fn system(strategy: StrategyKind, victim: VictimPolicyKind) -> System {
        let store = GlobalStore::with_entities(8, Value::new(100));
        System::new(store, SystemConfig::new(strategy, victim))
    }

    #[test]
    fn single_transaction_runs_to_completion() {
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(transfer(0, 1, 30));
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.store().read(e(0)).unwrap(), Value::new(70));
        assert_eq!(sys.store().read(e(1)).unwrap(), Value::new(130));
        assert_eq!(sys.metrics().deadlocks, 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn non_conflicting_transactions_interleave_freely() {
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(transfer(0, 1, 10));
        sys.admit_unchecked(transfer(2, 3, 20));
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.store().total(), Value::new(800));
        assert_eq!(sys.metrics().waits, 0);
    }

    #[test]
    fn conflicting_transactions_serialize_via_waiting() {
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(transfer(0, 1, 10));
        sys.admit_unchecked(transfer(0, 1, 5));
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.store().read(e(0)).unwrap(), Value::new(85));
        assert_eq!(sys.store().read(e(1)).unwrap(), Value::new(115));
        assert!(sys.metrics().waits > 0);
        assert_eq!(sys.metrics().deadlocks, 0);
    }

    /// The classic two-transaction deadlock: T1 locks a then b; T2 locks
    /// b then a. Interleaved so both first locks are granted.
    fn deadlocking_pair(strategy: StrategyKind, victim: VictimPolicyKind) -> System {
        let mut sys = system(strategy, victim);
        sys.admit_unchecked(transfer(0, 1, 10)); // T1: a then b
        sys.admit_unchecked(transfer(1, 0, 5)); // T2: b then a
        sys
    }

    #[test]
    fn deadlock_is_detected_and_resolved_mcs() {
        for victim in VictimPolicyKind::ALL {
            let mut sys = deadlocking_pair(StrategyKind::Mcs, victim);
            // Interleave: T1 locks a, T2 locks b, T1 requests b (waits),
            // T2 requests a (deadlock).
            let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
            sys.run(&mut sched).unwrap_or_else(|e| panic!("{victim:?}: {e}"));
            assert!(sys.all_committed());
            assert_eq!(sys.metrics().deadlocks, 1, "{victim:?}");
            assert!(sys.metrics().rollbacks() >= 1);
            // Money is conserved regardless of policy.
            assert_eq!(
                sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
                Value::new(200),
                "{victim:?}"
            );
            sys.check_invariants().unwrap();
        }
    }

    #[test]
    fn deadlock_resolution_works_for_all_strategies() {
        for strategy in StrategyKind::ALL {
            let mut sys = deadlocking_pair(strategy, VictimPolicyKind::PartialOrder);
            let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
            sys.run(&mut sched).unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(sys.all_committed(), "{strategy:?}");
            assert_eq!(
                sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
                Value::new(200),
                "{strategy:?}"
            );
            sys.check_invariants().unwrap();
        }
    }

    #[test]
    fn repair_matches_mcs_outcome_and_reconciles_its_ledgers() {
        // The same deadlocking schedule under MCS and Repair: identical
        // victim choice, rollback depth, and final database — Repair only
        // changes how the suffix is re-executed, and its ledgers must
        // account for every lost state.
        let run = |strategy| {
            // T2's rollback suffix is its first lock plus six pads: the
            // lock must be re-acquired (replayed), the pads reuse.
            let p1 = ProgramBuilder::new()
                .lock_exclusive(e(0))
                .write_const(e(0), 7)
                .lock_exclusive(e(1))
                .unlock(e(0))
                .unlock(e(1))
                .build_unchecked();
            let p2 = ProgramBuilder::new()
                .lock_exclusive(e(1))
                .pad(6)
                .lock_exclusive(e(0))
                .unlock(e(1))
                .unlock(e(0))
                .build_unchecked();
            let mut sys = system(strategy, VictimPolicyKind::PartialOrder);
            sys.admit_unchecked(p1);
            sys.admit_unchecked(p2);
            for id in [t(1), t(1), t(2), t(2), t(2), t(2), t(2), t(2), t(2), t(1), t(2)] {
                sys.step(id).unwrap();
            }
            sys.run(&mut RoundRobin::new()).unwrap();
            assert!(sys.all_committed());
            sys
        };
        let mcs = run(StrategyKind::Mcs);
        let rep = run(StrategyKind::Repair);
        assert_eq!(
            rep.store().read(e(0)).unwrap(),
            mcs.store().read(e(0)).unwrap(),
            "same schedule, same final values"
        );
        assert_eq!(rep.store().read(e(1)).unwrap(), mcs.store().read(e(1)).unwrap());
        let (m_rep, m_mcs) = (rep.metrics(), mcs.metrics());
        assert_eq!(m_rep.states_lost, m_mcs.states_lost, "planner-identical to MCS");
        assert_eq!(m_rep.partial_rollbacks, m_mcs.partial_rollbacks);
        assert_eq!(m_rep.total_rollbacks, m_mcs.total_rollbacks);
        // Repair-only accounting: every repair records its suffix, the
        // suffix mass is exactly the states lost, and each re-walked op is
        // either replayed or reused.
        assert_eq!(m_rep.repairs, m_rep.rollbacks());
        assert_eq!(m_rep.repair_suffix.sum(), m_rep.states_lost);
        assert_eq!(m_rep.ops_replayed + m_rep.ops_reused, m_rep.states_lost);
        assert!(m_rep.ops_reused > 0, "an untouched suffix op should be reused");
        assert_eq!(m_mcs.repairs, 0);
        assert_eq!((m_mcs.ops_replayed, m_mcs.ops_reused), (0, 0));
    }

    #[test]
    fn total_strategy_always_restarts_from_zero() {
        let mut sys = deadlocking_pair(StrategyKind::Total, VictimPolicyKind::MinCost);
        let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        assert_eq!(sys.metrics().partial_rollbacks, 0);
        assert!(sys.metrics().total_rollbacks >= 1);
    }

    #[test]
    fn partial_rollback_preserves_earlier_work() {
        // T1: locks a, pads, locks b — partial rollback of T1 to release b
        // should not touch a.
        // Use a 3-txn chain to force a deadlock where T1 releases only b.
        let p1 = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 7)
            .lock_exclusive(e(1))
            .unlock(e(0))
            .unlock(e(1))
            .build_unchecked();
        let p2 = ProgramBuilder::new()
            .lock_exclusive(e(1))
            .pad(6)
            .lock_exclusive(e(0))
            .unlock(e(1))
            .unlock(e(0))
            .build_unchecked();
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(p1);
        sys.admit_unchecked(p2);
        // T1 locks a, writes; T2 locks b and pads; T1 requests b → waits;
        // T2 requests a → deadlock. T1 must release a (T2 wants a): roll
        // T1 to lock state 0, cost 2 (it waits from state 2). T2 must
        // release b: roll T2 to lock state 0, cost 7. T1 is cheaper.
        let mut sched =
            Scripted::new(vec![t(1), t(1), t(2), t(2), t(2), t(2), t(2), t(2), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        assert!(sys.all_committed());
        let (event, plan) = &sys.history()[0];
        assert_eq!(event.causer, t(2));
        assert_eq!(plan.rollbacks.len(), 1);
        assert_eq!(plan.rollbacks[0].txn, t(1));
        assert_eq!(plan.total_cost, 2);
        // T1's write to a was undone and re-executed; final value holds.
        assert_eq!(sys.store().read(e(0)).unwrap(), Value::new(7));
    }

    #[test]
    fn shared_locks_allow_concurrent_readers() {
        let reader = |ent: u32| {
            ProgramBuilder::new()
                .lock_shared(e(ent))
                .read(e(ent), VarId::new(0))
                .unlock(e(ent))
                .build_unchecked()
        };
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(reader(0));
        sys.admit_unchecked(reader(0));
        sys.admit_unchecked(reader(0));
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.metrics().waits, 0);
    }

    /// Figure 3(c)-style multi-cycle deadlock: T2 and T3 hold shared locks
    /// on f and each waits on T1; T1's exclusive request on f closes two
    /// cycles at once.
    #[test]
    fn multi_cycle_deadlock_from_shared_holders() {
        let p1 = ProgramBuilder::new()
            .lock_exclusive(e(0)) // a
            .lock_exclusive(e(1)) // b
            .lock_exclusive(e(5)) // f — the deadlocking request
            .unlock(e(0))
            .unlock(e(1))
            .unlock(e(5))
            .build_unchecked();
        let p2 = ProgramBuilder::new()
            .lock_shared(e(5))
            .pad(2)
            .lock_shared(e(0)) // waits on T1
            .unlock(e(5))
            .unlock(e(0))
            .build_unchecked();
        let p3 = ProgramBuilder::new()
            .lock_shared(e(5))
            .pad(4)
            .lock_shared(e(1)) // waits on T1
            .unlock(e(5))
            .unlock(e(1))
            .build_unchecked();
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        sys.admit_unchecked(p1);
        sys.admit_unchecked(p2);
        sys.admit_unchecked(p3);
        // T1 locks a, b; T2 locks f shared, pads, requests a → waits;
        // T3 locks f shared, pads, requests b → waits; T1 requests f →
        // two cycles close.
        let mut sched = Scripted::new(vec![
            t(1),
            t(1), // a, b
            t(2),
            t(2),
            t(2),
            t(2), // f, pads, request a
            t(3),
            t(3),
            t(3),
            t(3),
            t(3),
            t(3), // f, pads, request b
            t(1), // request f → deadlock
        ]);
        sys.run(&mut sched).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.metrics().deadlocks, 1);
        let (event, _plan) = &sys.history()[0];
        assert_eq!(event.causer, t(1));
        assert_eq!(event.cycles.len(), 2, "both cycles pass through T1");
        sys.check_invariants().unwrap();
    }

    #[test]
    fn sdg_overshoot_is_recorded_when_states_are_undefined() {
        // T1 writes a, locks b, locks c, rewrites a — destroying lock
        // states 1 and 2 — then requests d. A deadlock needing T1 to
        // release c (lock state 2) must overshoot to lock state 0.
        let p1 = ProgramBuilder::new()
            .lock_exclusive(e(0)) // a: lock state 0
            .write_const(e(0), 1)
            .lock_exclusive(e(1)) // b: lock state 1
            .lock_exclusive(e(2)) // c: lock state 2
            .write_const(e(0), 2) // destroys states 1, 2
            .lock_exclusive(e(3)) // d — will deadlock
            .unlock(e(0))
            .unlock(e(1))
            .unlock(e(2))
            .unlock(e(3))
            .build_unchecked();
        let p2 = ProgramBuilder::new()
            .lock_exclusive(e(3))
            .pad(20) // expensive to roll back
            .lock_exclusive(e(2)) // waits on T1
            .unlock(e(3))
            .unlock(e(2))
            .build_unchecked();
        let mut sys = system(StrategyKind::Sdg, VictimPolicyKind::MinCost);
        let id1 = sys.admit_unchecked(p1);
        let id2 = sys.admit_unchecked(p2);
        sys.step(id2).unwrap(); // T2 locks d
        for _ in 0..5 {
            sys.step(id1).unwrap(); // T1 up to rewrite of a
        }
        for _ in 0..20 {
            sys.step(id2).unwrap(); // T2 pads
        }
        // T1 requests d → waits on T2 (no cycle yet).
        assert!(matches!(sys.step(id1).unwrap(), StepOutcome::Blocked { .. }));
        // T2 requests c → deadlock. T1's ideal release of c is lock state
        // 2 (cost 3: states 5→... T1 at state 5, lock state 2 at state 3 →
        // cost 2)… the SDG fallback forces lock state 0, cost 5.
        // T2's alternative: release d at lock state 0, cost 22.
        let out = sys.step(id2).unwrap();
        assert!(matches!(out, StepOutcome::DeadlockResolved { .. }));
        assert!(sys.metrics().rollback_overshoot > 0, "SDG had to overshoot");
        let (_, plan) = &sys.history()[0];
        assert_eq!(plan.rollbacks[0].txn, id1);
        assert_eq!(plan.rollbacks[0].target, LockIndex::ZERO);
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
    }

    #[test]
    fn stuck_is_impossible_under_heavy_conflict() {
        // Ten transfers over two accounts in both directions; every
        // strategy/policy combination must drain the system.
        for strategy in StrategyKind::ALL {
            for victim in VictimPolicyKind::ALL {
                let mut sys = system(strategy, victim);
                for i in 0..10 {
                    if i % 2 == 0 {
                        sys.admit_unchecked(transfer(0, 1, 1));
                    } else {
                        sys.admit_unchecked(transfer(1, 0, 1));
                    }
                }
                sys.run(&mut RoundRobin::new())
                    .unwrap_or_else(|err| panic!("{strategy:?}/{victim:?}: {err}"));
                assert!(sys.all_committed());
                assert_eq!(
                    sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
                    Value::new(200)
                );
                sys.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn bounded_strategy_resolves_deadlocks_and_tracks_overshoot() {
        for budget in [1u32, 2, 8] {
            let mut sys =
                deadlocking_pair(StrategyKind::Bounded(budget), VictimPolicyKind::PartialOrder);
            let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
            sys.run(&mut sched).unwrap_or_else(|e| panic!("budget {budget}: {e}"));
            assert!(sys.all_committed());
            assert_eq!(
                sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
                Value::new(200),
                "budget {budget}"
            );
            sys.check_invariants().unwrap();
        }
    }

    #[test]
    fn bounded_with_large_budget_matches_mcs_exactly() {
        // With a budget no workload exceeds, Bounded must behave exactly
        // like unbounded MCS: same metrics, same final state.
        let run = |strategy: StrategyKind| {
            let mut sys = system(strategy, VictimPolicyKind::PartialOrder);
            for i in 0..8 {
                if i % 2 == 0 {
                    sys.admit_unchecked(transfer(0, 1, 3));
                } else {
                    sys.admit_unchecked(transfer(1, 0, 2));
                }
            }
            sys.run(&mut RoundRobin::new()).unwrap();
            (sys.metrics().clone(), sys.store().snapshot())
        };
        let (m1, s1) = run(StrategyKind::Mcs);
        let (m2, s2) = run(StrategyKind::Bounded(1_000));
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn event_log_narrates_a_deadlock() {
        let mut sys = deadlocking_pair(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
        sys.enable_event_log(1_000);
        let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        let rendered = sys.events().render();
        assert!(rendered.contains("granted X-lock"));
        assert!(rendered.contains("waits for"));
        assert!(rendered.contains("deadlock:"));
        assert!(rendered.contains("rolled back"));
        assert!(rendered.contains("committed"));
        // Event kinds agree with the metrics.
        use crate::event::Event;
        let count = |pred: fn(&Event) -> bool| {
            sys.events().events().iter().filter(|(_, e)| pred(e)).count() as u64
        };
        assert_eq!(count(|e| matches!(e, Event::Committed { .. })), sys.metrics().commits);
        assert_eq!(count(|e| matches!(e, Event::DeadlockDetected { .. })), sys.metrics().deadlocks);
        assert_eq!(count(|e| matches!(e, Event::RolledBack { .. })), sys.metrics().rollbacks());
    }

    #[test]
    fn event_log_is_free_when_disabled() {
        let mut sys = deadlocking_pair(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
        let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        assert!(sys.events().events().is_empty());
    }

    #[test]
    fn admit_rejects_invalid_programs() {
        let bad = pr_model::TransactionProgram::from_parts(vec![Op::Unlock(e(0))], vec![]);
        let mut sys = system(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        assert!(sys.admit(bad).is_err());
    }

    /// The sentinel must stay quiet through every strategy/policy
    /// combination on a genuinely deadlocking workload — the positive half
    /// of the acceptance criterion.
    #[cfg(feature = "invariants")]
    #[test]
    fn sentinel_stays_quiet_through_deadlock_resolution() {
        for strategy in StrategyKind::ALL {
            for victim in VictimPolicyKind::ALL {
                let mut sys = deadlocking_pair(strategy, victim);
                let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
                sys.run(&mut sched).unwrap_or_else(|e| panic!("{strategy:?}/{victim:?}: {e}"));
                assert!(sys.all_committed());
                sys.sentinel_assert();
            }
        }
    }

    /// The negative half: a forged back-edge in the waits-for graph (an
    /// arc with no matching wait record) must trip the sentinel, and the
    /// panic must carry the event trace.
    #[cfg(feature = "invariants")]
    #[test]
    fn sentinel_catches_a_forged_back_edge() {
        let mut sys = deadlocking_pair(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
        sys.step(t(1)).unwrap(); // T1 locks a
        sys.step(t(2)).unwrap(); // T2 locks b
        assert!(matches!(sys.step(t(1)).unwrap(), StepOutcome::Blocked { .. })); // T1 waits
        sys.graph_mut_unchecked().forge_arc_unchecked(t(1), t(2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sys.sentinel_assert();
        }))
        .expect_err("the forged arc must trip the sentinel");
        let msg = err.downcast_ref::<String>().expect("panic carries the report");
        assert!(msg.contains("invariant sentinel tripped"), "{msg}");
        assert!(msg.contains("T1 -> T2"), "{msg}");
        assert!(msg.contains("engine events"), "trace attached: {msg}");
    }

    #[test]
    fn step_errors_on_blocked_or_unknown_txn() {
        let mut sys = deadlocking_pair(StrategyKind::Mcs, VictimPolicyKind::MinCost);
        assert!(matches!(sys.step(t(9)), Err(EngineError::NoSuchTxn(_))));
        sys.step(t(1)).unwrap(); // T1 locks a
        sys.step(t(2)).unwrap(); // T2 locks b
        assert!(matches!(sys.step(t(1)).unwrap(), StepOutcome::Blocked { .. }));
        assert!(matches!(sys.step(t(1)), Err(EngineError::NotRunnable(_))));
    }

    /// A reader, a blocked writer, then a late reader. The per-policy
    /// systems used by the grant-policy tests below.
    fn reader_writer_reader(policy: pr_lock::GrantPolicy) -> System {
        let a = e(0);
        let reader = || ProgramBuilder::new().lock_shared(a).pad(2).unlock(a).build_unchecked();
        let writer = ProgramBuilder::new().lock_exclusive(a).pad(1).unlock(a).build_unchecked();
        let store = GlobalStore::with_entities(1, Value::new(0));
        let config = SystemConfig::default().with_grant_policy(policy);
        let mut sys = System::new(store, config);
        sys.admit_unchecked(reader()); // T1
        sys.admit_unchecked(writer); // T2
        sys.admit_unchecked(reader()); // T3
        sys.step(t(1)).unwrap(); // S-lock granted
        assert!(matches!(sys.step(t(2)).unwrap(), StepOutcome::Blocked { .. }));
        sys
    }

    /// Regression for the DESIGN §7 stale-arc hazard: when a shared
    /// request barges past a blocked exclusive waiter, the waiter's arcs
    /// must be refreshed to include the new holder.
    #[test]
    fn barging_grant_refreshes_blocked_writer_arcs() {
        let mut sys = reader_writer_reader(pr_lock::GrantPolicy::Barging);
        let (entity, blockers) = sys.graph().wait_of(t(2)).expect("writer waits");
        assert_eq!((entity, blockers), (e(0), vec![t(1)]));
        // T3's shared request barges past the blocked writer…
        assert!(matches!(sys.step(t(3)).unwrap(), StepOutcome::Progressed));
        assert!(sys.table().held_by(t(3), e(0)).is_some());
        // …and the writer's arcs now include the new holder.
        let (_, blockers) = sys.graph().wait_of(t(2)).expect("writer still waits");
        assert_eq!(blockers, vec![t(1), t(3)]);
        sys.check_invariants().unwrap();
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
    }

    /// Under the fair queue the late reader queues behind the writer
    /// instead of barging, with its arc pointing at the queued writer.
    #[test]
    fn fair_queue_blocks_late_reader_behind_writer() {
        let mut sys = reader_writer_reader(pr_lock::GrantPolicy::FairQueue);
        assert!(matches!(sys.step(t(3)).unwrap(), StepOutcome::Blocked { .. }));
        assert!(sys.table().held_by(t(3), e(0)).is_none());
        let (entity, blockers) = sys.graph().wait_of(t(3)).expect("reader waits");
        assert_eq!((entity, blockers), (e(0), vec![t(2)]));
        sys.check_invariants().unwrap();
        sys.run(&mut RoundRobin::new()).unwrap();
        assert!(sys.all_committed());
        // The writer was promoted alone, ahead of the late reader.
        assert!(sys.metrics().grant_latency.count() >= 2);
        sys.check_invariants().unwrap();
    }

    /// Deadlocks still resolve under the fair queue, across strategies.
    #[test]
    fn deadlock_resolution_works_under_fair_queue() {
        for strategy in StrategyKind::ALL {
            let store = GlobalStore::with_entities(8, Value::new(100));
            let config = SystemConfig::new(strategy, VictimPolicyKind::PartialOrder)
                .with_grant_policy(pr_lock::GrantPolicy::FairQueue);
            let mut sys = System::new(store, config);
            sys.admit_unchecked(transfer(0, 1, 10));
            sys.admit_unchecked(transfer(1, 0, 5));
            let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
            sys.run(&mut sched).unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(sys.all_committed(), "{strategy:?}");
            assert_eq!(sys.metrics().deadlocks, 1, "{strategy:?}");
            assert_eq!(
                sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
                Value::new(200),
                "{strategy:?}"
            );
            sys.check_invariants().unwrap();
        }
    }

    /// The latency/contention instrumentation populates on a contended run.
    #[test]
    fn contention_metrics_populate() {
        let mut sys = deadlocking_pair(StrategyKind::Mcs, VictimPolicyKind::PartialOrder);
        let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        assert!(sys.all_committed());
        let m = sys.metrics();
        assert!(m.grant_latency.count() >= 1, "a promoted waiter was recorded");
        assert!(m.grant_latency.max() >= 1);
        assert_eq!(m.resolution_cost.count(), m.deadlocks);
        assert!(m.resolution_cost.sum() >= 1, "the deadlock cost something");
        assert_eq!(m.max_queue_depth(), 1);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"deadlocks\":1"), "{json}");
    }

    fn ordered_system(strategy: StrategyKind) -> System {
        let store = GlobalStore::with_entities(8, Value::new(100));
        let config = SystemConfig::new(strategy, VictimPolicyKind::PartialOrder)
            .with_grant_policy(GrantPolicy::Ordered);
        System::new(store, config)
    }

    /// Covered workload under `Ordered`: waits happen but detection is
    /// skipped on every one of them, and nothing deadlocks.
    #[test]
    fn certified_workload_skips_detection_under_ordered() {
        for strategy in StrategyKind::ALL {
            let mut sys = ordered_system(strategy);
            sys.admit_unchecked(transfer(0, 1, 10));
            sys.admit_unchecked(transfer(0, 1, 5));
            sys.admit_unchecked(transfer(1, 2, 7));
            let covered = sys.install_certificate(EntityOrder::identity(8)).unwrap();
            assert_eq!(covered, 3, "{strategy:?}");
            sys.run(&mut RoundRobin::new()).unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert!(sys.all_committed(), "{strategy:?}");
            let m = sys.metrics();
            assert!(m.waits > 0, "{strategy:?}: the workload must actually contend");
            assert_eq!(m.certified_waits, m.waits, "{strategy:?}: every wait skips detection");
            assert_eq!(m.deadlocks, 0, "{strategy:?}");
            assert_eq!(m.rollbacks(), 0, "{strategy:?}");
            sys.check_invariants().unwrap();
        }
    }

    /// Planted mutant (a): an order that violates one program's lock
    /// sequence. The strict installer must reject it and install nothing.
    #[test]
    fn strict_install_rejects_order_violating_a_program() {
        let mut sys = ordered_system(StrategyKind::Mcs);
        sys.admit_unchecked(transfer(0, 1, 10));
        sys.admit_unchecked(transfer(2, 1, 5)); // descends under identity
        let order = EntityOrder::identity(8);
        let err = sys.install_certificate(order).unwrap_err();
        assert_eq!(
            err,
            EngineError::CertificateViolation { txn: t(2), pc: 1, entity: e(1) },
            "the violating request is named precisely"
        );
        assert!(sys.certified_order().is_none(), "a rejected certificate installs nothing");
        assert!(sys.covered_txns().is_empty());
    }

    /// Planted mutant (b): a "certificate" for a known-cyclic workload.
    /// No total order covers both programs of an inverted pair, so any
    /// order the forger picks is rejected on one of them.
    #[test]
    fn strict_install_rejects_any_order_for_cyclic_workload() {
        for forged in [vec![e(0), e(1)], vec![e(1), e(0)]] {
            let mut sys = ordered_system(StrategyKind::Mcs);
            sys.admit_unchecked(transfer(0, 1, 10));
            sys.admit_unchecked(transfer(1, 0, 5));
            let order = EntityOrder::new(forged).unwrap();
            assert!(matches!(
                sys.install_certificate(order),
                Err(EngineError::CertificateViolation { .. })
            ));
        }
    }

    /// The permissive installer covers what it can; uncovered
    /// transactions still go through full detection, so a deadlock they
    /// cause is resolved by partial rollback exactly as under the other
    /// policies.
    #[test]
    fn uncovered_txns_fall_back_to_partial_rollback_under_ordered() {
        let mut sys = ordered_system(StrategyKind::Mcs);
        sys.admit_unchecked(transfer(0, 1, 10)); // covered
        sys.admit_unchecked(transfer(1, 0, 5)); // b then a: uncovered
        let covered = sys.install_order(EntityOrder::identity(8));
        assert_eq!(covered, 1);
        assert_eq!(sys.covered_txns(), vec![t(1)]);
        let mut sched = Scripted::new(vec![t(1), t(2), t(1), t(2)]);
        sys.run(&mut sched).unwrap();
        assert!(sys.all_committed());
        assert_eq!(sys.metrics().deadlocks, 1, "the uncovered cycle is detected and resolved");
        assert!(sys.metrics().rollbacks() >= 1);
        assert_eq!(
            sys.store().read(e(0)).unwrap() + sys.store().read(e(1)).unwrap(),
            Value::new(200)
        );
        sys.check_invariants().unwrap();
    }

    /// Coverage follows admissions that arrive after the order is
    /// installed (the open-arrival stress harness admits incrementally).
    #[test]
    fn coverage_extends_to_later_admissions() {
        let mut sys = ordered_system(StrategyKind::Mcs);
        assert_eq!(sys.install_order(EntityOrder::identity(8)), 0);
        sys.admit_unchecked(transfer(0, 1, 10));
        sys.admit_unchecked(transfer(1, 0, 5));
        assert_eq!(sys.covered_txns(), vec![t(1)], "only the ascending program is covered");
    }
}
