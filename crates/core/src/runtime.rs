//! Per-transaction runtime state.
//!
//! A [`TxnRuntime`] tracks one executing transaction: its program counter,
//! state index (operations executed), granted lock states, workspace
//! (strategy-dependent), and — for the SDG strategy — its state-dependency
//! graph. The rollback procedure of §4 is implemented here, steps 2–5; the
//! engine performs step 1 (waiting/cancelling the transaction) and the
//! lock releases, which need the lock table.

use crate::config::StrategyKind;
use pr_graph::StateDependencyGraph;
use pr_model::TxnId;
use pr_model::{EntityId, LockIndex, LockMode, StateIndex, TransactionProgram, Value, VarId};
use pr_storage::{McsWorkspace, SingleCopyWorkspace, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Read-only access to transaction runtimes by id.
///
/// The deterministic [`crate::System`] owns its runtimes in a
/// `BTreeMap<TxnId, TxnRuntime>`; the parallel engine keeps each runtime
/// behind its own slot mutex and can only assemble a map of *references*
/// while it holds the guards. Victim selection and resolution planning
/// are generic over this trait so both engines share one §3 planner.
pub trait RuntimeView {
    /// The runtime for `txn`, if it is live in this view.
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime>;
}

impl RuntimeView for BTreeMap<TxnId, TxnRuntime> {
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime> {
        self.get(&txn)
    }
}

impl RuntimeView for BTreeMap<TxnId, &TxnRuntime> {
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime> {
        self.get(&txn).copied()
    }
}

/// Execution phase of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Ready to execute its next operation.
    Running,
    /// Blocked on a lock request.
    Blocked,
    /// Finished; locks released.
    Committed,
    /// Terminated without committing — its site crashed or an upper layer
    /// aborted it. Locks are released, uncommitted local state is
    /// discarded, and the transaction never runs again.
    Aborted,
}

/// One granted lock request — the transaction-side record of a lock state.
/// `lock_states[k]` describes lock state `k`.
#[derive(Clone, Copy, Debug)]
pub struct LockStateInfo {
    /// Entity locked by the request this lock state precedes.
    pub entity: EntityId,
    /// Mode acquired.
    pub mode: LockMode,
    /// State index of the lock state — the state the transaction was in
    /// when it issued the request ("the last state in which T does not
    /// hold a lock on A", §3.1). Rollback cost to here = current − this.
    pub state_index: StateIndex,
    /// Program counter of the lock-request operation, where execution
    /// resumes after a rollback to this lock state.
    pub pc: usize,
}

/// Strategy-dependent workspace.
#[derive(Clone, Debug)]
pub enum Workspace {
    /// Multi-lock copy stacks (MCS, §4).
    Mcs(McsWorkspace),
    /// One local copy per entity (total rollback and SDG, §4).
    Single(SingleCopyWorkspace),
}

impl Workspace {
    fn for_strategy(strategy: StrategyKind, initial_vars: &[Value]) -> Workspace {
        match strategy {
            StrategyKind::Mcs => Workspace::Mcs(McsWorkspace::new(initial_vars)),
            StrategyKind::Bounded(k) => {
                Workspace::Mcs(McsWorkspace::with_budget(initial_vars, Some(k.max(1) as usize)))
            }
            StrategyKind::Total | StrategyKind::Sdg => {
                Workspace::Single(SingleCopyWorkspace::new(initial_vars))
            }
        }
    }

    /// Current local-variable values for expression evaluation.
    pub fn vars(&self) -> &[Value] {
        match self {
            Workspace::Mcs(w) => w.vars(),
            Workspace::Single(w) => w.vars(),
        }
    }

    /// Local copies currently held, in the units compared by the storage
    /// experiments (stack elements beyond base for MCS; one per exclusive
    /// entity for single-copy).
    pub fn copies(&self) -> usize {
        match self {
            Workspace::Mcs(w) => w.copy_counts().total(),
            Workspace::Single(w) => w.entity_copies(),
        }
    }

    /// Structural self-check of the underlying storage (stack ordering,
    /// cached-value coherence). Used by the fault-injection invariant
    /// sweeps after crash recovery.
    pub fn check_integrity(&self) -> Result<(), String> {
        match self {
            Workspace::Mcs(w) => w.check_integrity(),
            Workspace::Single(w) => w.check_integrity(),
        }
    }
}

/// Runtime state of one transaction.
#[derive(Clone, Debug)]
pub struct TxnRuntime {
    /// Transaction id.
    pub id: TxnId,
    /// The program being executed.
    pub program: Arc<TransactionProgram>,
    /// Next operation to execute.
    pub pc: usize,
    /// Operations executed so far (the §2 state index).
    pub state: StateIndex,
    /// Execution phase.
    pub phase: Phase,
    /// The rollback strategy this runtime was built for.
    pub strategy: StrategyKind,
    /// ω for Theorem 2: position in the entry order, fixed at admission
    /// and retained across rollbacks (even total ones — the transaction is
    /// the same execution instance).
    pub entry_order: u64,
    /// Whether the transaction has executed its first unlock. Two-phase
    /// transactions are never rolled back after it (§2), and can never be
    /// blocked again either (no further lock requests).
    pub shrinking: bool,
    /// Granted lock requests, in grant order; index = lock index.
    pub lock_states: Vec<LockStateInfo>,
    /// Strategy-dependent local storage.
    pub workspace: Workspace,
    /// State-dependency graph (SDG strategy only).
    pub sdg: Option<StateDependencyGraph>,
    /// Times this transaction was chosen as a victim.
    pub preemptions: u32,
    /// States lost to rollbacks of this transaction.
    pub states_lost: u64,
    /// Entity currently being waited for, when blocked.
    pub blocked_on: Option<EntityId>,
    /// Entities whose locks are currently held (lock states minus
    /// unlocks), for commit-time release.
    pub held: BTreeSet<EntityId>,
}

impl TxnRuntime {
    /// Creates the runtime for `program`, admitted at `entry_order`.
    pub fn new(
        id: TxnId,
        program: Arc<TransactionProgram>,
        entry_order: u64,
        strategy: StrategyKind,
    ) -> Self {
        let workspace = Workspace::for_strategy(strategy, program.initial_vars());
        // Sdg tracks write-destroyed states; Bounded tracks
        // eviction-destroyed ones. Both consult the graph for reachable
        // rollback targets.
        let sdg = matches!(strategy, StrategyKind::Sdg | StrategyKind::Bounded(_))
            .then(StateDependencyGraph::new);
        TxnRuntime {
            id,
            program,
            pc: 0,
            state: StateIndex::ZERO,
            phase: Phase::Running,
            strategy,
            entry_order,
            shrinking: false,
            lock_states: Vec::new(),
            workspace,
            sdg,
            preemptions: 0,
            states_lost: 0,
            blocked_on: None,
            held: BTreeSet::new(),
        }
    }

    /// Lock index the next operation executes at (= granted lock states).
    pub fn lock_index(&self) -> LockIndex {
        LockIndex::new(self.lock_states.len() as u32)
    }

    /// The lock state at which `entity` was locked, if held.
    pub fn lock_state_for(&self, entity: EntityId) -> Option<LockIndex> {
        self.lock_states.iter().position(|ls| ls.entity == entity).map(|k| LockIndex::new(k as u32))
    }

    /// §3.1 rollback cost to reach lock state `target`: states lost.
    pub fn cost_to_lock_state(&self, target: LockIndex) -> u32 {
        let target_state = if target.index() < self.lock_states.len() {
            self.lock_states[target.index()].state_index
        } else {
            self.state
        };
        self.state.cost_to(target_state)
    }

    /// The deepest reachable rollback target at or below `ideal` under
    /// this runtime's strategy: `ideal` itself for MCS, lock state 0 for
    /// total rollback, and the latest well-defined state for SDG.
    pub fn reachable_target(&self, strategy: StrategyKind, ideal: LockIndex) -> LockIndex {
        match strategy {
            StrategyKind::Total => LockIndex::ZERO,
            StrategyKind::Mcs => ideal,
            StrategyKind::Sdg | StrategyKind::Bounded(_) => self
                .sdg
                .as_ref()
                .expect("SDG/Bounded strategies carry a state-dependency graph")
                .latest_well_defined_at_or_below(ideal),
        }
    }

    /// Completes a granted lock request: records the lock state, advances
    /// past the request op, and (for exclusive locks) takes the local copy
    /// of the entity's global value.
    pub fn complete_lock(&mut self, entity: EntityId, mode: LockMode, global: Value) {
        let info = LockStateInfo { entity, mode, state_index: self.state, pc: self.pc };
        let lock_state = self.lock_index();
        self.lock_states.push(info);
        self.held.insert(entity);
        if mode == LockMode::Exclusive {
            match &mut self.workspace {
                Workspace::Mcs(w) => w.on_exclusive_lock(entity, lock_state, global),
                Workspace::Single(w) => w.on_exclusive_lock(entity, lock_state, global),
            }
        }
        if let Some(sdg) = &mut self.sdg {
            sdg.on_lock_state();
        }
        self.advance();
        self.phase = Phase::Running;
        self.blocked_on = None;
    }

    /// Reads the transaction's view of `entity`: its local copy when held
    /// exclusively, otherwise `fallback_global` (shared locks read the
    /// database's global value directly).
    pub fn read_entity(&self, entity: EntityId, fallback_global: Value) -> Value {
        let local = match &self.workspace {
            Workspace::Mcs(w) => w.read_entity(entity),
            Workspace::Single(w) => w.read_entity(entity),
        };
        local.unwrap_or(fallback_global)
    }

    /// Records a write of `value` to `entity` at the current lock index.
    pub fn write_entity(&mut self, entity: EntityId, value: Value) -> Result<(), StorageError> {
        let li = self.lock_index();
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                if let Some((from, to)) = w.write_entity(entity, li, value)? {
                    // A budget eviction destroyed the values of lock
                    // states in [from, to): encode as the spanning edge
                    // (from − 1, to).
                    if let Some(sdg) = &mut self.sdg {
                        sdg.on_write(LockIndex::new(from.raw().saturating_sub(1)), to);
                    }
                }
            }
            Workspace::Single(w) => {
                let rec = w.write_entity(entity, li, value)?;
                if let Some(sdg) = &mut self.sdg {
                    sdg.on_write(rec.u, rec.w);
                }
            }
        }
        self.advance();
        Ok(())
    }

    /// Records an assignment of `value` to local variable `var`.
    pub fn assign_var(&mut self, var: VarId, value: Value) -> Result<(), StorageError> {
        let li = self.lock_index();
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                if let Some((from, to)) = w.assign_var(var, li, value)? {
                    if let Some(sdg) = &mut self.sdg {
                        sdg.on_write(LockIndex::new(from.raw().saturating_sub(1)), to);
                    }
                }
            }
            Workspace::Single(w) => {
                let rec = w.assign_var(var, li, value)?;
                if let Some(sdg) = &mut self.sdg {
                    sdg.on_write(rec.u, rec.w);
                }
            }
        }
        self.advance();
        Ok(())
    }

    /// Handles an unlock: marks the shrinking phase and returns the final
    /// local value to publish (exclusive holds only).
    pub fn complete_unlock(&mut self, entity: EntityId) -> Option<Value> {
        self.shrinking = true;
        self.held.remove(&entity);
        let published = match &mut self.workspace {
            Workspace::Mcs(w) => w.on_unlock(entity),
            Workspace::Single(w) => w.on_unlock(entity),
        };
        self.advance();
        published
    }

    /// Advances one atomic operation: `pc` and state index.
    pub fn advance(&mut self) {
        self.pc += 1;
        self.state = self.state.next();
    }

    /// Performs the runtime part of a rollback to lock state `target`
    /// (workspace restore, SDG truncation, pc/state reset, §4 steps 2–5).
    /// Returns the lock-state records released (the engine releases the
    /// corresponding table locks, *without* publishing).
    ///
    /// The caller must have verified that `target` is reachable under the
    /// strategy; for single-copy workspaces an unreachable target is a
    /// programming error and surfaces as `StorageError::NotRestorable`.
    pub fn rollback_to(&mut self, target: LockIndex) -> Result<Vec<LockStateInfo>, StorageError> {
        debug_assert!(!self.shrinking, "two-phase transactions never roll back after unlock");
        debug_assert!(target.index() <= self.lock_states.len());
        // A bounded workspace cannot detect a rollback into an evicted
        // interval on its own (the stacks simply no longer hold the
        // value); the engine must only aim at well-defined states. The
        // single-copy workspace (Sdg strategy) validates for itself and
        // returns an error, so only Bounded needs the guard.
        debug_assert!(
            !matches!(self.strategy, StrategyKind::Bounded(_))
                || self.sdg.as_ref().is_some_and(|g| g.is_well_defined(target)),
            "bounded rollback target {target:?} lies in an evicted interval",
        );
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                w.rollback_to(target);
            }
            Workspace::Single(w) => {
                w.rollback_to(target)?;
            }
        }
        if let Some(sdg) = &mut self.sdg {
            sdg.rollback_to(target);
        }
        let released = self.lock_states.split_off(target.index());
        for ls in &released {
            self.held.remove(&ls.entity);
        }
        let (new_pc, new_state) = match self.lock_states.get(target.index().wrapping_sub(1)) {
            // Rolling to lock state k: resume at the k-th lock request.
            _ if !released.is_empty() => (released[0].pc, released[0].state_index),
            // target == current lock index: nothing released, nothing moves.
            _ => (self.pc, self.state),
        };
        let lost = self.state.cost_to(new_state);
        self.states_lost += u64::from(lost);
        self.preemptions += 1;
        self.pc = new_pc;
        self.state = new_state;
        self.phase = Phase::Running;
        self.blocked_on = None;
        Ok(released)
    }

    /// Whether this transaction may still be rolled back.
    pub fn rollbackable(&self) -> bool {
        !self.shrinking && matches!(self.phase, Phase::Running | Phase::Blocked)
    }

    /// Local copies currently held.
    pub fn copies(&self) -> usize {
        self.workspace.copies()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_model::{EntityId, ProgramBuilder};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn runtime(strategy: StrategyKind) -> TxnRuntime {
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .write_const(e(1), 2)
            .lock_exclusive(e(2))
            .build_unchecked();
        TxnRuntime::new(TxnId::new(1), Arc::new(p), 0, strategy)
    }

    #[test]
    fn complete_lock_advances_and_records() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        assert_eq!(rt.pc, 1);
        assert_eq!(rt.state, StateIndex::new(1));
        assert_eq!(rt.lock_index(), LockIndex::new(1));
        assert_eq!(rt.lock_state_for(e(0)), Some(LockIndex::ZERO));
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(10));
    }

    #[test]
    fn cost_to_lock_state_is_state_difference() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO); // state 0→1
        rt.write_entity(e(0), Value::new(1)).unwrap(); // 1→2
        rt.complete_lock(e(1), LockMode::Exclusive, Value::ZERO); // 2→3
                                                                  // Lock state 0 was at state 0; lock state 1 at state 2.
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(0)), 3);
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(1)), 1);
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(2)), 0);
    }

    #[test]
    fn rollback_resets_pc_state_and_releases_locks() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        rt.write_entity(e(0), Value::new(11)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.write_entity(e(1), Value::new(21)).unwrap();
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].entity, e(1));
        // Resume at the second lock request (pc 2 in the program), state 2.
        assert_eq!(rt.pc, 2);
        assert_eq!(rt.state, StateIndex::new(2));
        assert_eq!(rt.states_lost, 2);
        assert_eq!(rt.preemptions, 1);
        // a's written value survives (write was before lock state 1).
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(11));
        assert!(rt.lock_state_for(e(1)).is_none());
    }

    #[test]
    fn total_strategy_reaches_only_zero() {
        let rt = runtime(StrategyKind::Total);
        assert_eq!(rt.reachable_target(StrategyKind::Total, LockIndex::new(2)), LockIndex::ZERO);
    }

    #[test]
    fn mcs_reaches_ideal_target() {
        let rt = runtime(StrategyKind::Mcs);
        assert_eq!(rt.reachable_target(StrategyKind::Mcs, LockIndex::new(2)), LockIndex::new(2));
    }

    #[test]
    fn sdg_falls_back_to_well_defined_state() {
        let mut rt = runtime(StrategyKind::Sdg);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO); // k0
        rt.write_entity(e(0), Value::new(1)).unwrap(); // first write: harmless
        rt.complete_lock(e(1), LockMode::Exclusive, Value::ZERO); // k1
        rt.complete_lock(e(2), LockMode::Exclusive, Value::ZERO); // k2
        rt.write_entity(e(0), Value::new(2)).unwrap(); // destroys k1, k2
        assert_eq!(rt.reachable_target(StrategyKind::Sdg, LockIndex::new(2)), LockIndex::ZERO);
        assert_eq!(rt.reachable_target(StrategyKind::Sdg, LockIndex::new(3)), LockIndex::new(3));
    }

    #[test]
    fn sdg_rollback_restores_values() {
        let mut rt = runtime(StrategyKind::Sdg);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(100));
        rt.write_entity(e(0), Value::new(1)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(200));
        rt.complete_lock(e(2), LockMode::Exclusive, Value::new(300));
        rt.write_entity(e(0), Value::new(2)).unwrap(); // destroys k1, k2
                                                       // Ideal target 2 is undefined; reachable target is 0 (total).
        let target = rt.reachable_target(StrategyKind::Sdg, LockIndex::new(2));
        assert_eq!(target, LockIndex::ZERO);
        let released = rt.rollback_to(target).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(rt.pc, 0);
        assert_eq!(rt.state, StateIndex::ZERO);
        // Rolling back to a *well-defined* non-zero state works: rebuild.
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(100));
        rt.write_entity(e(0), Value::new(1)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(200));
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(1));
    }

    #[test]
    fn unlock_marks_shrinking_and_returns_final_value() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(5));
        rt.write_entity(e(0), Value::new(6)).unwrap();
        let v = rt.complete_unlock(e(0));
        assert_eq!(v, Some(Value::new(6)));
        assert!(rt.shrinking);
        assert!(!rt.rollbackable());
    }

    #[test]
    fn shared_locks_have_no_local_copy() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Shared, Value::new(7));
        assert_eq!(rt.read_entity(e(0), Value::new(42)), Value::new(42));
        assert_eq!(rt.complete_unlock(e(0)), None);
    }

    #[test]
    fn rollback_to_current_lock_index_is_a_noop_motion() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO);
        let pc = rt.pc;
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert!(released.is_empty());
        assert_eq!(rt.pc, pc);
    }
}
