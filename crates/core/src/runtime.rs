//! Per-transaction runtime state.
//!
//! A [`TxnRuntime`] tracks one executing transaction: its program counter,
//! state index (operations executed), granted lock states, workspace
//! (strategy-dependent), and — for the SDG strategy — its state-dependency
//! graph. The rollback procedure of §4 is implemented here, steps 2–5; the
//! engine performs step 1 (waiting/cancelling the transaction) and the
//! lock releases, which need the lock table.

use crate::config::StrategyKind;
use pr_graph::StateDependencyGraph;
use pr_model::TxnId;
use pr_model::{EntityId, Expr, LockIndex, LockMode, StateIndex, TransactionProgram, Value, VarId};
use pr_storage::{McsWorkspace, SingleCopyWorkspace, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Read-only access to transaction runtimes by id.
///
/// The deterministic [`crate::System`] owns its runtimes in a
/// `BTreeMap<TxnId, TxnRuntime>`; the parallel engine keeps each runtime
/// behind its own slot mutex and can only assemble a map of *references*
/// while it holds the guards. Victim selection and resolution planning
/// are generic over this trait so both engines share one §3 planner.
pub trait RuntimeView {
    /// The runtime for `txn`, if it is live in this view.
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime>;
}

impl RuntimeView for BTreeMap<TxnId, TxnRuntime> {
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime> {
        self.get(&txn)
    }
}

impl RuntimeView for BTreeMap<TxnId, &TxnRuntime> {
    fn runtime(&self, txn: TxnId) -> Option<&TxnRuntime> {
        self.get(&txn).copied()
    }
}

/// Execution phase of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Ready to execute its next operation.
    Running,
    /// Blocked on a lock request.
    Blocked,
    /// Finished; locks released.
    Committed,
    /// Terminated without committing — its site crashed or an upper layer
    /// aborted it. Locks are released, uncommitted local state is
    /// discarded, and the transaction never runs again.
    Aborted,
}

/// One granted lock request — the transaction-side record of a lock state.
/// `lock_states[k]` describes lock state `k`.
#[derive(Clone, Copy, Debug)]
pub struct LockStateInfo {
    /// Entity locked by the request this lock state precedes.
    pub entity: EntityId,
    /// Mode acquired.
    pub mode: LockMode,
    /// State index of the lock state — the state the transaction was in
    /// when it issued the request ("the last state in which T does not
    /// hold a lock on A", §3.1). Rollback cost to here = current − this.
    pub state_index: StateIndex,
    /// Program counter of the lock-request operation, where execution
    /// resumes after a rollback to this lock state.
    pub pc: usize,
}

/// Strategy-dependent workspace.
#[derive(Clone, Debug)]
pub enum Workspace {
    /// Multi-lock copy stacks (MCS, §4).
    Mcs(McsWorkspace),
    /// One local copy per entity (total rollback and SDG, §4).
    Single(SingleCopyWorkspace),
}

impl Workspace {
    fn for_strategy(strategy: StrategyKind, initial_vars: &[Value]) -> Workspace {
        match strategy {
            StrategyKind::Mcs => Workspace::Mcs(McsWorkspace::new(initial_vars)),
            StrategyKind::Bounded(k) => {
                Workspace::Mcs(McsWorkspace::with_budget(initial_vars, Some(k.max(1) as usize)))
            }
            StrategyKind::Total | StrategyKind::Sdg => {
                Workspace::Single(SingleCopyWorkspace::new(initial_vars))
            }
            // Repair retains the prefix workspace across a rollback, so it
            // needs the same any-lock-state version stacks as MCS.
            StrategyKind::Repair => Workspace::Mcs(McsWorkspace::new(initial_vars)),
        }
    }

    /// Current local-variable values for expression evaluation.
    pub fn vars(&self) -> &[Value] {
        match self {
            Workspace::Mcs(w) => w.vars(),
            Workspace::Single(w) => w.vars(),
        }
    }

    /// Local copies currently held, in the units compared by the storage
    /// experiments (stack elements beyond base for MCS; one per exclusive
    /// entity for single-copy).
    pub fn copies(&self) -> usize {
        match self {
            Workspace::Mcs(w) => w.copy_counts().total(),
            Workspace::Single(w) => w.entity_copies(),
        }
    }

    /// Structural self-check of the underlying storage (stack ordering,
    /// cached-value coherence). Used by the fault-injection invariant
    /// sweeps after crash recovery.
    pub fn check_integrity(&self) -> Result<(), String> {
        match self {
            Workspace::Mcs(w) => w.check_integrity(),
            Workspace::Single(w) => w.check_integrity(),
        }
    }
}

/// Replay bookkeeping for [`StrategyKind::Repair`]. Boxed on the runtime;
/// absent under every other strategy.
///
/// The tape records the outcome of each operation the last time it
/// executed. After a rollback, the transaction re-walks the suffix between
/// the rollback target and the state it had reached; each suffix operation
/// either **reuses** its taped outcome (when no input changed) or is
/// **replayed** (recomputed against current values). Reuse is verified at
/// every observation point — a `Read` always compares the live value with
/// the tape — so a replayed execution is value-for-value identical to a
/// from-scratch MCS re-execution of the same schedule.
#[derive(Clone, Debug, Default)]
pub struct RepairState {
    /// `tape[pc]` = the value the operation at `pc` produced the last time
    /// it executed: the observed value for `Read`, the computed value for
    /// `Assign`/`Write`/`Compute`, the global snapshot taken by a lock
    /// request. Consulted during replay to decide whether the recorded
    /// outcome still stands.
    tape: Vec<Option<Value>>,
    /// The active replay window, when re-executing a repaired suffix.
    replay: Option<Replay>,
    /// Suffix operations whose outcome had to be recomputed (or, for lock
    /// requests, re-acquired through the lock table).
    pub ops_replayed: u64,
    /// Suffix operations whose taped outcome was reused unchanged.
    pub ops_reused: u64,
    /// Planted-mutant hook for the oracle self-test: when set, replay
    /// reuses taped `Read` outcomes *without* re-checking them against the
    /// live value — exactly the unsound shortcut (skipping a conflicting
    /// suffix op) that the differential oracle exists to catch. Never set
    /// outside tests.
    unsound_skip_taint: bool,
}

impl RepairState {
    fn record(&mut self, pc: usize, value: Value) {
        if self.tape.len() <= pc {
            self.tape.resize(pc + 1, None);
        }
        self.tape[pc] = Some(value);
    }

    fn recorded(&self, pc: usize) -> Option<Value> {
        self.tape.get(pc).copied().flatten()
    }

    /// Whether an operation executing at `state` lies inside the replay
    /// window.
    fn replaying(&self, state: StateIndex) -> bool {
        self.replay.as_ref().is_some_and(|r| state < r.end)
    }
}

/// One replay window: open from a repair rollback until the state index
/// re-reaches the high-water mark it had when the rollback struck.
#[derive(Clone, Debug)]
struct Replay {
    /// Replay ends when the state index reaches this mark. A nested
    /// rollback merges windows by taking the max, which keeps the ledger
    /// additive: every state lost is re-walked (and counted) exactly as
    /// many times as it was lost.
    end: StateIndex,
    /// Variables whose current value differs from the previous execution
    /// of this program region. Starts empty at the rollback target: the
    /// version stacks restore the workspace to precisely the values it
    /// held when execution last passed that point.
    tainted: BTreeSet<VarId>,
}

/// Runtime state of one transaction.
#[derive(Clone, Debug)]
pub struct TxnRuntime {
    /// Transaction id.
    pub id: TxnId,
    /// The program being executed.
    pub program: Arc<TransactionProgram>,
    /// Next operation to execute.
    pub pc: usize,
    /// Operations executed so far (the §2 state index).
    pub state: StateIndex,
    /// Execution phase.
    pub phase: Phase,
    /// The rollback strategy this runtime was built for.
    pub strategy: StrategyKind,
    /// ω for Theorem 2: position in the entry order, fixed at admission
    /// and retained across rollbacks (even total ones — the transaction is
    /// the same execution instance).
    pub entry_order: u64,
    /// Whether the transaction has executed its first unlock. Two-phase
    /// transactions are never rolled back after it (§2), and can never be
    /// blocked again either (no further lock requests).
    pub shrinking: bool,
    /// Granted lock requests, in grant order; index = lock index.
    pub lock_states: Vec<LockStateInfo>,
    /// Strategy-dependent local storage.
    pub workspace: Workspace,
    /// State-dependency graph (SDG strategy only).
    pub sdg: Option<StateDependencyGraph>,
    /// Times this transaction was chosen as a victim.
    pub preemptions: u32,
    /// States lost to rollbacks of this transaction.
    pub states_lost: u64,
    /// Entity currently being waited for, when blocked.
    pub blocked_on: Option<EntityId>,
    /// Entities whose locks are currently held (lock states minus
    /// unlocks), for commit-time release.
    pub held: BTreeSet<EntityId>,
    /// Replay tape and ledger (`Some` iff the strategy is Repair).
    pub repair: Option<Box<RepairState>>,
}

impl TxnRuntime {
    /// Creates the runtime for `program`, admitted at `entry_order`.
    pub fn new(
        id: TxnId,
        program: Arc<TransactionProgram>,
        entry_order: u64,
        strategy: StrategyKind,
    ) -> Self {
        let workspace = Workspace::for_strategy(strategy, program.initial_vars());
        // Sdg tracks write-destroyed states; Bounded tracks
        // eviction-destroyed ones. Both consult the graph for reachable
        // rollback targets.
        let sdg = matches!(strategy, StrategyKind::Sdg | StrategyKind::Bounded(_))
            .then(StateDependencyGraph::new);
        TxnRuntime {
            id,
            program,
            pc: 0,
            state: StateIndex::ZERO,
            phase: Phase::Running,
            strategy,
            entry_order,
            shrinking: false,
            lock_states: Vec::new(),
            workspace,
            sdg,
            preemptions: 0,
            states_lost: 0,
            blocked_on: None,
            held: BTreeSet::new(),
            repair: (strategy == StrategyKind::Repair).then(Box::default),
        }
    }

    /// Lock index the next operation executes at (= granted lock states).
    pub fn lock_index(&self) -> LockIndex {
        LockIndex::new(self.lock_states.len() as u32)
    }

    /// The lock state at which `entity` was locked, if held.
    pub fn lock_state_for(&self, entity: EntityId) -> Option<LockIndex> {
        self.lock_states.iter().position(|ls| ls.entity == entity).map(|k| LockIndex::new(k as u32))
    }

    /// §3.1 rollback cost to reach lock state `target`: states lost.
    pub fn cost_to_lock_state(&self, target: LockIndex) -> u32 {
        let target_state = if target.index() < self.lock_states.len() {
            self.lock_states[target.index()].state_index
        } else {
            self.state
        };
        self.state.cost_to(target_state)
    }

    /// The deepest reachable rollback target at or below `ideal` under
    /// this runtime's strategy: `ideal` itself for MCS, lock state 0 for
    /// total rollback, and the latest well-defined state for SDG.
    pub fn reachable_target(&self, strategy: StrategyKind, ideal: LockIndex) -> LockIndex {
        match strategy {
            StrategyKind::Total => LockIndex::ZERO,
            // Repair rolls lock state back exactly as far as MCS; the
            // difference is how the suffix is re-executed, not how deep.
            StrategyKind::Mcs | StrategyKind::Repair => ideal,
            StrategyKind::Sdg | StrategyKind::Bounded(_) => self
                .sdg
                .as_ref()
                .expect("SDG/Bounded strategies carry a state-dependency graph")
                .latest_well_defined_at_or_below(ideal),
        }
    }

    /// Completes a granted lock request: records the lock state, advances
    /// past the request op, and (for exclusive locks) takes the local copy
    /// of the entity's global value.
    pub fn complete_lock(&mut self, entity: EntityId, mode: LockMode, global: Value) {
        let info = LockStateInfo { entity, mode, state_index: self.state, pc: self.pc };
        let lock_state = self.lock_index();
        self.lock_states.push(info);
        self.held.insert(entity);
        if mode == LockMode::Exclusive {
            match &mut self.workspace {
                Workspace::Mcs(w) => w.on_exclusive_lock(entity, lock_state, global),
                Workspace::Single(w) => w.on_exclusive_lock(entity, lock_state, global),
            }
        }
        if let Some(sdg) = &mut self.sdg {
            sdg.on_lock_state();
        }
        if let Some(rep) = &mut self.repair {
            // Lock requests are always genuinely re-performed through the
            // lock table during replay — the grant, and the global snapshot
            // an exclusive grant copies in, cannot be reused from the tape.
            if rep.replaying(self.state) {
                rep.ops_replayed += 1;
            }
            rep.record(self.pc, global);
        }
        self.advance();
        self.close_replay_if_done();
        self.phase = Phase::Running;
        self.blocked_on = None;
    }

    /// Reads the transaction's view of `entity`: its local copy when held
    /// exclusively, otherwise `fallback_global` (shared locks read the
    /// database's global value directly).
    pub fn read_entity(&self, entity: EntityId, fallback_global: Value) -> Value {
        let local = match &self.workspace {
            Workspace::Mcs(w) => w.read_entity(entity),
            Workspace::Single(w) => w.read_entity(entity),
        };
        local.unwrap_or(fallback_global)
    }

    /// Records a write of `value` to `entity` at the current lock index.
    pub fn write_entity(&mut self, entity: EntityId, value: Value) -> Result<(), StorageError> {
        let li = self.lock_index();
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                if let Some((from, to)) = w.write_entity(entity, li, value)? {
                    // A budget eviction destroyed the values of lock
                    // states in [from, to): encode as the spanning edge
                    // (from − 1, to).
                    if let Some(sdg) = &mut self.sdg {
                        sdg.on_write(LockIndex::new(from.raw().saturating_sub(1)), to);
                    }
                }
            }
            Workspace::Single(w) => {
                let rec = w.write_entity(entity, li, value)?;
                if let Some(sdg) = &mut self.sdg {
                    sdg.on_write(rec.u, rec.w);
                }
            }
        }
        self.advance();
        Ok(())
    }

    /// Records an assignment of `value` to local variable `var`.
    pub fn assign_var(&mut self, var: VarId, value: Value) -> Result<(), StorageError> {
        let li = self.lock_index();
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                if let Some((from, to)) = w.assign_var(var, li, value)? {
                    if let Some(sdg) = &mut self.sdg {
                        sdg.on_write(LockIndex::new(from.raw().saturating_sub(1)), to);
                    }
                }
            }
            Workspace::Single(w) => {
                let rec = w.assign_var(var, li, value)?;
                if let Some(sdg) = &mut self.sdg {
                    sdg.on_write(rec.u, rec.w);
                }
            }
        }
        self.advance();
        Ok(())
    }

    /// Handles an unlock: marks the shrinking phase and returns the final
    /// local value to publish (exclusive holds only).
    pub fn complete_unlock(&mut self, entity: EntityId) -> Option<Value> {
        self.shrinking = true;
        self.held.remove(&entity);
        let published = match &mut self.workspace {
            Workspace::Mcs(w) => w.on_unlock(entity),
            Workspace::Single(w) => w.on_unlock(entity),
        };
        self.advance();
        published
    }

    /// Advances one atomic operation: `pc` and state index.
    pub fn advance(&mut self) {
        self.pc += 1;
        self.state = self.state.next();
    }

    /// Closes the replay window once the state index re-reaches its
    /// high-water mark. Called after every op that can advance the state.
    fn close_replay_if_done(&mut self) {
        if let Some(rep) = &mut self.repair {
            if rep.replay.as_ref().is_some_and(|r| self.state >= r.end) {
                rep.replay = None;
            }
        }
    }

    /// Executes a `Read` op: observes the transaction's view of `entity`
    /// (local copy when held exclusively, otherwise `global`) and assigns
    /// it to `into`. Under Repair this is the verification point of the
    /// replay protocol: the live observation is compared against the tape,
    /// and `into` is tainted or cleared accordingly — a reuse is never
    /// trusted across a value the environment could have changed.
    pub fn exec_read(
        &mut self,
        entity: EntityId,
        into: VarId,
        global: Value,
    ) -> Result<(), StorageError> {
        let mut value = self.read_entity(entity, global);
        if let Some(rep) = self.repair.as_deref_mut() {
            if rep.replaying(self.state) {
                let recorded = rep.recorded(self.pc);
                if rep.unsound_skip_taint {
                    // Planted mutant: trust the tape blindly, skipping the
                    // live comparison. Unsound whenever the blocker's
                    // publish changed the value underneath the suffix.
                    if let Some(v) = recorded {
                        value = v;
                    }
                    rep.ops_reused += 1;
                } else if recorded == Some(value) {
                    rep.ops_reused += 1;
                    if let Some(r) = &mut rep.replay {
                        r.tainted.remove(&into);
                    }
                } else {
                    rep.ops_replayed += 1;
                    if let Some(r) = &mut rep.replay {
                        r.tainted.insert(into);
                    }
                }
            }
            rep.record(self.pc, value);
        }
        self.assign_var(into, value)?;
        self.close_replay_if_done();
        Ok(())
    }

    /// Executes an `Assign` op: evaluates `expr` (reusing the taped result
    /// during replay when no input variable is tainted) and assigns it to
    /// `var`.
    pub fn exec_assign(&mut self, var: VarId, expr: &Expr) -> Result<(), StorageError> {
        let value = self.eval_op(expr, Some(var));
        self.assign_var(var, value)?;
        self.close_replay_if_done();
        Ok(())
    }

    /// Executes a `Write` op: evaluates `expr` (reusing the taped result
    /// during replay when no input variable is tainted) and writes it to
    /// `entity`'s local copy. The write always goes through the workspace,
    /// reused or not — version-stack bookkeeping must be identical to a
    /// from-scratch re-execution.
    pub fn exec_write(&mut self, entity: EntityId, expr: &Expr) -> Result<(), StorageError> {
        let value = self.eval_op(expr, None);
        self.write_entity(entity, value)?;
        self.close_replay_if_done();
        Ok(())
    }

    /// Executes a `Compute` op: evaluates `expr` for its cost (result
    /// discarded), skipping the evaluation during replay when no input
    /// variable is tainted.
    pub fn exec_compute(&mut self, expr: &Expr) {
        let _ = self.eval_op(expr, None);
        self.advance();
        self.close_replay_if_done();
    }

    /// Shared evaluation path for `Assign`/`Write`/`Compute`: returns the
    /// op's value, reusing the tape during replay when every input
    /// variable is untainted, and maintains the taint set for `out` (the
    /// variable the result is assigned to, if any).
    fn eval_op(&mut self, expr: &Expr, out: Option<VarId>) -> Value {
        let pc = self.pc;
        let state = self.state;
        let Some(rep) = self.repair.as_deref_mut() else {
            return expr.eval(self.workspace.vars());
        };
        if !rep.replaying(state) {
            let value = expr.eval(self.workspace.vars());
            rep.record(pc, value);
            return value;
        }
        let recorded = rep.recorded(pc);
        let inputs_clean = rep
            .replay
            .as_ref()
            .is_some_and(|r| !expr.variables().iter().any(|v| r.tainted.contains(v)));
        let value = match recorded {
            Some(v) if inputs_clean => {
                rep.ops_reused += 1;
                // Backstop: in debug builds re-derive the value and insist
                // the tape agrees (off only for the planted mutant, whose
                // whole point is to let an unsound reuse reach the oracle).
                debug_assert!(
                    rep.unsound_skip_taint || expr.eval(self.workspace.vars()) == v,
                    "repair reused a stale result for pc {pc}",
                );
                v
            }
            _ => {
                rep.ops_replayed += 1;
                expr.eval(self.workspace.vars())
            }
        };
        if let Some(var) = out {
            if let Some(r) = &mut rep.replay {
                if recorded == Some(value) {
                    r.tainted.remove(&var);
                } else {
                    r.tainted.insert(var);
                }
            }
        }
        rep.record(pc, value);
        value
    }

    /// The state index of the earliest conflicting access for a rollback
    /// aiming at lock state `ideal`: the state at which the victim issued
    /// the contested lock request, or the current state when `ideal` is
    /// the current lock index (requeue candidates, which release nothing).
    pub fn conflict_state_for(&self, ideal: LockIndex) -> StateIndex {
        self.lock_states.get(ideal.index()).map_or(self.state, |ls| ls.state_index)
    }

    /// The repair ledger: `(ops_replayed, ops_reused)`. Zero under every
    /// non-Repair strategy.
    pub fn repair_ops(&self) -> (u64, u64) {
        self.repair.as_ref().map_or((0, 0), |r| (r.ops_replayed, r.ops_reused))
    }

    /// Plants the unsound-reuse mutant (Repair only): replay will trust
    /// taped `Read` outcomes without comparing them against live values.
    /// Exists so the equivalence battery can prove the differential oracle
    /// actually catches a repair that skips a conflicting suffix op.
    #[doc(hidden)]
    pub fn plant_unsound_skip_taint(&mut self) {
        if let Some(rep) = &mut self.repair {
            rep.unsound_skip_taint = true;
        }
    }

    /// Performs the runtime part of a rollback to lock state `target`
    /// (workspace restore, SDG truncation, pc/state reset, §4 steps 2–5).
    /// Returns the lock-state records released (the engine releases the
    /// corresponding table locks, *without* publishing).
    ///
    /// The caller must have verified that `target` is reachable under the
    /// strategy; for single-copy workspaces an unreachable target is a
    /// programming error and surfaces as `StorageError::NotRestorable`.
    pub fn rollback_to(&mut self, target: LockIndex) -> Result<Vec<LockStateInfo>, StorageError> {
        debug_assert!(!self.shrinking, "two-phase transactions never roll back after unlock");
        debug_assert!(target.index() <= self.lock_states.len());
        // A bounded workspace cannot detect a rollback into an evicted
        // interval on its own (the stacks simply no longer hold the
        // value); the engine must only aim at well-defined states. The
        // single-copy workspace (Sdg strategy) validates for itself and
        // returns an error, so only Bounded needs the guard.
        debug_assert!(
            !matches!(self.strategy, StrategyKind::Bounded(_))
                || self.sdg.as_ref().is_some_and(|g| g.is_well_defined(target)),
            "bounded rollback target {target:?} lies in an evicted interval",
        );
        match &mut self.workspace {
            Workspace::Mcs(w) => {
                w.rollback_to(target);
            }
            Workspace::Single(w) => {
                w.rollback_to(target)?;
            }
        }
        if let Some(sdg) = &mut self.sdg {
            sdg.rollback_to(target);
        }
        let released = self.lock_states.split_off(target.index());
        for ls in &released {
            self.held.remove(&ls.entity);
        }
        let (new_pc, new_state) = match self.lock_states.get(target.index().wrapping_sub(1)) {
            // Rolling to lock state k: resume at the k-th lock request.
            _ if !released.is_empty() => (released[0].pc, released[0].state_index),
            // target == current lock index: nothing released, nothing moves.
            _ => (self.pc, self.state),
        };
        let lost = self.state.cost_to(new_state);
        self.states_lost += u64::from(lost);
        self.preemptions += 1;
        if let Some(rep) = &mut self.repair {
            // Open (or extend) the replay window over the lost suffix. The
            // empty taint set is sound only while the tape ahead of the
            // resume point was written by a single execution (the version
            // stacks restore every variable to exactly that execution's
            // value at the resume point, so nothing has diverged yet). A
            // nested rollback breaks that: entries the interrupted replay
            // never reached still date from the *previous* execution,
            // while the taint set that tracked divergence from them dies
            // with the window — so drop those older-epoch entries and
            // re-derive them instead of reusing.
            let end = match rep.replay.take() {
                Some(r) => {
                    rep.tape.truncate(self.pc);
                    r.end.max(self.state)
                }
                None => self.state,
            };
            if end > new_state {
                rep.replay = Some(Replay { end, tainted: BTreeSet::new() });
            }
        }
        self.pc = new_pc;
        self.state = new_state;
        self.phase = Phase::Running;
        self.blocked_on = None;
        Ok(released)
    }

    /// Whether this transaction may still be rolled back.
    pub fn rollbackable(&self) -> bool {
        !self.shrinking && matches!(self.phase, Phase::Running | Phase::Blocked)
    }

    /// Local copies currently held.
    pub fn copies(&self) -> usize {
        self.workspace.copies()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_model::{EntityId, ProgramBuilder};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    fn runtime(strategy: StrategyKind) -> TxnRuntime {
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .write_const(e(1), 2)
            .lock_exclusive(e(2))
            .build_unchecked();
        TxnRuntime::new(TxnId::new(1), Arc::new(p), 0, strategy)
    }

    #[test]
    fn complete_lock_advances_and_records() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        assert_eq!(rt.pc, 1);
        assert_eq!(rt.state, StateIndex::new(1));
        assert_eq!(rt.lock_index(), LockIndex::new(1));
        assert_eq!(rt.lock_state_for(e(0)), Some(LockIndex::ZERO));
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(10));
    }

    #[test]
    fn cost_to_lock_state_is_state_difference() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO); // state 0→1
        rt.write_entity(e(0), Value::new(1)).unwrap(); // 1→2
        rt.complete_lock(e(1), LockMode::Exclusive, Value::ZERO); // 2→3
                                                                  // Lock state 0 was at state 0; lock state 1 at state 2.
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(0)), 3);
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(1)), 1);
        assert_eq!(rt.cost_to_lock_state(LockIndex::new(2)), 0);
    }

    #[test]
    fn rollback_resets_pc_state_and_releases_locks() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        rt.write_entity(e(0), Value::new(11)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.write_entity(e(1), Value::new(21)).unwrap();
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].entity, e(1));
        // Resume at the second lock request (pc 2 in the program), state 2.
        assert_eq!(rt.pc, 2);
        assert_eq!(rt.state, StateIndex::new(2));
        assert_eq!(rt.states_lost, 2);
        assert_eq!(rt.preemptions, 1);
        // a's written value survives (write was before lock state 1).
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(11));
        assert!(rt.lock_state_for(e(1)).is_none());
    }

    #[test]
    fn total_strategy_reaches_only_zero() {
        let rt = runtime(StrategyKind::Total);
        assert_eq!(rt.reachable_target(StrategyKind::Total, LockIndex::new(2)), LockIndex::ZERO);
    }

    #[test]
    fn mcs_reaches_ideal_target() {
        let rt = runtime(StrategyKind::Mcs);
        assert_eq!(rt.reachable_target(StrategyKind::Mcs, LockIndex::new(2)), LockIndex::new(2));
    }

    #[test]
    fn sdg_falls_back_to_well_defined_state() {
        let mut rt = runtime(StrategyKind::Sdg);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO); // k0
        rt.write_entity(e(0), Value::new(1)).unwrap(); // first write: harmless
        rt.complete_lock(e(1), LockMode::Exclusive, Value::ZERO); // k1
        rt.complete_lock(e(2), LockMode::Exclusive, Value::ZERO); // k2
        rt.write_entity(e(0), Value::new(2)).unwrap(); // destroys k1, k2
        assert_eq!(rt.reachable_target(StrategyKind::Sdg, LockIndex::new(2)), LockIndex::ZERO);
        assert_eq!(rt.reachable_target(StrategyKind::Sdg, LockIndex::new(3)), LockIndex::new(3));
    }

    #[test]
    fn sdg_rollback_restores_values() {
        let mut rt = runtime(StrategyKind::Sdg);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(100));
        rt.write_entity(e(0), Value::new(1)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(200));
        rt.complete_lock(e(2), LockMode::Exclusive, Value::new(300));
        rt.write_entity(e(0), Value::new(2)).unwrap(); // destroys k1, k2
                                                       // Ideal target 2 is undefined; reachable target is 0 (total).
        let target = rt.reachable_target(StrategyKind::Sdg, LockIndex::new(2));
        assert_eq!(target, LockIndex::ZERO);
        let released = rt.rollback_to(target).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(rt.pc, 0);
        assert_eq!(rt.state, StateIndex::ZERO);
        // Rolling back to a *well-defined* non-zero state works: rebuild.
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(100));
        rt.write_entity(e(0), Value::new(1)).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(200));
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(rt.read_entity(e(0), Value::ZERO), Value::new(1));
    }

    #[test]
    fn unlock_marks_shrinking_and_returns_final_value() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(5));
        rt.write_entity(e(0), Value::new(6)).unwrap();
        let v = rt.complete_unlock(e(0));
        assert_eq!(v, Some(Value::new(6)));
        assert!(rt.shrinking);
        assert!(!rt.rollbackable());
    }

    #[test]
    fn shared_locks_have_no_local_copy() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Shared, Value::new(7));
        assert_eq!(rt.read_entity(e(0), Value::new(42)), Value::new(42));
        assert_eq!(rt.complete_unlock(e(0)), None);
    }

    #[test]
    fn rollback_to_current_lock_index_is_a_noop_motion() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO);
        let pc = rt.pc;
        let released = rt.rollback_to(LockIndex::new(1)).unwrap();
        assert!(released.is_empty());
        assert_eq!(rt.pc, pc);
    }

    use pr_model::Expr;

    fn v(i: u16) -> VarId {
        VarId::new(i)
    }

    /// lock e0 X · read e0 → v0 · lock e1 X · write e1 := v0 + 1.
    fn repair_runtime() -> TxnRuntime {
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .read(e(0), v(0))
            .lock_exclusive(e(1))
            .write(e(1), Expr::add(Expr::var(v(0)), Expr::lit(1)))
            .build_unchecked();
        TxnRuntime::new(TxnId::new(1), Arc::new(p), 0, StrategyKind::Repair)
    }

    #[test]
    fn repair_reuses_unchanged_suffix_and_ledger_reconciles() {
        let mut rt = repair_runtime();
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        rt.exec_read(e(0), v(0), Value::ZERO).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        assert_eq!(rt.read_entity(e(1), Value::ZERO), Value::new(11));
        // Lose the e1 suffix; the e0 prefix (and v0) survive in place.
        rt.rollback_to(LockIndex::new(1)).unwrap();
        assert_eq!(rt.states_lost, 2);
        // Re-execute: the lock is genuinely re-acquired (replayed), the
        // write's inputs are untainted so its taped result is reused.
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        assert_eq!(rt.read_entity(e(1), Value::ZERO), Value::new(11));
        assert_eq!(rt.repair_ops(), (1, 1));
        let (replayed, reused) = rt.repair_ops();
        assert_eq!(replayed + reused, rt.states_lost, "every lost state is re-walked once");
        assert!(rt.repair.as_ref().unwrap().replay.is_none(), "window closed at high-water mark");
    }

    #[test]
    fn repair_read_detects_changed_value_and_taints_downstream() {
        let mut rt = repair_runtime();
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        rt.exec_read(e(0), v(0), Value::ZERO).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        rt.rollback_to(LockIndex::ZERO).unwrap();
        assert_eq!(rt.states_lost, 4);
        // The blocker published a new value for e0: the read observes it,
        // taints v0, and everything downstream recomputes.
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(50));
        rt.exec_read(e(0), v(0), Value::ZERO).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        assert_eq!(rt.read_entity(e(1), Value::ZERO), Value::new(51), "recomputed, not reused");
        assert_eq!(rt.repair_ops(), (4, 0), "changed input forces a full replay");
    }

    #[test]
    fn planted_mutant_reuses_stale_read_and_diverges() {
        let mut rt = repair_runtime();
        rt.plant_unsound_skip_taint();
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(10));
        rt.exec_read(e(0), v(0), Value::ZERO).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        rt.rollback_to(LockIndex::ZERO).unwrap();
        rt.complete_lock(e(0), LockMode::Exclusive, Value::new(50));
        rt.exec_read(e(0), v(0), Value::ZERO).unwrap();
        rt.complete_lock(e(1), LockMode::Exclusive, Value::new(20));
        rt.exec_write(e(1), &Expr::add(Expr::var(v(0)), Expr::lit(1))).unwrap();
        // The mutant trusted the taped read (10) over the live value (50):
        // the published result is stale — exactly what the differential
        // oracle must flag.
        assert_eq!(rt.read_entity(e(1), Value::ZERO), Value::new(11));
    }

    #[test]
    fn conflict_state_is_the_contested_lock_request() {
        let mut rt = runtime(StrategyKind::Mcs);
        rt.complete_lock(e(0), LockMode::Exclusive, Value::ZERO); // state 0→1
        rt.write_entity(e(0), Value::new(1)).unwrap(); // 1→2
        rt.complete_lock(e(1), LockMode::Exclusive, Value::ZERO); // 2→3
        assert_eq!(rt.conflict_state_for(LockIndex::ZERO), StateIndex::ZERO);
        assert_eq!(rt.conflict_state_for(LockIndex::new(1)), StateIndex::new(2));
        // Requeue candidates aim at the current lock index: nothing is
        // released, the conflict is "here".
        assert_eq!(rt.conflict_state_for(rt.lock_index()), rt.state);
    }
}
