//! Engine errors.

use pr_lock::LockError;
use pr_model::TxnId;
use pr_storage::StorageError;
use std::fmt;

/// Errors raised by the execution engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// Unknown transaction id.
    NoSuchTxn(TxnId),
    /// The transaction cannot step: it is blocked or committed.
    NotRunnable(TxnId),
    /// `run_to_completion` hit the configured step limit.
    StepLimitExceeded {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// Every live transaction is blocked yet no deadlock was detected —
    /// an engine invariant violation (deadlock detection is complete, so
    /// this indicates a bug; surfaced instead of hanging).
    Stuck {
        /// The blocked transactions.
        blocked: Vec<TxnId>,
    },
    /// A storage-layer failure (always an engine bug if it surfaces).
    Storage(StorageError),
    /// A lock-manager failure (always an engine bug if it surfaces).
    Lock(LockError),
    /// A strictly-installed acquisition-order certificate does not cover
    /// an admitted transaction: its lock request at `pc` breaks the
    /// certified order (or names an uncertified entity).
    CertificateViolation {
        /// The uncovered transaction.
        txn: TxnId,
        /// Program counter of the offending lock request.
        pc: usize,
        /// The entity whose request the order cannot vouch for.
        entity: pr_model::EntityId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTxn(t) => write!(f, "no such transaction: {t}"),
            EngineError::NotRunnable(t) => write!(f, "transaction {t} is not runnable"),
            EngineError::StepLimitExceeded { limit } => {
                write!(f, "step limit exceeded ({limit})")
            }
            EngineError::Stuck { blocked } => {
                write!(f, "all live transactions blocked without detected deadlock: {blocked:?}")
            }
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Lock(e) => write!(f, "lock error: {e}"),
            EngineError::CertificateViolation { txn, pc, entity } => {
                write!(
                    f,
                    "certificate does not cover {txn}: request of {entity} at pc {pc} \
                     breaks the certified order"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<LockError> for EngineError {
    fn from(e: LockError) -> Self {
        EngineError::Lock(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_model::EntityId;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = StorageError::NoSuchEntity(EntityId::new(1)).into();
        assert!(matches!(e, EngineError::Storage(_)));
        assert!(e.to_string().contains("storage error"));
        let e: EngineError =
            LockError::NotHeld { txn: TxnId::new(1), entity: EntityId::new(0) }.into();
        assert!(matches!(e, EngineError::Lock(_)));
        assert!(EngineError::Stuck { blocked: vec![TxnId::new(1)] }
            .to_string()
            .contains("blocked"));
    }
}
