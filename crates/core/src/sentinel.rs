//! The runtime invariant sentinel (feature `invariants`).
//!
//! A self-checking harness the engine threads through every state
//! transition when built with `--features invariants`. After each step it
//! re-proves the structural claims the paper's correctness argument rests
//! on:
//!
//! - **Graph/table consistency** — the waits-for graph's two internal maps
//!   agree with each other ([`pr_graph::WaitsForGraph::check_consistent`])
//!   and with the lock table and runtime phases
//!   ([`crate::System::check_invariants`]).
//! - **Theorem 1 (forest property)** — while no transaction has requested
//!   a *shared* lock, the waits-for graph must be a forest at every quiet
//!   point, and any single exclusive wait can close at most **one** new
//!   cycle.
//! - **ω-order legality** — under the paper's partial-order victim policy
//!   (Theorem 2), every preempted transaction must be strictly younger
//!   (by entry order) than the transaction whose request closed the
//!   cycle, or be that transaction itself.
//!
//! On violation the sentinel panics with the failed claim *and* a bounded
//! trace of the most recent engine events, so the report alone reproduces
//! the path into the broken state.

use std::collections::VecDeque;

/// How many recent events the panic report retains.
const TRACE_CAP: usize = 64;

/// Bounded event trace plus the workload facts the invariants depend on.
#[derive(Debug, Clone)]
pub struct Sentinel {
    trace: VecDeque<String>,
    /// Total events ever recorded (the trace keeps only the tail).
    seen: u64,
    /// True until some admitted program requests a shared lock; Theorem 1's
    /// forest property and one-cycle-per-wait bound apply only while this
    /// holds.
    exclusive_only: bool,
}

impl Default for Sentinel {
    fn default() -> Self {
        Self::new()
    }
}

impl Sentinel {
    /// A fresh sentinel for an empty system.
    pub fn new() -> Self {
        Sentinel { trace: VecDeque::new(), seen: 0, exclusive_only: true }
    }

    /// Appends an event to the bounded trace.
    pub fn record(&mut self, event: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(event);
        self.seen += 1;
    }

    /// Marks the workload as using shared locks, disabling the
    /// exclusive-only (Theorem 1) checks.
    pub fn note_shared_mode(&mut self) {
        self.exclusive_only = false;
    }

    /// Whether every lock request admitted so far is exclusive.
    pub fn exclusive_only(&self) -> bool {
        self.exclusive_only
    }

    /// Panics with the violated claim and the recent event trace.
    pub fn fail(&self, context: &str, violation: &str) -> ! {
        let shown = self.trace.len();
        let mut report = format!(
            "invariant sentinel tripped at {context}: {violation}\n\
             --- last {shown} of {} engine events ---\n",
            self.seen
        );
        for (i, line) in self.trace.iter().enumerate() {
            report.push_str(&format!("  {:>3}. {line}\n", self.seen as usize - shown + i + 1));
        }
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_bounded_but_counts_everything() {
        let mut s = Sentinel::new();
        for i in 0..(TRACE_CAP as u64 + 10) {
            s.record(format!("event {i}"));
        }
        assert_eq!(s.seen, TRACE_CAP as u64 + 10);
        assert_eq!(s.trace.len(), TRACE_CAP);
        assert_eq!(s.trace.front().unwrap(), "event 10");
    }

    #[test]
    fn fail_reports_context_and_trace() {
        let mut s = Sentinel::new();
        s.record("T1 admitted".into());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.fail("unit test", "synthetic violation")
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("synthetic violation"), "{msg}");
        assert!(msg.contains("T1 admitted"), "{msg}");
    }

    #[test]
    fn shared_mode_latches() {
        let mut s = Sentinel::new();
        assert!(s.exclusive_only());
        s.note_shared_mode();
        assert!(!s.exclusive_only());
    }
}
