//! Static validation of transaction programs against the §2 protocol.
//!
//! A program is admissible when it is two-phase, lock-covers every access,
//! performs no writes before its first lock request (§4's convenience
//! assumption), stays within its declared local variables, and terminates in
//! a single `COMMIT`.

use crate::error::{ModelError, Violation};
use crate::ids::{EntityId, VarId};
use crate::op::{LockMode, Op};
use crate::program::TransactionProgram;
use std::collections::HashMap;

/// Validates `program`, returning all violations found (empty = valid).
pub fn violations(program: &TransactionProgram) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut held: HashMap<EntityId, LockMode> = HashMap::new();
    let mut unlocked_any = false;
    let mut locked_any = false;
    let mut committed_at: Option<usize> = None;
    let declared = program.num_vars();

    let check_var = |pc: usize, var: VarId, out: &mut Vec<Violation>| {
        if var.index() >= declared {
            out.push(Violation::VarOutOfRange { pc, var, declared });
        }
    };

    for (pc, op) in program.ops().iter().enumerate() {
        if let Some(cpc) = committed_at {
            // Report each trailing op once; committed_at stays at first commit.
            let _ = cpc;
            out.push(Violation::OpAfterCommit { pc });
            continue;
        }
        match op {
            Op::LockShared(e) | Op::LockExclusive(e) => {
                if unlocked_any {
                    out.push(Violation::LockAfterUnlock { pc, entity: *e });
                }
                let mode = if matches!(op, Op::LockExclusive(_)) {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                match held.get(e) {
                    // `LS` then `LX`: an upgrade, which the model
                    // deliberately rejects — the paper defines neither
                    // the wait semantics nor the rollback target of an
                    // in-place strengthening, and two upgrading shared
                    // holders deadlock on each other. The held mode is
                    // still strengthened so follow-on diagnostics (e.g.
                    // writes under the would-be exclusive lock) don't
                    // cascade.
                    Some(LockMode::Shared) if mode == LockMode::Exclusive => {
                        out.push(Violation::LockUpgrade { pc, entity: *e });
                        held.insert(*e, LockMode::Exclusive);
                    }
                    // Re-request in the same or a weaker mode: plain
                    // double lock.
                    Some(_) => {
                        out.push(Violation::DoubleLock { pc, entity: *e });
                    }
                    None => {
                        held.insert(*e, mode);
                    }
                }
                locked_any = true;
            }
            Op::Unlock(e) => {
                if held.remove(e).is_none() {
                    out.push(Violation::UnlockNotHeld { pc, entity: *e });
                }
                unlocked_any = true;
            }
            Op::Read { entity, into } => {
                if !held.contains_key(entity) {
                    out.push(Violation::ReadWithoutLock { pc, entity: *entity });
                }
                if !locked_any {
                    out.push(Violation::WriteBeforeFirstLock { pc });
                }
                check_var(pc, *into, &mut out);
            }
            Op::Write { entity, expr } => {
                match held.get(entity) {
                    Some(LockMode::Exclusive) => {}
                    _ => out.push(Violation::WriteWithoutExclusiveLock { pc, entity: *entity }),
                }
                if !locked_any {
                    out.push(Violation::WriteBeforeFirstLock { pc });
                }
                for v in expr.variables() {
                    check_var(pc, v, &mut out);
                }
            }
            Op::Assign { var, expr } => {
                if !locked_any {
                    out.push(Violation::WriteBeforeFirstLock { pc });
                }
                check_var(pc, *var, &mut out);
                for v in expr.variables() {
                    check_var(pc, v, &mut out);
                }
            }
            Op::Compute(expr) => {
                for v in expr.variables() {
                    check_var(pc, v, &mut out);
                }
            }
            Op::Commit => {
                committed_at = Some(pc);
            }
        }
    }

    if committed_at.is_none() {
        out.push(Violation::MissingCommit);
    }
    out
}

/// Validates `program`, returning `Err` with every violation if any exist.
pub fn validate(program: &TransactionProgram) -> Result<(), ModelError> {
    let vs = violations(program);
    if vs.is_empty() {
        Ok(())
    } else {
        Err(ModelError::InvalidProgram(vs))
    }
}

/// Whether the program is two-phase *and* otherwise admissible.
pub fn is_valid(program: &TransactionProgram) -> bool {
    violations(program).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Expr;
    use crate::value::Value;

    fn prog(ops: Vec<Op>, nvars: usize) -> TransactionProgram {
        TransactionProgram::from_parts(ops, vec![Value::ZERO; nvars])
    }

    #[test]
    fn valid_two_phase_program_passes() {
        let p = prog(
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::LockShared(EntityId::new(1)),
                Op::Read { entity: EntityId::new(1), into: VarId::new(0) },
                Op::Write { entity: EntityId::new(0), expr: Expr::var(VarId::new(0)) },
                Op::Unlock(EntityId::new(0)),
                Op::Unlock(EntityId::new(1)),
                Op::Commit,
            ],
            1,
        );
        assert!(is_valid(&p), "{:?}", violations(&p));
    }

    #[test]
    fn lock_after_unlock_is_rejected() {
        let p = prog(
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::Unlock(EntityId::new(0)),
                Op::LockExclusive(EntityId::new(1)),
                Op::Commit,
            ],
            0,
        );
        assert!(violations(&p)
            .iter()
            .any(|v| matches!(v, Violation::LockAfterUnlock { pc: 2, .. })));
    }

    #[test]
    fn double_lock_is_rejected() {
        // Same mode twice (both directions) and the downgrade LX→LS are
        // all plain double locks.
        for ops in [
            vec![Op::LockShared(EntityId::new(0)), Op::LockShared(EntityId::new(0)), Op::Commit],
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::LockExclusive(EntityId::new(0)),
                Op::Commit,
            ],
            vec![Op::LockExclusive(EntityId::new(0)), Op::LockShared(EntityId::new(0)), Op::Commit],
        ] {
            let p = prog(ops, 0);
            assert!(
                violations(&p).iter().any(|v| matches!(v, Violation::DoubleLock { pc: 1, .. })),
                "{:?}",
                violations(&p)
            );
        }
    }

    #[test]
    fn shared_to_exclusive_upgrade_is_rejected_as_upgrade() {
        let p = prog(
            vec![
                Op::LockShared(EntityId::new(0)),
                Op::LockExclusive(EntityId::new(0)),
                Op::Write { entity: EntityId::new(0), expr: Expr::lit(1) },
                Op::Commit,
            ],
            0,
        );
        let vs = violations(&p);
        assert!(vs.iter().any(|v| matches!(v, Violation::LockUpgrade { pc: 1, .. })), "{vs:?}");
        // The upgrade is the only violation: the held mode is treated as
        // strengthened afterwards, so the write does not also fire.
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn unlock_not_held_is_rejected() {
        // Unlock of a never-locked entity.
        let p = prog(
            vec![Op::LockShared(EntityId::new(0)), Op::Unlock(EntityId::new(1)), Op::Commit],
            0,
        );
        let vs = violations(&p);
        assert!(
            vs.iter().any(|v| matches!(v, Violation::UnlockNotHeld { pc: 1, entity: EntityId(1) })),
            "{vs:?}"
        );
        // Unlock of an entity already released.
        let p2 = prog(
            vec![
                Op::LockShared(EntityId::new(0)),
                Op::Unlock(EntityId::new(0)),
                Op::Unlock(EntityId::new(0)),
                Op::Commit,
            ],
            0,
        );
        assert!(violations(&p2)
            .iter()
            .any(|v| matches!(v, Violation::UnlockNotHeld { pc: 2, .. })));
    }

    #[test]
    fn read_without_lock_is_rejected() {
        let p = prog(
            vec![
                Op::LockShared(EntityId::new(1)),
                Op::Read { entity: EntityId::new(0), into: VarId::new(0) },
                Op::Commit,
            ],
            1,
        );
        assert!(violations(&p).iter().any(|v| matches!(v, Violation::ReadWithoutLock { .. })));
    }

    #[test]
    fn write_under_shared_lock_is_rejected() {
        let p = prog(
            vec![
                Op::LockShared(EntityId::new(0)),
                Op::Write { entity: EntityId::new(0), expr: Expr::lit(1) },
                Op::Commit,
            ],
            0,
        );
        assert!(violations(&p)
            .iter()
            .any(|v| matches!(v, Violation::WriteWithoutExclusiveLock { .. })));
    }

    #[test]
    fn write_after_unlock_of_that_entity_is_rejected() {
        let p = prog(
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::Unlock(EntityId::new(0)),
                Op::Write { entity: EntityId::new(0), expr: Expr::lit(1) },
                Op::Commit,
            ],
            0,
        );
        assert!(violations(&p)
            .iter()
            .any(|v| matches!(v, Violation::WriteWithoutExclusiveLock { pc: 2, .. })));
    }

    #[test]
    fn write_before_first_lock_is_rejected() {
        let p = prog(
            vec![
                Op::Assign { var: VarId::new(0), expr: Expr::lit(1) },
                Op::LockExclusive(EntityId::new(0)),
                Op::Commit,
            ],
            1,
        );
        assert!(violations(&p)
            .iter()
            .any(|v| matches!(v, Violation::WriteBeforeFirstLock { pc: 0 })));
    }

    #[test]
    fn var_out_of_range_is_rejected_in_exprs_and_targets() {
        let p = prog(
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::Assign { var: VarId::new(2), expr: Expr::var(VarId::new(5)) },
                Op::Commit,
            ],
            1,
        );
        let vs = violations(&p);
        assert!(vs.iter().any(|v| matches!(v, Violation::VarOutOfRange { var: VarId(2), .. })));
        assert!(vs.iter().any(|v| matches!(v, Violation::VarOutOfRange { var: VarId(5), .. })));
    }

    #[test]
    fn missing_commit_and_op_after_commit() {
        let p = prog(vec![Op::LockShared(EntityId::new(0))], 0);
        assert!(violations(&p).contains(&Violation::MissingCommit));

        let p2 = prog(vec![Op::Commit, Op::LockShared(EntityId::new(0))], 0);
        assert!(violations(&p2).iter().any(|v| matches!(v, Violation::OpAfterCommit { pc: 1 })));
    }

    #[test]
    fn empty_program_needs_commit() {
        let p = prog(vec![], 0);
        assert_eq!(violations(&p), vec![Violation::MissingCommit]);
    }
}
