//! # pr-model — transaction model for partial-rollback deadlock removal
//!
//! This crate defines the vocabulary of the system described in
//! *Fussell, Kedem, Silberschatz, "Deadlock Removal Using Partial Rollback in
//! Database Systems" (SIGMOD 1981)*:
//!
//! * identifiers for global entities, transactions, local variables, and the
//!   two index spaces the paper uses — **state indices** (one per atomic
//!   operation executed) and **lock indices** (one per lock state),
//! * [`Value`]s and side-effect-free [`Expr`]essions over local variables,
//! * the atomic [`Op`]eration algebra (`LS`/`LX`/`U` lock operations, reads,
//!   writes, local assignments, commit),
//! * straight-line [`TransactionProgram`]s with a fluent [`ProgramBuilder`],
//! * a [two-phase validator](validate) enforcing the paper's §2 rules, and
//! * [static analysis](analysis) of a program's state-dependency structure:
//!   restorability indices, write edges, well-defined lock states, the write
//!   clustering metric of §5, and three-phase structure detection.
//!
//! The crate is dependency-light (only `serde`) and is the foundation every
//! other crate in the workspace builds on.

pub mod analysis;
pub mod builder;
pub mod error;
pub mod ids;
pub mod interpret;
pub mod op;
pub mod program;
pub mod restructure;
pub mod validate;
pub mod value;

pub use analysis::{ProgramAnalysis, WriteEdge};
pub use builder::ProgramBuilder;
pub use error::{ModelError, Violation};
pub use ids::{EntityId, LockIndex, StateIndex, TxnId, VarId};
pub use interpret::{run_solo, SoloOutcome};
pub use op::{Expr, LockMode, Op};
pub use program::TransactionProgram;
pub use value::Value;
