//! Model-level errors and program violations.

use crate::ids::{EntityId, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One way a program can violate the §2 protocol rules.
///
/// Every variant carries the program counter of the offending operation so
/// generators and tests can pinpoint it.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Violation {
    /// A lock request after the first unlock — violates two-phase ("no
    /// further lock requests be executed after the unlock", §2).
    LockAfterUnlock {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity whose lock was requested.
        entity: EntityId,
    },
    /// A lock was requested on an entity already locked by this program in
    /// the same or a stronger mode.
    DoubleLock {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity locked twice.
        entity: EntityId,
    },
    /// An exclusive lock was requested on an entity this program already
    /// holds shared. The model does not support in-place lock upgrades:
    /// an upgrade is a blocking re-acquisition whose wait semantics
    /// (queueing against other shared holders, rollback target of the
    /// original shared acquisition) the paper never defines, and naive
    /// upgrades deadlock whenever two shared holders both try. Programs
    /// must request `LX` up front when they will eventually write.
    LockUpgrade {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity held shared and re-requested exclusively.
        entity: EntityId,
    },
    /// An unlock of an entity the program does not hold at that point.
    UnlockNotHeld {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity unlocked without being held.
        entity: EntityId,
    },
    /// A read of an entity not covered by any lock at that point.
    ReadWithoutLock {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity read without lock protection.
        entity: EntityId,
    },
    /// A write to an entity not covered by an exclusive lock at that point.
    WriteWithoutExclusiveLock {
        /// Offending operation's program counter.
        pc: usize,
        /// Entity written without exclusive protection.
        entity: EntityId,
    },
    /// A write or assignment before the program's first lock request — the
    /// paper assumes "no write operations occur before the first lock
    /// request in a transaction" (§4).
    WriteBeforeFirstLock {
        /// Offending operation's program counter.
        pc: usize,
    },
    /// A local-variable reference beyond the declared variable count.
    VarOutOfRange {
        /// Offending operation's program counter.
        pc: usize,
        /// The out-of-range variable.
        var: VarId,
        /// Number of declared variables.
        declared: usize,
    },
    /// Operations after `Commit`.
    OpAfterCommit {
        /// Offending operation's program counter.
        pc: usize,
    },
    /// The program never commits.
    MissingCommit,
}

impl Violation {
    /// The offending operation's program counter, when the violation has
    /// one ([`Violation::MissingCommit`] is a property of the whole
    /// program).
    pub fn pc(&self) -> Option<usize> {
        match self {
            Violation::LockAfterUnlock { pc, .. }
            | Violation::DoubleLock { pc, .. }
            | Violation::LockUpgrade { pc, .. }
            | Violation::UnlockNotHeld { pc, .. }
            | Violation::ReadWithoutLock { pc, .. }
            | Violation::WriteWithoutExclusiveLock { pc, .. }
            | Violation::WriteBeforeFirstLock { pc }
            | Violation::VarOutOfRange { pc, .. }
            | Violation::OpAfterCommit { pc } => Some(*pc),
            Violation::MissingCommit => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LockAfterUnlock { pc, entity } => {
                write!(f, "pc {pc}: lock request on {entity} after an unlock (not two-phase)")
            }
            Violation::DoubleLock { pc, entity } => {
                write!(f, "pc {pc}: entity {entity} locked while already held")
            }
            Violation::LockUpgrade { pc, entity } => {
                write!(
                    f,
                    "pc {pc}: exclusive request upgrades the shared lock on {entity} \
                     (upgrades are not supported; request LX first)"
                )
            }
            Violation::UnlockNotHeld { pc, entity } => {
                write!(f, "pc {pc}: unlock of {entity} which is not held")
            }
            Violation::ReadWithoutLock { pc, entity } => {
                write!(f, "pc {pc}: read of {entity} without holding a lock")
            }
            Violation::WriteWithoutExclusiveLock { pc, entity } => {
                write!(f, "pc {pc}: write to {entity} without an exclusive lock")
            }
            Violation::WriteBeforeFirstLock { pc } => {
                write!(f, "pc {pc}: write precedes the first lock request")
            }
            Violation::VarOutOfRange { pc, var, declared } => {
                write!(f, "pc {pc}: variable {var} out of range (declared {declared})")
            }
            Violation::OpAfterCommit { pc } => write!(f, "pc {pc}: operation after COMMIT"),
            Violation::MissingCommit => write!(f, "program never commits"),
        }
    }
}

/// Error type for program construction and validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// The program violates the protocol rules; all violations are listed.
    InvalidProgram(Vec<Violation>),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProgram(vs) => {
                write!(f, "invalid transaction program ({} violations):", vs.len())?;
                for v in vs {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_with_pc() {
        let v = Violation::DoubleLock { pc: 3, entity: EntityId::new(0) };
        assert!(v.to_string().contains("pc 3"));
        assert!(v.to_string().contains('a'));
        let v = Violation::LockUpgrade { pc: 5, entity: EntityId::new(1) };
        assert!(v.to_string().contains("pc 5"));
        assert!(v.to_string().contains("upgrade"));
    }

    #[test]
    fn pc_accessor_covers_every_variant() {
        let e = EntityId::new(0);
        assert_eq!(Violation::LockUpgrade { pc: 2, entity: e }.pc(), Some(2));
        assert_eq!(Violation::UnlockNotHeld { pc: 4, entity: e }.pc(), Some(4));
        assert_eq!(Violation::MissingCommit.pc(), None);
    }

    #[test]
    fn model_error_lists_all_violations() {
        let e = ModelError::InvalidProgram(vec![
            Violation::MissingCommit,
            Violation::OpAfterCommit { pc: 7 },
        ]);
        let s = e.to_string();
        assert!(s.contains("2 violations"));
        assert!(s.contains("never commits"));
        assert!(s.contains("pc 7"));
    }
}
