//! Static analysis of a program's state-dependency structure (§4–§5).
//!
//! For a straight-line program the state-dependency graph a transaction
//! would build at the end of its growing phase is statically known. This
//! module computes it, which powers:
//!
//! * the **well-defined lock state** count the paper uses to compare
//!   transaction structures (Figures 4 and 5),
//! * the §5 **write clustering** metric ("as few lock states as possible
//!   between successive write operations to a given entity"), and
//! * detection of §5's **three-phase** structure (acquire / update /
//!   release), which guarantees every lock state is well-defined.
//!
//! ## Timing conventions
//!
//! Lock state `k` immediately precedes the `k`-th lock request (0-based).
//! An operation executed after request `k` was granted and before request
//! `k+1` has lock index `k+1` — it happens *before* lock state `k+1` is
//! reached. Consequently a write with lock index `w` to an entity whose
//! *index of restorability* is `u` destroys exactly the lock states `q`
//! with `u < q < w` (Theorem 4): their value of that entity was some
//! intermediate value that the write overwrote.
//!
//! The index of restorability of an entity (or local variable) is the lock
//! index of the last lock state preceding its *first* write — up to there
//! the value equals the global (or initial) value, which is always
//! available (§4).

use crate::ids::{EntityId, VarId};
use crate::op::Op;
use crate::program::TransactionProgram;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A write-dependency edge `{u, w}` of the state-dependency graph: a write
/// at lock index `w` to an entity/variable with restorability index `u`.
/// The edge renders lock states `q` with `u < q < w` undefined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct WriteEdge {
    /// Index of restorability of the written entity or variable.
    pub u: u32,
    /// Lock index of the write.
    pub w: u32,
}

impl WriteEdge {
    /// Whether this edge makes lock state `q` undefined.
    #[inline]
    pub fn spans(&self, q: u32) -> bool {
        self.u < q && q < self.w
    }

    /// Number of lock states this edge renders undefined.
    #[inline]
    pub fn width(&self) -> u32 {
        (self.w - self.u).saturating_sub(1)
    }
}

/// Result of statically analysing one program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgramAnalysis {
    /// Number of lock requests = number of non-trivial lock states.
    /// Rollback targets range over lock indices `0..num_lock_states`.
    pub num_lock_states: u32,
    /// All write-dependency edges, in program order of the writes.
    pub edges: Vec<WriteEdge>,
    /// Index of restorability per written entity.
    pub entity_restorability: HashMap<EntityId, u32>,
    /// Index of restorability per written local variable.
    pub var_restorability: HashMap<VarId, u32>,
    /// Lock indices `q ∈ 0..=num_lock_states` that are well-defined at the
    /// end of the growing phase.
    pub well_defined: Vec<u32>,
    /// Whether every write (to entities and locals) follows the last lock
    /// request — §5's structuring rule that makes monitoring unnecessary.
    pub writes_after_last_lock: bool,
    /// Whether the program has the strict three-phase shape: all lock
    /// requests, then only reads/writes/assigns, then only unlocks, then
    /// commit.
    pub is_three_phase: bool,
}

impl ProgramAnalysis {
    /// Lock states rendered undefined by write interleaving.
    pub fn undefined_count(&self) -> u32 {
        self.num_lock_states + 1 - self.well_defined.len() as u32
    }

    /// §5 clustering penalty: the sum over edges of the lock states each
    /// destroys. Zero iff writes are perfectly clustered. Unlike
    /// [`Self::undefined_count`] this counts multiplicity, so it
    /// discriminates between programs whose destroyed-state *sets* coincide.
    pub fn clustering_penalty(&self) -> u32 {
        self.edges.iter().map(WriteEdge::width).sum()
    }

    /// Whether lock state `q` is well-defined.
    pub fn is_well_defined(&self, q: u32) -> bool {
        self.well_defined.binary_search(&q).is_ok()
    }

    /// The deepest well-defined lock state at or below `q` — where an SDG
    /// rollback aimed at `q` actually lands. Lock state 0 is always
    /// well-defined, so this never fails.
    pub fn latest_well_defined_at_or_below(&self, q: u32) -> u32 {
        match self.well_defined.binary_search(&q) {
            Ok(_) => q,
            Err(pos) => self.well_defined[pos.saturating_sub(1).min(self.well_defined.len() - 1)],
        }
    }
}

/// Analyses `program` (assumed valid; see [`crate::validate`]).
pub fn analyze(program: &TransactionProgram) -> ProgramAnalysis {
    let mut lock_index: u32 = 0;
    let mut entity_restorability: HashMap<EntityId, u32> = HashMap::new();
    let mut var_restorability: HashMap<VarId, u32> = HashMap::new();
    let mut edges: Vec<WriteEdge> = Vec::new();
    let num_lock_states = program.num_lock_requests() as u32;

    let mut last_lock_pc = 0usize;
    let mut first_write_pc: Option<usize> = None;
    let mut phase_ok = true; // strict three-phase tracker
    let mut phase = 0u8; // 0 = acquiring, 1 = updating, 2 = releasing

    for (pc, op) in program.ops().iter().enumerate() {
        match op {
            Op::LockShared(_) | Op::LockExclusive(_) => {
                lock_index += 1;
                last_lock_pc = pc;
                if phase != 0 {
                    phase_ok = false;
                }
            }
            Op::Unlock(_) => {
                phase = 2;
            }
            Op::Write { entity, .. } => {
                let u = *entity_restorability.entry(*entity).or_insert(lock_index - 1);
                edges.push(WriteEdge { u, w: lock_index });
                first_write_pc.get_or_insert(pc);
                if phase == 0 {
                    phase = 1;
                } else if phase == 2 {
                    phase_ok = false;
                }
            }
            Op::Read { into, .. } | Op::Assign { var: into, .. } => {
                let u = *var_restorability.entry(*into).or_insert(lock_index - 1);
                edges.push(WriteEdge { u, w: lock_index });
                first_write_pc.get_or_insert(pc);
                if phase == 0 {
                    phase = 1;
                } else if phase == 2 {
                    phase_ok = false;
                }
            }
            Op::Compute(_) | Op::Commit => {}
        }
    }

    let well_defined = well_defined_states(num_lock_states, &edges);
    // All writes follow the last lock request iff the earliest write does.
    let writes_after_last_lock = match first_write_pc {
        None => true,
        Some(wpc) => wpc > last_lock_pc,
    };

    ProgramAnalysis {
        num_lock_states,
        edges,
        entity_restorability,
        var_restorability,
        well_defined,
        writes_after_last_lock,
        is_three_phase: phase_ok,
    }
}

/// Computes the sorted list of well-defined lock states `q ∈ 0..=n` given
/// write edges: `q` is well-defined iff no edge has `u < q < w`.
pub fn well_defined_states(n: u32, edges: &[WriteEdge]) -> Vec<u32> {
    let mut covered = vec![false; n as usize + 1];
    for e in edges {
        let lo = e.u + 1;
        let hi = e.w.min(n + 1); // exclusive
        for q in lo..hi {
            covered[q as usize] = true;
        }
    }
    (0..=n).filter(|&q| !covered[q as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::Expr;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn v(i: u16) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn edge_span_semantics() {
        let edge = WriteEdge { u: 1, w: 4 };
        assert!(!edge.spans(1));
        assert!(edge.spans(2));
        assert!(edge.spans(3));
        assert!(!edge.spans(4));
        assert_eq!(edge.width(), 2);
        assert_eq!(WriteEdge { u: 2, w: 3 }.width(), 0);
        assert_eq!(WriteEdge { u: 2, w: 2 }.width(), 0);
    }

    #[test]
    fn first_write_creates_harmless_edge() {
        // LX(a); W(a); LX(b); COMMIT — the only write is immediately after
        // a's lock state; no lock state is destroyed.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .build_unchecked();
        let a = analyze(&p);
        assert_eq!(a.num_lock_states, 2);
        assert_eq!(a.edges, vec![WriteEdge { u: 0, w: 1 }]);
        assert_eq!(a.well_defined, vec![0, 1, 2]);
        assert_eq!(a.undefined_count(), 0);
        assert_eq!(a.clustering_penalty(), 0);
    }

    #[test]
    fn late_rewrite_destroys_intermediate_states() {
        // LX(a); W(a); LX(b); LX(c); W(a) — the second write to a (lock
        // index 3, restorability 0) destroys lock states 1 and 2.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .lock_exclusive(e(2))
            .write_const(e(0), 2)
            .build_unchecked();
        let a = analyze(&p);
        assert_eq!(a.num_lock_states, 3);
        assert!(a.edges.contains(&WriteEdge { u: 0, w: 3 }));
        assert_eq!(a.well_defined, vec![0, 3]);
        assert_eq!(a.undefined_count(), 2);
        assert_eq!(a.clustering_penalty(), 2);
        assert_eq!(a.entity_restorability[&e(0)], 0);
    }

    #[test]
    fn local_variable_writes_also_destroy_states() {
        // LX(a); L0 := R(a); LX(b); LX(c); L0 := L0+1 — the reassignment of
        // L0 at lock index 3 (restorability 0) destroys states 1, 2.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .read(e(0), v(0))
            .lock_exclusive(e(1))
            .lock_exclusive(e(2))
            .assign(v(0), Expr::add(Expr::var(v(0)), Expr::lit(1)))
            .build_unchecked();
        let a = analyze(&p);
        assert_eq!(a.var_restorability[&v(0)], 0);
        assert_eq!(a.well_defined, vec![0, 3]);
    }

    #[test]
    fn three_phase_program_has_all_states_well_defined() {
        // Acquire everything, then update, then release: §5's claim.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .lock_exclusive(e(1))
            .lock_exclusive(e(2))
            .read(e(0), v(0))
            .write(e(1), Expr::var(v(0)))
            .write(e(2), Expr::lit(7))
            .write(e(0), Expr::lit(1))
            .unlock(e(0))
            .unlock(e(1))
            .unlock(e(2))
            .build_unchecked();
        let a = analyze(&p);
        assert!(a.is_three_phase);
        assert!(a.writes_after_last_lock);
        assert_eq!(a.well_defined, vec![0, 1, 2, 3]);
        assert_eq!(a.clustering_penalty(), 0);
    }

    #[test]
    fn interleaved_program_is_not_three_phase() {
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .write_const(e(1), 2)
            .build_unchecked();
        let a = analyze(&p);
        assert!(!a.is_three_phase);
        assert!(!a.writes_after_last_lock);
    }

    #[test]
    fn read_only_program_is_trivially_fine() {
        let p = ProgramBuilder::new().lock_shared(e(0)).lock_shared(e(1)).build_unchecked();
        let a = analyze(&p);
        assert!(a.edges.is_empty());
        assert_eq!(a.well_defined, vec![0, 1, 2]);
        assert!(a.writes_after_last_lock);
        assert!(a.is_three_phase);
    }

    #[test]
    fn latest_well_defined_at_or_below_picks_floor() {
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .lock_exclusive(e(2))
            .write_const(e(0), 2) // destroys 1, 2
            .build_unchecked();
        let a = analyze(&p);
        assert_eq!(a.latest_well_defined_at_or_below(3), 3);
        assert_eq!(a.latest_well_defined_at_or_below(2), 0);
        assert_eq!(a.latest_well_defined_at_or_below(1), 0);
        assert_eq!(a.latest_well_defined_at_or_below(0), 0);
        assert!(a.is_well_defined(0));
        assert!(!a.is_well_defined(2));
    }

    #[test]
    fn well_defined_states_handles_edge_beyond_n() {
        // Edge with w > n (write after the final lock request) covers up to n.
        let wd = well_defined_states(3, &[WriteEdge { u: 0, w: 10 }]);
        assert_eq!(wd, vec![0]);
    }

    #[test]
    fn figure5_style_reordering_increases_well_defined_states() {
        // T1-style: writes to each entity spread across later lock states.
        let spread = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .write_const(e(1), 1)
            .lock_exclusive(e(2))
            .write_const(e(0), 2) // destroys 1..2
            .write_const(e(1), 2) // destroys 2
            .write_const(e(2), 1)
            .build_unchecked();
        // T2-style: same multiset of operations, writes clustered per entity.
        let clustered = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .write_const(e(0), 2)
            .lock_exclusive(e(1))
            .write_const(e(1), 1)
            .write_const(e(1), 2)
            .lock_exclusive(e(2))
            .write_const(e(2), 1)
            .build_unchecked();
        let a_spread = analyze(&spread);
        let a_clustered = analyze(&clustered);
        assert!(a_clustered.well_defined.len() > a_spread.well_defined.len());
        assert_eq!(a_clustered.undefined_count(), 0);
        assert!(a_spread.clustering_penalty() > a_clustered.clustering_penalty());
    }
}
