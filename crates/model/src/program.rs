//! Straight-line transaction programs.
//!
//! A [`TransactionProgram`] is the static text a transaction executes: a
//! sequence of [`Op`]s plus the number and initial values of its local
//! variables. Programs are straight-line (no branches); §2 models a
//! transaction as "a sequence of atomic operations", and straight-line
//! programs make replays after rollback exactly reproducible, which is the
//! property partial rollback depends on.

use crate::error::ModelError;
use crate::ids::{EntityId, LockIndex, VarId};
use crate::op::{LockMode, Op};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A static transaction program.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TransactionProgram {
    ops: Vec<Op>,
    initial_vars: Vec<Value>,
}

impl TransactionProgram {
    /// Creates a program from raw parts without validating it.
    ///
    /// Use [`crate::validate::validate`] (or [`crate::ProgramBuilder`],
    /// which validates on `build`) before handing a program to the engine.
    pub fn from_parts(ops: Vec<Op>, initial_vars: Vec<Value>) -> Self {
        TransactionProgram { ops, initial_vars }
    }

    /// The operation sequence.
    #[inline]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operation at program counter `pc`, if in range.
    #[inline]
    pub fn op(&self, pc: usize) -> Option<&Op> {
        self.ops.get(pc)
    }

    /// Number of operations (also the state index a full run terminates at).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Initial values of the local variables; `initial_vars.len()` is the
    /// number of local variables.
    #[inline]
    pub fn initial_vars(&self) -> &[Value] {
        &self.initial_vars
    }

    /// Number of local variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.initial_vars.len()
    }

    /// All lock requests in program order as `(pc, entity, mode)`.
    ///
    /// The position of a request in this list is its lock index: the `k`-th
    /// request creates lock state `k`.
    pub fn lock_requests(&self) -> Vec<(usize, EntityId, LockMode)> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(pc, op)| op.lock_request().map(|(e, m)| (pc, e, m)))
            .collect()
    }

    /// The lock index of the operation at `pc`: the number of lock requests
    /// at program counters strictly less than *or equal to* positions
    /// preceding `pc`.
    ///
    /// Per §4, an operation executed after the `k`-th lock request (0-based)
    /// and before the `(k+1)`-th has lock index `k + 1`: `k + 1` lock states
    /// precede it.
    pub fn lock_index_of_pc(&self, pc: usize) -> LockIndex {
        let n = self.ops[..pc.min(self.ops.len())].iter().filter(|op| op.is_lock_request()).count();
        LockIndex::new(n as u32)
    }

    /// Program counter of the `k`-th lock request (0-based), if it exists.
    ///
    /// Rolling back to lock state `k` resets the program counter here: the
    /// transaction resumes by re-issuing that lock request.
    pub fn pc_of_lock_request(&self, k: LockIndex) -> Option<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_lock_request())
            .nth(k.index())
            .map(|(pc, _)| pc)
    }

    /// Total number of lock requests in the program.
    pub fn num_lock_requests(&self) -> usize {
        self.ops.iter().filter(|op| op.is_lock_request()).count()
    }

    /// Entities the program ever locks (deduplicated, program order).
    pub fn locked_entities(&self) -> Vec<EntityId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if let Some((e, _)) = op.lock_request() {
                if !seen.contains(&e) {
                    seen.push(e);
                }
            }
        }
        seen
    }

    /// Entities the program writes (deduplicated, program order).
    pub fn written_entities(&self) -> Vec<EntityId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if let Op::Write { entity, .. } = op {
                if !seen.contains(entity) {
                    seen.push(*entity);
                }
            }
        }
        seen
    }

    /// The strongest lock mode the program ever requests for `entity`.
    pub fn lock_mode_for(&self, entity: EntityId) -> Option<LockMode> {
        let mut mode = None;
        for op in &self.ops {
            if let Some((e, m)) = op.lock_request() {
                if e == entity {
                    mode = match (mode, m) {
                        (Some(LockMode::Exclusive), _) => Some(LockMode::Exclusive),
                        (_, m) => Some(m),
                    };
                }
            }
        }
        mode
    }

    /// Largest local-variable index referenced anywhere, if any. Used by the
    /// validator to ensure `initial_vars` covers every reference.
    pub fn max_var_referenced(&self) -> Option<VarId> {
        let mut max: Option<VarId> = None;
        let mut bump = |v: VarId| {
            max = Some(match max {
                Some(m) if m >= v => m,
                _ => v,
            });
        };
        for op in &self.ops {
            if let Some(v) = op.written_var() {
                bump(v);
            }
            match op {
                Op::Write { expr, .. } | Op::Assign { expr, .. } => {
                    if let Some(v) = expr.max_var() {
                        bump(v);
                    }
                }
                _ => {}
            }
        }
        max
    }

    /// A compact single-line rendering, useful in test failure messages.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.ops.iter().map(|op| op.to_string()).collect();
        body.join("; ")
    }

    /// A canonical content key: two programs get the same key iff they
    /// have the same operations and the same initial variable values.
    /// Transaction-id symmetry reduction groups transactions by this key —
    /// only transactions running *identical* programs are interchangeable.
    /// Built on the derived `Debug` of the op list, not [`render`](Self::render):
    /// the display form elides expressions (`W(a)` regardless of what is
    /// written), which would conflate programs that differ only in values.
    pub fn content_key(&self) -> String {
        format!("{:?}{:?}", self.initial_vars, self.ops)
    }
}

impl fmt::Display for TransactionProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl TryFrom<Vec<Op>> for TransactionProgram {
    type Error = ModelError;

    /// Builds a program with enough zero-initialised local variables for
    /// every reference, then validates it.
    fn try_from(ops: Vec<Op>) -> Result<Self, ModelError> {
        let tmp = TransactionProgram::from_parts(ops, Vec::new());
        let nvars = tmp.max_var_referenced().map_or(0, |v| v.index() + 1);
        let prog = TransactionProgram::from_parts(tmp.ops, vec![Value::ZERO; nvars]);
        crate::validate::validate(&prog)?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Expr;

    fn sample() -> TransactionProgram {
        // LX(a); L0 := R(a); L0 := L0 + 1; W(a); LS(b); L1 := R(b); U(a); U(b); COMMIT
        TransactionProgram::from_parts(
            vec![
                Op::LockExclusive(EntityId::new(0)),
                Op::Read { entity: EntityId::new(0), into: VarId::new(0) },
                Op::Assign {
                    var: VarId::new(0),
                    expr: Expr::add(Expr::var(VarId::new(0)), Expr::lit(1)),
                },
                Op::Write { entity: EntityId::new(0), expr: Expr::var(VarId::new(0)) },
                Op::LockShared(EntityId::new(1)),
                Op::Read { entity: EntityId::new(1), into: VarId::new(1) },
                Op::Unlock(EntityId::new(0)),
                Op::Unlock(EntityId::new(1)),
                Op::Commit,
            ],
            vec![Value::ZERO, Value::ZERO],
        )
    }

    #[test]
    fn lock_requests_enumerate_in_order() {
        let p = sample();
        let reqs = p.lock_requests();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0], (0, EntityId::new(0), LockMode::Exclusive));
        assert_eq!(reqs[1], (4, EntityId::new(1), LockMode::Shared));
        assert_eq!(p.num_lock_requests(), 2);
    }

    #[test]
    fn lock_index_of_pc_counts_preceding_requests_inclusive() {
        let p = sample();
        // pc 0 is the first lock request itself: zero lock states precede it
        // at issue time... but lock_index_of_pc counts requests *before* pc.
        assert_eq!(p.lock_index_of_pc(0), LockIndex::new(0));
        // The read at pc 1 runs after request 0 was granted: lock index 1.
        assert_eq!(p.lock_index_of_pc(1), LockIndex::new(1));
        assert_eq!(p.lock_index_of_pc(3), LockIndex::new(1));
        // pc 4 is the second request; ops after it have lock index 2.
        assert_eq!(p.lock_index_of_pc(4), LockIndex::new(1));
        assert_eq!(p.lock_index_of_pc(5), LockIndex::new(2));
    }

    #[test]
    fn pc_of_lock_request_inverts_lock_indices() {
        let p = sample();
        assert_eq!(p.pc_of_lock_request(LockIndex::new(0)), Some(0));
        assert_eq!(p.pc_of_lock_request(LockIndex::new(1)), Some(4));
        assert_eq!(p.pc_of_lock_request(LockIndex::new(2)), None);
    }

    #[test]
    fn footprints() {
        let p = sample();
        assert_eq!(p.locked_entities(), vec![EntityId::new(0), EntityId::new(1)]);
        assert_eq!(p.written_entities(), vec![EntityId::new(0)]);
        assert_eq!(p.lock_mode_for(EntityId::new(0)), Some(LockMode::Exclusive));
        assert_eq!(p.lock_mode_for(EntityId::new(1)), Some(LockMode::Shared));
        assert_eq!(p.lock_mode_for(EntityId::new(9)), None);
        assert_eq!(p.max_var_referenced(), Some(VarId::new(1)));
    }

    #[test]
    fn try_from_ops_sizes_vars_and_validates() {
        let p = TransactionProgram::try_from(vec![
            Op::LockExclusive(EntityId::new(0)),
            Op::Read { entity: EntityId::new(0), into: VarId::new(3) },
            Op::Commit,
        ])
        .unwrap();
        assert_eq!(p.num_vars(), 4);
    }

    #[test]
    fn try_from_rejects_invalid() {
        // Unlock before any lock: not two-phase-legal.
        let err = TransactionProgram::try_from(vec![Op::Unlock(EntityId::new(0))]);
        assert!(err.is_err());
    }

    #[test]
    fn render_is_compact() {
        let p = sample();
        let s = p.render();
        assert!(s.starts_with("LX(a)"));
        assert!(s.ends_with("COMMIT"));
        assert_eq!(p.to_string(), s);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 9);
        assert!(!sample().is_empty());
        assert!(TransactionProgram::from_parts(vec![], vec![]).is_empty());
    }
}
