//! The atomic operation algebra.
//!
//! §2 of the paper gives transactions four kinds of interactions with the
//! system: shared-lock requests (`LS`), exclusive-lock requests (`LX`),
//! unlock requests (`U`), and reads/writes of global entities; plus internal
//! computation on local variables. We model each as one [`Op`] — executing
//! one `Op` advances the transaction by exactly one state index, which is
//! what makes the paper's state-difference cost function meaningful.

use crate::ids::{EntityId, VarId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lock modes of §2: exclusive for read/write access, shared for read-only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared lock (`LS`): many readers may hold it simultaneously.
    Shared,
    /// Exclusive lock (`LX`): at most one holder; permits writes.
    Exclusive,
}

impl LockMode {
    /// Whether a new lock in mode `self` can coexist with a held lock in
    /// mode `other` on the same entity.
    #[inline]
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// Whether this mode permits writing the entity.
    #[inline]
    pub fn allows_write(self) -> bool {
        matches!(self, LockMode::Exclusive)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "S"),
            LockMode::Exclusive => write!(f, "X"),
        }
    }
}

/// A side-effect-free expression over a transaction's local variables.
///
/// Expressions give programs real data semantics, so the test oracles can
/// observe whether a rollback restored *values* correctly — not merely lock
/// bookkeeping.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The current value of a local variable.
    Var(VarId),
    /// Sum of two sub-expressions (wrapping).
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two sub-expressions (wrapping).
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two sub-expressions (wrapping).
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `lhs + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Add(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor: `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor: `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: i64) -> Expr {
        Expr::Const(Value::new(v))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Evaluates the expression against a local-variable environment.
    ///
    /// Out-of-range variable references evaluate to [`Value::ZERO`]; the
    /// [validator](crate::validate) rejects such programs up front, so this
    /// is purely defensive.
    pub fn eval(&self, locals: &[Value]) -> Value {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(id) => locals.get(id.index()).copied().unwrap_or(Value::ZERO),
            Expr::Add(a, b) => a.eval(locals) + b.eval(locals),
            Expr::Sub(a, b) => a.eval(locals) - b.eval(locals),
            Expr::Mul(a, b) => a.eval(locals) * b.eval(locals),
        }
    }

    /// All local variables the expression reads.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(id) => out.push(*id),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Maximum variable index referenced, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.variables().into_iter().max()
    }
}

/// One atomic operation of a transaction (§2).
///
/// Executing any `Op` advances the transaction's state index by one.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Op {
    /// `LS(A)` — request a shared lock on entity `A`.
    LockShared(EntityId),
    /// `LX(A)` — request an exclusive lock on entity `A`.
    LockExclusive(EntityId),
    /// `U(A)` — release the lock held on entity `A`; under deferred update
    /// this publishes the final local value of `A` to the database.
    Unlock(EntityId),
    /// Read the (locally visible) value of a locked entity into a local
    /// variable.
    Read {
        /// Entity to read; must be lock-protected at execution time.
        entity: EntityId,
        /// Local variable receiving the value.
        into: VarId,
    },
    /// Write an expression's value to an exclusively locked entity
    /// (buffered in the transaction's local copy until unlock).
    Write {
        /// Entity to write; must be exclusively locked at execution time.
        entity: EntityId,
        /// Expression over local variables producing the new value.
        expr: Expr,
    },
    /// Assign an expression's value to a local variable (pure computation).
    Assign {
        /// Target local variable.
        var: VarId,
        /// Expression over local variables producing the new value.
        expr: Expr,
    },
    /// Internal computation that reads local variables but stores nothing:
    /// it advances the state index (it is an atomic operation) without
    /// affecting restorability. Used to model computation time and to pad
    /// scenario transactions to exact state indices.
    Compute(Expr),
    /// Terminate successfully, releasing all remaining locks ("the system
    /// may equivalently release any entities which a transaction has failed
    /// to unlock at the time the transaction terminates", §1).
    Commit,
}

impl Op {
    /// Whether this operation is a lock request (`LS` or `LX`).
    #[inline]
    pub fn is_lock_request(&self) -> bool {
        matches!(self, Op::LockShared(_) | Op::LockExclusive(_))
    }

    /// The entity and mode requested, if this is a lock request.
    #[inline]
    pub fn lock_request(&self) -> Option<(EntityId, LockMode)> {
        match self {
            Op::LockShared(e) => Some((*e, LockMode::Shared)),
            Op::LockExclusive(e) => Some((*e, LockMode::Exclusive)),
            _ => None,
        }
    }

    /// The entity unlocked, if this is an unlock.
    #[inline]
    pub fn unlock_target(&self) -> Option<EntityId> {
        match self {
            Op::Unlock(e) => Some(*e),
            _ => None,
        }
    }

    /// The entity touched by this operation, if any.
    pub fn entity(&self) -> Option<EntityId> {
        match self {
            Op::LockShared(e)
            | Op::LockExclusive(e)
            | Op::Unlock(e)
            | Op::Read { entity: e, .. }
            | Op::Write { entity: e, .. } => Some(*e),
            Op::Assign { .. } | Op::Compute(_) | Op::Commit => None,
        }
    }

    /// Whether this operation writes a global entity.
    #[inline]
    pub fn is_global_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }

    /// Whether this operation writes a local variable (reads into locals
    /// count: they overwrite the previous local value, which matters for
    /// restorability, §4).
    #[inline]
    pub fn written_var(&self) -> Option<VarId> {
        match self {
            Op::Read { into, .. } => Some(*into),
            Op::Assign { var, .. } => Some(*var),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::LockShared(e) => write!(f, "LS({e})"),
            Op::LockExclusive(e) => write!(f, "LX({e})"),
            Op::Unlock(e) => write!(f, "U({e})"),
            Op::Read { entity, into } => write!(f, "{into} := R({entity})"),
            Op::Write { entity, .. } => write!(f, "W({entity})"),
            Op::Assign { var, .. } => write!(f, "{var} := <expr>"),
            Op::Compute(_) => write!(f, "compute"),
            Op::Commit => write!(f, "COMMIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mode_compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
        assert!(Exclusive.allows_write());
        assert!(!Shared.allows_write());
    }

    #[test]
    fn expr_evaluation() {
        let locals = [Value::new(3), Value::new(4)];
        let e =
            Expr::add(Expr::mul(Expr::var(VarId::new(0)), Expr::var(VarId::new(1))), Expr::lit(5));
        assert_eq!(e.eval(&locals), Value::new(17));
        let d = Expr::sub(Expr::var(VarId::new(1)), Expr::var(VarId::new(0)));
        assert_eq!(d.eval(&locals), Value::new(1));
    }

    #[test]
    fn expr_out_of_range_var_is_zero() {
        let e = Expr::var(VarId::new(9));
        assert_eq!(e.eval(&[]), Value::ZERO);
    }

    #[test]
    fn expr_variable_collection_dedups_and_sorts() {
        let e = Expr::add(
            Expr::var(VarId::new(2)),
            Expr::mul(Expr::var(VarId::new(0)), Expr::var(VarId::new(2))),
        );
        assert_eq!(e.variables(), vec![VarId::new(0), VarId::new(2)]);
        assert_eq!(e.max_var(), Some(VarId::new(2)));
        assert_eq!(Expr::lit(1).max_var(), None);
    }

    #[test]
    fn op_classification() {
        let ls = Op::LockShared(EntityId::new(1));
        let lx = Op::LockExclusive(EntityId::new(2));
        let un = Op::Unlock(EntityId::new(1));
        assert!(ls.is_lock_request());
        assert!(lx.is_lock_request());
        assert!(!un.is_lock_request());
        assert_eq!(ls.lock_request(), Some((EntityId::new(1), LockMode::Shared)));
        assert_eq!(lx.lock_request(), Some((EntityId::new(2), LockMode::Exclusive)));
        assert_eq!(un.unlock_target(), Some(EntityId::new(1)));
        assert_eq!(
            Op::Read { entity: EntityId::new(3), into: VarId::new(0) }.entity(),
            Some(EntityId::new(3))
        );
        assert_eq!(Op::Commit.entity(), None);
    }

    #[test]
    fn written_var_covers_reads_and_assigns() {
        let r = Op::Read { entity: EntityId::new(0), into: VarId::new(1) };
        let a = Op::Assign { var: VarId::new(2), expr: Expr::lit(0) };
        let w = Op::Write { entity: EntityId::new(0), expr: Expr::lit(0) };
        assert_eq!(r.written_var(), Some(VarId::new(1)));
        assert_eq!(a.written_var(), Some(VarId::new(2)));
        assert_eq!(w.written_var(), None);
        assert!(w.is_global_write());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::LockShared(EntityId::new(0)).to_string(), "LS(a)");
        assert_eq!(Op::LockExclusive(EntityId::new(1)).to_string(), "LX(b)");
        assert_eq!(Op::Unlock(EntityId::new(2)).to_string(), "U(c)");
        assert_eq!(Op::Commit.to_string(), "COMMIT");
    }
}
