//! Transaction restructuring for efficient partial rollback (§5).
//!
//! "These relationships between the structure of transactions and their
//! efficiency … raise interesting possibilities for the optimization of
//! transactions intended to run in such systems, perhaps at the time of
//! their compilation."
//!
//! Two semantics-preserving code-motion passes realise the paper's two
//! structuring principles:
//!
//! * [`hoist_locks`] moves every lock request to the front of the program
//!   (preserving their relative order), every unlock to the back — the
//!   strict **three-phase** shape of §5. All writes then follow the last
//!   lock request, so *every* lock state is well-defined and the system
//!   "may cease monitoring" the transaction after its last lock.
//! * [`cluster_writes`] moves each re-write of an entity as far back
//!   (earlier) as data dependencies allow, packing writes to the same
//!   entity together — §5's "as few lock states as possible between
//!   successive write operations to a given entity".
//!
//! Both passes are verified against the [solo interpreter](crate::interpret)
//! by the property tests: transformed programs compute identical final
//! states for arbitrary initial stores.

use crate::analysis;
use crate::op::Op;
use crate::program::TransactionProgram;

/// Rewrites `program` into the strict three-phase shape: all lock
/// requests first (relative order preserved), then all data operations,
/// then all unlocks, then commit.
///
/// ```
/// use pr_model::{analysis, restructure, EntityId, ProgramBuilder};
///
/// let (a, b) = (EntityId::new(0), EntityId::new(1));
/// let interleaved = ProgramBuilder::new()
///     .lock_exclusive(a)
///     .write_const(a, 1)
///     .lock_exclusive(b)
///     .write_const(a, 2) // destroys lock state 1 under SDG
///     .build()
///     .unwrap();
/// let three_phase = restructure::hoist_locks(&interleaved);
/// assert!(analysis::analyze(&three_phase).is_three_phase);
/// assert_eq!(analysis::analyze(&three_phase).undefined_count(), 0);
/// ```
///
/// Sound because moving a lock earlier only widens the interval during
/// which its entity is protected, and data operations keep their relative
/// order (hence identical values).
pub fn hoist_locks(program: &TransactionProgram) -> TransactionProgram {
    let mut locks = Vec::new();
    let mut data = Vec::new();
    let mut unlocks = Vec::new();
    for op in program.ops() {
        match op {
            Op::LockShared(_) | Op::LockExclusive(_) => locks.push(op.clone()),
            Op::Unlock(_) => unlocks.push(op.clone()),
            Op::Commit => {}
            other => data.push(other.clone()),
        }
    }
    let mut ops = locks;
    ops.extend(data);
    ops.extend(unlocks);
    ops.push(Op::Commit);
    let out = TransactionProgram::from_parts(ops, program.initial_vars().to_vec());
    debug_assert!(crate::validate::is_valid(&out), "hoisting must preserve validity");
    out
}

/// Whether `write` (a `Write { entity, expr }` op) may legally move one
/// position earlier, across `prev`.
fn write_may_cross(write: &Op, prev: &Op) -> bool {
    let Op::Write { entity, expr } = write else {
        return false;
    };
    match prev {
        // Never cross an operation on the same entity: a read would see a
        // different value; another write's order matters; the lock/unlock
        // bound the entity's protected region.
        Op::Read { entity: e, .. }
        | Op::Write { entity: e, .. }
        | Op::LockShared(e)
        | Op::LockExclusive(e)
        | Op::Unlock(e)
            if e == entity =>
        {
            false
        }
        // Crossing an op that writes a variable our expression reads
        // would change the written value.
        Op::Read { into, .. } | Op::Assign { var: into, .. } => !expr.variables().contains(into),
        Op::Commit => false,
        // Other entities' locks/unlocks/writes, and pure computation, are
        // independent.
        _ => true,
    }
}

/// Packs writes toward the previous operation on the same entity wherever
/// data dependencies allow, minimising the lock states a re-write spans.
pub fn cluster_writes(program: &TransactionProgram) -> TransactionProgram {
    let mut ops: Vec<Op> = program.ops().to_vec();
    // Repeatedly bubble writes one slot earlier while legal. The number
    // of inversions is finite, so this terminates; programs are small.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..ops.len() {
            if matches!(ops[i], Op::Write { .. }) && write_may_cross(&ops[i], &ops[i - 1]) {
                ops.swap(i - 1, i);
                changed = true;
            }
        }
    }
    let out = TransactionProgram::from_parts(ops, program.initial_vars().to_vec());
    debug_assert!(crate::validate::is_valid(&out), "clustering must preserve validity");
    out
}

/// Improvement report for one program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RestructureReport {
    /// Well-defined lock states before.
    pub well_defined_before: usize,
    /// Well-defined lock states after.
    pub well_defined_after: usize,
    /// Clustering penalty before.
    pub penalty_before: u32,
    /// Clustering penalty after.
    pub penalty_after: u32,
}

/// Applies `pass` and reports the change in state-dependency structure.
pub fn report(
    program: &TransactionProgram,
    pass: impl Fn(&TransactionProgram) -> TransactionProgram,
) -> (TransactionProgram, RestructureReport) {
    let before = analysis::analyze(program);
    let out = pass(program);
    let after = analysis::analyze(&out);
    (
        out,
        RestructureReport {
            well_defined_before: before.well_defined.len(),
            well_defined_after: after.well_defined.len(),
            penalty_before: before.clustering_penalty(),
            penalty_after: after.clustering_penalty(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::EntityId;
    use crate::interpret::run_solo;
    use crate::value::Value;
    use std::collections::BTreeMap;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// The Figure 4 transaction: interleaved writes destroy every interior
    /// lock state.
    fn spread_program() -> TransactionProgram {
        ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 1)
            .lock_exclusive(e(1))
            .write_const(e(1), 1)
            .lock_exclusive(e(2))
            .write_const(e(0), 2)
            .lock_exclusive(e(3))
            .write_const(e(1), 2)
            .write_const(e(3), 1)
            .build_unchecked()
    }

    fn initial() -> BTreeMap<EntityId, Value> {
        (0..6).map(|i| (e(i), Value::new(100 + i64::from(i)))).collect()
    }

    #[test]
    fn hoist_locks_produces_three_phase() {
        let (out, rep) = report(&spread_program(), hoist_locks);
        let a = analysis::analyze(&out);
        assert!(a.is_three_phase);
        assert!(a.writes_after_last_lock);
        assert_eq!(a.undefined_count(), 0, "every lock state is well-defined");
        assert!(rep.well_defined_after > rep.well_defined_before);
        assert_eq!(rep.penalty_after, 0);
    }

    #[test]
    fn hoist_locks_preserves_semantics() {
        let p = spread_program();
        let out = hoist_locks(&p);
        assert_eq!(run_solo(&p, &initial()), run_solo(&out, &initial()));
    }

    #[test]
    fn cluster_writes_reduces_penalty() {
        let (out, rep) = report(&spread_program(), cluster_writes);
        assert!(
            rep.penalty_after < rep.penalty_before,
            "{} -> {}",
            rep.penalty_before,
            rep.penalty_after
        );
        assert_eq!(run_solo(&spread_program(), &initial()), run_solo(&out, &initial()));
    }

    #[test]
    fn cluster_does_not_cross_dependent_reads() {
        use crate::ids::VarId;
        use crate::op::Expr;
        let v = VarId::new(0);
        // W(b, L0) must not move before the read that defines L0.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .lock_exclusive(e(1))
            .write_const(e(1), 9)
            .read(e(0), v)
            .write(e(1), Expr::var(v))
            .build_unchecked();
        let out = cluster_writes(&p);
        assert_eq!(run_solo(&p, &initial()), run_solo(&out, &initial()));
        // The dependent write stayed after the read.
        let read_pos = out.ops().iter().position(|o| matches!(o, Op::Read { .. })).unwrap();
        let dependent = out
            .ops()
            .iter()
            .position(|o| matches!(o, Op::Write { expr, .. } if !expr.variables().is_empty()))
            .unwrap();
        assert!(dependent > read_pos);
    }

    #[test]
    fn cluster_never_crosses_same_entity_reads() {
        use crate::ids::VarId;
        let v = VarId::new(0);
        // Read of b between two writes of b pins their order.
        let p = ProgramBuilder::new()
            .lock_exclusive(e(1))
            .write_const(e(1), 1)
            .read(e(1), v)
            .write_const(e(1), 2)
            .build_unchecked();
        let out = cluster_writes(&p);
        assert_eq!(run_solo(&p, &initial()), run_solo(&out, &initial()));
        assert_eq!(out.ops(), p.ops(), "nothing can move here");
    }

    #[test]
    fn passes_keep_programs_valid() {
        let p = spread_program();
        assert!(crate::validate::is_valid(&hoist_locks(&p)));
        assert!(crate::validate::is_valid(&cluster_writes(&p)));
    }
}
