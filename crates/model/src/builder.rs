//! Fluent construction of transaction programs.
//!
//! ```
//! use pr_model::{EntityId, ProgramBuilder, VarId, Expr};
//!
//! let a = EntityId::new(0);
//! let b = EntityId::new(1);
//! let v = VarId::new(0);
//! let program = ProgramBuilder::new()
//!     .lock_exclusive(a)
//!     .read(a, v)
//!     .assign(v, Expr::add(Expr::var(v), Expr::lit(1)))
//!     .write(a, Expr::var(v))
//!     .lock_shared(b)
//!     .read(b, VarId::new(1))
//!     .unlock(a)
//!     .unlock(b)
//!     .build()
//!     .expect("valid two-phase program");
//! assert_eq!(program.num_lock_requests(), 2);
//! ```

use crate::error::ModelError;
use crate::ids::{EntityId, VarId};
use crate::op::{Expr, Op};
use crate::program::TransactionProgram;
use crate::validate;
use crate::value::Value;

/// Builder for [`TransactionProgram`]s.
///
/// `build` appends a final `COMMIT` if the program does not already end in
/// one, sizes the local-variable vector to cover every reference, and
/// validates the result.
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    initial_vars: Vec<Value>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares local variable `var` with an explicit initial value.
    ///
    /// Variables referenced without a declaration default to
    /// [`Value::ZERO`].
    #[must_use]
    pub fn init_var(mut self, var: VarId, value: Value) -> Self {
        if self.initial_vars.len() <= var.index() {
            self.initial_vars.resize(var.index() + 1, Value::ZERO);
        }
        self.initial_vars[var.index()] = value;
        self
    }

    /// Appends `LS(entity)`.
    #[must_use]
    pub fn lock_shared(mut self, entity: EntityId) -> Self {
        self.ops.push(Op::LockShared(entity));
        self
    }

    /// Appends `LX(entity)`.
    #[must_use]
    pub fn lock_exclusive(mut self, entity: EntityId) -> Self {
        self.ops.push(Op::LockExclusive(entity));
        self
    }

    /// Appends `U(entity)`.
    #[must_use]
    pub fn unlock(mut self, entity: EntityId) -> Self {
        self.ops.push(Op::Unlock(entity));
        self
    }

    /// Appends a read of `entity` into local variable `into`.
    #[must_use]
    pub fn read(mut self, entity: EntityId, into: VarId) -> Self {
        self.ops.push(Op::Read { entity, into });
        self
    }

    /// Appends a write of `expr` to `entity`.
    #[must_use]
    pub fn write(mut self, entity: EntityId, expr: Expr) -> Self {
        self.ops.push(Op::Write { entity, expr });
        self
    }

    /// Appends a write of a constant to `entity`.
    #[must_use]
    pub fn write_const(self, entity: EntityId, value: i64) -> Self {
        self.write(entity, Expr::lit(value))
    }

    /// Appends a local assignment.
    #[must_use]
    pub fn assign(mut self, var: VarId, expr: Expr) -> Self {
        self.ops.push(Op::Assign { var, expr });
        self
    }

    /// Appends `count` pure computations, used by scenario builders to pad
    /// a transaction to an exact state index — the reproduced figures need
    /// specific rollback costs like Figure 1's `12 − 8 = 4`. Pads store
    /// nothing, so they never destroy well-defined states.
    #[must_use]
    pub fn pad(mut self, count: usize) -> Self {
        for _ in 0..count {
            self.ops.push(Op::Compute(Expr::lit(0)));
        }
        self
    }

    /// Appends an arbitrary operation.
    #[must_use]
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Number of operations appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the program: appends `COMMIT` if missing, sizes the
    /// variable vector, and validates.
    pub fn build(mut self) -> Result<TransactionProgram, ModelError> {
        if !matches!(self.ops.last(), Some(Op::Commit)) {
            self.ops.push(Op::Commit);
        }
        let probe = TransactionProgram::from_parts(self.ops, self.initial_vars);
        let needed = probe.max_var_referenced().map_or(0, |v| v.index() + 1);
        let mut vars = probe.initial_vars().to_vec();
        if vars.len() < needed {
            vars.resize(needed, Value::ZERO);
        }
        let program = TransactionProgram::from_parts(probe.ops().to_vec(), vars);
        validate::validate(&program)?;
        Ok(program)
    }

    /// Finishes the program, panicking on validation failure. Convenient in
    /// tests and scenario builders where programs are statically known-good.
    pub fn build_unchecked(self) -> TransactionProgram {
        match self.build() {
            Ok(p) => p,
            Err(e) => panic!("program failed validation: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_appends_commit_and_sizes_vars() {
        let p = ProgramBuilder::new()
            .lock_exclusive(EntityId::new(0))
            .read(EntityId::new(0), VarId::new(2))
            .build()
            .unwrap();
        assert!(matches!(p.ops().last(), Some(Op::Commit)));
        assert_eq!(p.num_vars(), 3);
    }

    #[test]
    fn explicit_initial_values_survive() {
        let p = ProgramBuilder::new()
            .init_var(VarId::new(1), Value::new(100))
            .lock_exclusive(EntityId::new(0))
            .write(EntityId::new(0), Expr::var(VarId::new(1)))
            .build()
            .unwrap();
        assert_eq!(p.initial_vars(), &[Value::ZERO, Value::new(100)]);
    }

    #[test]
    fn pad_inserts_noops_after_first_lock() {
        let p = ProgramBuilder::new().lock_shared(EntityId::new(0)).pad(5).build().unwrap();
        // 1 lock + 5 pads + commit
        assert_eq!(p.len(), 7);
        assert_eq!(p.num_vars(), 0, "pads reference no variables");
    }

    #[test]
    fn invalid_program_is_reported() {
        let r = ProgramBuilder::new().unlock(EntityId::new(0)).build();
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "program failed validation")]
    fn build_unchecked_panics_on_invalid() {
        let _ = ProgramBuilder::new().unlock(EntityId::new(0)).build_unchecked();
    }

    #[test]
    fn len_tracks_ops() {
        let b = ProgramBuilder::new().lock_shared(EntityId::new(0)).pad(2);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(ProgramBuilder::new().is_empty());
    }

    #[test]
    fn no_double_commit_when_user_commits() {
        let p = ProgramBuilder::new().lock_shared(EntityId::new(0)).op(Op::Commit).build().unwrap();
        assert_eq!(p.ops().iter().filter(|o| matches!(o, Op::Commit)).count(), 1);
    }
}
