//! Entity and local-variable values.
//!
//! The paper only requires that every entity and local variable "may assume
//! values from some range" (§2). A wrapping 64-bit integer is a faithful and
//! convenient instantiation: it supports the arithmetic the example programs
//! need, and equality of values is what the rollback-correctness oracles
//! compare.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A value held by a global entity or a local variable.
///
/// All arithmetic wraps, so no workload can panic the engine via overflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Value(pub i64);

impl Value {
    /// The zero value — the default initial value of entities and variables.
    pub const ZERO: Value = Value(0);

    /// Creates a value.
    #[inline]
    pub const fn new(raw: i64) -> Self {
        Value(raw)
    }

    /// Raw integer payload.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }
}

impl From<i64> for Value {
    #[inline]
    fn from(raw: i64) -> Self {
        Value(raw)
    }
}

impl From<Value> for i64 {
    #[inline]
    fn from(v: Value) -> Self {
        v.0
    }
}

impl Add for Value {
    type Output = Value;
    #[inline]
    fn add(self, rhs: Value) -> Value {
        Value(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Value {
    #[inline]
    fn add_assign(&mut self, rhs: Value) {
        *self = *self + rhs;
    }
}

impl Sub for Value {
    type Output = Value;
    #[inline]
    fn sub(self, rhs: Value) -> Value {
        Value(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for Value {
    #[inline]
    fn sub_assign(&mut self, rhs: Value) {
        *self = *self - rhs;
    }
}

impl Mul for Value {
    type Output = Value;
    #[inline]
    fn mul(self, rhs: Value) -> Value {
        Value(self.0.wrapping_mul(rhs.0))
    }
}

impl Neg for Value {
    type Output = Value;
    #[inline]
    fn neg(self) -> Value {
        Value(self.0.wrapping_neg())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps_instead_of_panicking() {
        let max = Value::new(i64::MAX);
        assert_eq!(max + Value::new(1), Value::new(i64::MIN));
        let min = Value::new(i64::MIN);
        assert_eq!(min - Value::new(1), Value::new(i64::MAX));
        assert_eq!(-min, min); // two's complement edge case
    }

    #[test]
    fn conversions_round_trip() {
        let v: Value = 42i64.into();
        let raw: i64 = v.into();
        assert_eq!(raw, 42);
        assert_eq!(Value::default(), Value::ZERO);
    }

    #[test]
    fn assign_ops_work() {
        let mut v = Value::new(10);
        v += Value::new(5);
        assert_eq!(v, Value::new(15));
        v -= Value::new(20);
        assert_eq!(v, Value::new(-5));
        assert_eq!(v * Value::new(-2), Value::new(10));
    }
}
