//! A reference interpreter for solo execution.
//!
//! Runs a program against an entity→value map as if it were alone in the
//! system (every lock trivially granted). This is the semantic oracle for
//! the [restructuring passes](crate::restructure): a transformation is
//! correct iff solo execution produces identical final entity values and
//! locals for every initial store.

use crate::ids::EntityId;
use crate::op::Op;
use crate::program::TransactionProgram;
use crate::value::Value;
use std::collections::BTreeMap;

/// Result of a solo run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoloOutcome {
    /// Final global values (only entities the program touched are listed).
    pub entities: BTreeMap<EntityId, Value>,
    /// Final local variable values.
    pub locals: Vec<Value>,
}

/// Executes `program` alone against `initial` (missing entities default to
/// [`Value::ZERO`]). The program must be valid.
pub fn run_solo(program: &TransactionProgram, initial: &BTreeMap<EntityId, Value>) -> SoloOutcome {
    let mut globals: BTreeMap<EntityId, Value> = BTreeMap::new();
    let mut local_copy: BTreeMap<EntityId, Value> = BTreeMap::new();
    let mut exclusive: BTreeMap<EntityId, bool> = BTreeMap::new();
    let mut locals: Vec<Value> = program.initial_vars().to_vec();
    let read_global = |globals: &BTreeMap<EntityId, Value>, e: EntityId| -> Value {
        globals.get(&e).or_else(|| initial.get(&e)).copied().unwrap_or(Value::ZERO)
    };
    for op in program.ops() {
        match op {
            Op::LockShared(e) => {
                exclusive.insert(*e, false);
            }
            Op::LockExclusive(e) => {
                exclusive.insert(*e, true);
                let g = read_global(&globals, *e);
                local_copy.insert(*e, g);
            }
            Op::Unlock(e) => {
                if exclusive.remove(e) == Some(true) {
                    if let Some(v) = local_copy.remove(e) {
                        globals.insert(*e, v);
                    }
                }
            }
            Op::Read { entity, into } => {
                let v = local_copy
                    .get(entity)
                    .copied()
                    .unwrap_or_else(|| read_global(&globals, *entity));
                locals[into.index()] = v;
            }
            Op::Write { entity, expr } => {
                let v = expr.eval(&locals);
                local_copy.insert(*entity, v);
            }
            Op::Assign { var, expr } => {
                let v = expr.eval(&locals);
                locals[var.index()] = v;
            }
            Op::Compute(expr) => {
                let _ = expr.eval(&locals);
            }
            Op::Commit => {
                // Publish anything still held exclusively.
                for (e, is_x) in std::mem::take(&mut exclusive) {
                    if is_x {
                        if let Some(v) = local_copy.remove(&e) {
                            globals.insert(e, v);
                        }
                    }
                }
            }
        }
    }
    SoloOutcome { entities: globals, locals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::VarId;
    use crate::op::Expr;

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn v(i: i64) -> Value {
        Value::new(i)
    }

    #[test]
    fn transfer_semantics() {
        let var = VarId::new(0);
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .lock_exclusive(e(1))
            .read(e(0), var)
            .write(e(0), Expr::sub(Expr::var(var), Expr::lit(10)))
            .read(e(1), var)
            .write(e(1), Expr::add(Expr::var(var), Expr::lit(10)))
            .unlock(e(0))
            .unlock(e(1))
            .build_unchecked();
        let initial = BTreeMap::from([(e(0), v(100)), (e(1), v(50))]);
        let out = run_solo(&p, &initial);
        assert_eq!(out.entities[&e(0)], v(90));
        assert_eq!(out.entities[&e(1)], v(60));
    }

    #[test]
    fn commit_publishes_unreleased_exclusive_locks() {
        let p = ProgramBuilder::new().lock_exclusive(e(0)).write_const(e(0), 7).build_unchecked();
        let out = run_solo(&p, &BTreeMap::new());
        assert_eq!(out.entities[&e(0)], v(7));
    }

    #[test]
    fn shared_reads_see_global_values() {
        let var = VarId::new(0);
        let p = ProgramBuilder::new()
            .lock_shared(e(3))
            .read(e(3), var)
            .assign(var, Expr::mul(Expr::var(var), Expr::lit(2)))
            .build_unchecked();
        let initial = BTreeMap::from([(e(3), v(21))]);
        let out = run_solo(&p, &initial);
        assert_eq!(out.locals[0], v(42));
        assert!(out.entities.is_empty(), "shared locks publish nothing");
    }

    #[test]
    fn reads_of_own_writes_see_the_local_copy() {
        let var = VarId::new(0);
        let p = ProgramBuilder::new()
            .lock_exclusive(e(0))
            .write_const(e(0), 5)
            .read(e(0), var)
            .build_unchecked();
        let out = run_solo(&p, &BTreeMap::from([(e(0), v(1))]));
        assert_eq!(out.locals[0], v(5), "deferred update is still locally visible");
    }
}
