//! Identifier newtypes.
//!
//! The paper indexes a transaction's progress in two different unit systems:
//!
//! * A **state index** counts *atomic operations*: "with each state of a
//!   transaction we associate an index whose value is equal to the number of
//!   states preceding the given one" (§2). The rollback **cost** of §3.1 is a
//!   difference of state indices.
//! * A **lock index** counts *lock states*: "the lock index of an entity or
//!   an operation \[is\] equal to the number of lock states preceding it in the
//!   transaction" (§4). Rollback targets, MCS stacks, and the
//!   state-dependency graph all live in lock-index space.
//!
//! Keeping the two as distinct newtypes prevents an entire class of
//! off-by-one-unit bugs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a global data entity (the lockable unit of §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Creates an entity identifier from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        EntityId(raw)
    }

    /// Raw index of this entity.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Entities a..z get letter names so reproduced figures read like the
        // paper ("T2 requested b from its 8th state").
        if self.0 < 26 {
            write!(f, "{}", (b'a' + self.0 as u8) as char)
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

/// Identifier of a transaction (an execution instance of a program, §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u32);

impl TxnId {
    /// Creates a transaction identifier from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        TxnId(raw)
    }

    /// Raw index of this transaction.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a variable local to one transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u16);

impl VarId {
    /// Creates a local-variable identifier from a raw index.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        VarId(raw)
    }

    /// Raw index of this variable.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Index as `usize`, for direct vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Index of a transaction *state*: the number of atomic operations the
/// transaction has executed to reach it (§2).
///
/// Rollback cost (§3.1) is `StateIndex − StateIndex`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct StateIndex(pub u32);

impl StateIndex {
    /// The initial state of every transaction.
    pub const ZERO: StateIndex = StateIndex(0);

    /// Creates a state index from a raw count.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        StateIndex(raw)
    }

    /// Raw count of preceding states.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The state reached after executing one more atomic operation.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        StateIndex(self.0 + 1)
    }

    /// Number of states lost when rolling back from `self` to `earlier`.
    ///
    /// This is exactly the paper's rollback cost: in Figure 1, `T2` waiting
    /// in state 12 rolled back to state 8 costs `12 − 8 = 4`.
    #[inline]
    pub fn cost_to(self, earlier: StateIndex) -> u32 {
        debug_assert!(earlier <= self, "rollback target must not be in the future");
        self.0 - earlier.0
    }
}

impl fmt::Debug for StateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Index of a *lock state*: the number of lock states preceding it (§4).
///
/// Lock state `k` is the state immediately preceding the transaction's
/// `k`-th lock request (0-based). An operation's lock index is the number of
/// lock states preceding the operation, so an operation executed after the
/// `k`-th lock request was granted and before the `(k+1)`-th was issued has
/// lock index `k + 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LockIndex(pub u32);

impl LockIndex {
    /// The lock state preceding the very first lock request — rolling back
    /// here is total rollback.
    pub const ZERO: LockIndex = LockIndex(0);

    /// Creates a lock index from a raw count.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        LockIndex(raw)
    }

    /// Raw count of preceding lock states.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Index as `usize`, for direct vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The lock index after one more lock state is created.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        LockIndex(self.0 + 1)
    }
}

impl fmt::Debug for LockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for LockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_display_uses_letters_for_small_ids() {
        assert_eq!(EntityId::new(0).to_string(), "a");
        assert_eq!(EntityId::new(1).to_string(), "b");
        assert_eq!(EntityId::new(25).to_string(), "z");
        assert_eq!(EntityId::new(26).to_string(), "e26");
    }

    #[test]
    fn state_index_cost_matches_figure_1() {
        // T2 waits from state 12 and requested b from state 8: cost 4.
        assert_eq!(StateIndex::new(12).cost_to(StateIndex::new(8)), 4);
        // T3: 11 − 5 = 6, T4: 15 − 10 = 5.
        assert_eq!(StateIndex::new(11).cost_to(StateIndex::new(5)), 6);
        assert_eq!(StateIndex::new(15).cost_to(StateIndex::new(10)), 5);
    }

    #[test]
    fn state_index_next_increments() {
        assert_eq!(StateIndex::ZERO.next(), StateIndex::new(1));
        assert_eq!(StateIndex::new(7).next().raw(), 8);
    }

    #[test]
    fn lock_index_ordering_and_next() {
        assert!(LockIndex::ZERO < LockIndex::new(1));
        assert_eq!(LockIndex::new(3).next(), LockIndex::new(4));
        assert_eq!(LockIndex::new(5).index(), 5usize);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut v = vec![TxnId::new(3), TxnId::new(1), TxnId::new(2)];
        v.sort();
        assert_eq!(v, vec![TxnId::new(1), TxnId::new(2), TxnId::new(3)]);
        let set: std::collections::HashSet<EntityId> =
            [EntityId::new(1), EntityId::new(1), EntityId::new(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", TxnId::new(4)), "T4");
        assert_eq!(format!("{:?}", EntityId::new(2)), "e2");
        assert_eq!(format!("{:?}", StateIndex::new(9)), "S9");
        assert_eq!(format!("{:?}", LockIndex::new(9)), "k9");
        assert_eq!(format!("{:?}", VarId::new(0)), "L0");
    }
}
