//! Per-entity atomic lock words: the optimistic grant fast path.
//!
//! The sharded `Mutex<Shard>` path serialises every lock request on the
//! shard mutex even when nobody contends for the entity — profiled as the
//! dominant cost of the multi-threaded engine (BENCH_parallel.json showed
//! MCS *losing* throughput from 1 → 2 threads). This module gives every
//! entity one atomic **lock word** plus an atomic value cell, packed into a
//! slab built once per run, so the uncontended grant/release cycle is a
//! couple of CAS operations and never touches a mutex.
//!
//! ## Word layout (one `u64` per entity)
//!
//! ```text
//!  63      48 47            32 31    27 26 25 24 23                0
//! +----------+----------------+--------+--+--+--+------------------+
//! | (unused) |  reader count  |(unused)|IN|RL|EX|  exclusive owner |
//! +----------+----------------+--------+--+--+--+------------------+
//! ```
//!
//! * bits 0..24 — raw [`TxnId`] of the exclusive fast-path owner (0 = none);
//! * `EX` (bit 24) — an exclusive fast-path grant is outstanding;
//! * `RL` (bit 25) — **registry spin bit**: the holder is mutating the
//!   reader registry (or publishing exclusive-holder metadata); every other
//!   word mutation waits for it to clear;
//! * `IN` (bit 26) — **inflated / queue flag**: the shard's [`LockTable`]
//!   is authoritative for this entity. Every fast-path CAS requires this
//!   bit clear, so once an entity is inflated no optimistic grant or
//!   release can race the table's waiter bookkeeping;
//! * bits 32..48 — number of shared fast-path holders.
//!
//! ## Handoff protocol
//!
//! The single invariant that makes the fast path safe to mix with the
//! mutex path is:
//!
//! > **The table holds entries only for inflated entities, and every
//! > waiter lives in the table.**
//!
//! *Inflation* happens under the entity's shard mutex before any table
//! access: CAS the `IN` bit on (spinning out `RL`), which freezes the word
//! and the registry, then transfer the fast-path holders into the table
//! via [`LockTable::reinstate`] with their carried §4 metadata
//! (`requested_from_state`, `lock_state`), so blocked requests see the
//! true holder set and partial rollback can release those locks through
//! the table. *Deflation* happens under the same mutex when the table
//! entry goes idle (no holders, no waiters): the word is reset to zero and
//! optimistic grants resume. Because inflation and deflation are both
//! mutex-protected, a mutex-path request always observes either `IN` set
//! (table authoritative) or a word it can inflate itself — a fast-path
//! grant can never be concurrent with a waiter wakeup on the same entity.
//!
//! Values live in the slab (`AtomicI64` per entity) on *both* paths;
//! deferred-update publishes are `Release` stores sequenced before the
//! lock release, and grants `Acquire` the word (or the shard mutex), so a
//! reader always sees the last conflicting writer's publish.

use pr_lock::{HeldLock, LockError, LockTable};
use pr_model::{EntityId, LockIndex, LockMode, StateIndex, TxnId, Value};
use pr_storage::{GlobalStore, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

/// Exclusive-grant bit.
const EXCL: u64 = 1 << 24;
/// Registry spin bit.
const REGLOCK: u64 = 1 << 25;
/// Inflated bit: the lock table is authoritative.
const INFLATED: u64 = 1 << 26;
/// Mask of the exclusive owner's raw id.
const OWNER_MASK: u64 = EXCL - 1;
/// One shared holder.
const READER_ONE: u64 = 1 << 32;
/// Mask of the reader count.
const READER_MASK: u64 = 0xFFFF << 32;

/// Fast-path shared-holder registry slots per entity. Entities with more
/// simultaneous fast readers than this inflate to the table.
const READER_SLOTS: usize = 8;

/// Bounded spins while another thread holds `REGLOCK` before the caller
/// gives up and takes the mutex path. Registry critical sections are a
/// handful of instructions, so this is generous.
const SPIN_LIMIT: u32 = 128;

/// Outcome of an optimistic word operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastPath {
    /// The CAS succeeded; the lock is granted (or released).
    Done,
    /// The word shows contention, inflation, or a full registry — take the
    /// shard-mutex path.
    Fallback,
}

/// Packs the §4 rollback metadata carried by a [`HeldLock`].
fn pack_meta(state: StateIndex, lock: LockIndex) -> u64 {
    u64::from(state.raw()) | (u64::from(lock.raw()) << 32)
}

fn unpack_meta(meta: u64) -> (StateIndex, LockIndex) {
    (StateIndex::new(meta as u32), LockIndex::new((meta >> 32) as u32))
}

/// One shared fast-path holder: raw txn id (0 = free) plus packed
/// metadata. Mutated only while `REGLOCK` is held on the entity's word.
#[derive(Default)]
struct ReaderSlot {
    txn: AtomicU32,
    meta: AtomicU64,
}

/// Per-entity slab entry: lock word, value cell, and holder metadata.
struct Entry {
    word: AtomicU64,
    value: AtomicI64,
    /// Packed metadata of the exclusive fast-path owner; written under
    /// `REGLOCK` before the grant's final word store, so inflation (which
    /// spins out `REGLOCK`) always reads the owner's real metadata.
    excl_meta: AtomicU64,
    readers: [ReaderSlot; READER_SLOTS],
}

impl Entry {
    fn new(value: Value) -> Self {
        Entry {
            word: AtomicU64::new(0),
            value: AtomicI64::new(value.raw()),
            excl_meta: AtomicU64::new(0),
            readers: Default::default(),
        }
    }
}

/// How entity ids map onto slab indices.
enum SlabIndex {
    /// Ids are dense: entry index == raw id.
    Dense,
    /// Sparse ids: explicit map.
    Sparse(BTreeMap<EntityId, u32>),
}

/// Counters for the fast path, read at quiescence.
#[derive(Clone, Copy, Default, Debug)]
pub struct FastPathStats {
    /// Grants that never touched a shard mutex.
    pub fast_grants: u64,
    /// Releases that never touched a shard mutex.
    pub fast_releases: u64,
    /// Entities handed off to the lock table (queue-flag set).
    pub inflations: u64,
    /// Entities handed back to the fast path after going idle.
    pub deflations: u64,
}

/// The slab: one `Entry` per entity, built once per run. All methods
/// take `&self`; the slab is shared across worker threads without any
/// lock of its own.
pub struct EntitySlab {
    entries: Vec<Entry>,
    ids: Vec<EntityId>,
    index: SlabIndex,
    fast_grants: AtomicU64,
    fast_releases: AtomicU64,
    inflations: AtomicU64,
    deflations: AtomicU64,
}

impl EntitySlab {
    /// Builds the slab from the run's global store. Dense id spaces (the
    /// common case — generator entities are `0..n`) index directly; sparse
    /// ones fall back to a read-only map.
    pub fn from_store(store: &GlobalStore) -> Self {
        let ids: Vec<EntityId> = store.iter().map(|(id, _)| id).collect();
        let max_raw = ids.last().map_or(0, |id| id.raw() as usize);
        let dense = max_raw < ids.len().saturating_mul(2) + 64;
        let (entries, index) = if dense {
            let mut entries: Vec<Entry> =
                (0..=max_raw as u32).map(|_| Entry::new(Value::ZERO)).collect();
            if ids.is_empty() {
                entries.clear();
            }
            for (id, value) in store.iter() {
                entries[id.raw() as usize].value.store(value.raw(), Ordering::Relaxed);
            }
            (entries, SlabIndex::Dense)
        } else {
            let mut entries = Vec::with_capacity(ids.len());
            let mut map = BTreeMap::new();
            for (id, value) in store.iter() {
                map.insert(id, entries.len() as u32);
                entries.push(Entry::new(value));
            }
            (entries, SlabIndex::Sparse(map))
        };
        EntitySlab {
            entries,
            ids,
            index,
            fast_grants: AtomicU64::new(0),
            fast_releases: AtomicU64::new(0),
            inflations: AtomicU64::new(0),
            deflations: AtomicU64::new(0),
        }
    }

    /// Whether the slab has an entry for `entity`. Session-mode callers
    /// use this to reject externally submitted programs that reference
    /// entities outside the fixed universe the slab was built from
    /// (the slab cannot grow once workers share it).
    pub fn contains(&self, entity: EntityId) -> bool {
        match &self.index {
            SlabIndex::Dense => (entity.raw() as usize) < self.entries.len(),
            SlabIndex::Sparse(map) => map.contains_key(&entity),
        }
    }

    fn entry(&self, entity: EntityId) -> &Entry {
        let idx = match &self.index {
            SlabIndex::Dense => entity.raw() as usize,
            SlabIndex::Sparse(map) => {
                *map.get(&entity).unwrap_or_else(|| panic!("entity {entity:?} missing from slab"))
                    as usize
            }
        };
        &self.entries[idx]
    }

    /// Reads the entity's published value. Callers hold a lock on the
    /// entity (2PL), so no conflicting publish can be concurrent.
    pub fn read(&self, entity: EntityId) -> Value {
        Value::new(self.entry(entity).value.load(Ordering::Acquire))
    }

    /// Publishes a committed value (deferred update). Sequenced *before*
    /// the holder's lock release on either path.
    pub fn publish(&self, entity: EntityId, value: Value) {
        self.entry(entity).value.store(value.raw(), Ordering::Release);
    }

    /// Attempts an optimistic grant without touching the shard mutex.
    ///
    /// Succeeds only when the word shows no conflict, no inflation, and
    /// (for shared mode) a free registry slot; every success records the
    /// holder's §4 metadata so a later inflation can transfer the hold
    /// into the lock table.
    pub fn try_fast_lock(
        &self,
        entity: EntityId,
        txn: TxnId,
        mode: LockMode,
        state: StateIndex,
        lock: LockIndex,
    ) -> FastPath {
        if u64::from(txn.raw()) & !OWNER_MASK != 0 {
            return FastPath::Fallback; // id too wide for the word
        }
        let entry = self.entry(entity);
        let meta = pack_meta(state, lock);
        let mut spins = 0u32;
        loop {
            let w = entry.word.load(Ordering::Acquire);
            if w & INFLATED != 0 {
                return FastPath::Fallback;
            }
            if w & REGLOCK != 0 {
                spins += 1;
                if spins > SPIN_LIMIT {
                    return FastPath::Fallback;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            match mode {
                LockMode::Exclusive => {
                    if w != 0 {
                        return FastPath::Fallback; // readers or another owner
                    }
                    let claimed = EXCL | REGLOCK | u64::from(txn.raw());
                    if entry
                        .word
                        .compare_exchange_weak(0, claimed, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    // Publish the owner's metadata before dropping REGLOCK:
                    // inflation spins REGLOCK out, so it always sees it.
                    entry.excl_meta.store(meta, Ordering::Release);
                    entry.word.store(EXCL | u64::from(txn.raw()), Ordering::Release);
                }
                LockMode::Shared => {
                    if w & EXCL != 0 {
                        return FastPath::Fallback;
                    }
                    if w & READER_MASK == READER_MASK {
                        return FastPath::Fallback; // count saturated
                    }
                    if entry
                        .word
                        .compare_exchange_weak(w, w | REGLOCK, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    // Registry frozen for everyone else while we hold REGLOCK.
                    let Some(slot) =
                        entry.readers.iter().find(|s| s.txn.load(Ordering::Relaxed) == 0)
                    else {
                        entry.word.store(w, Ordering::Release);
                        return FastPath::Fallback; // registry full → inflate
                    };
                    slot.meta.store(meta, Ordering::Relaxed);
                    slot.txn.store(txn.raw(), Ordering::Relaxed);
                    entry.word.store(w + READER_ONE, Ordering::Release);
                }
            }
            self.fast_grants.fetch_add(1, Ordering::Relaxed);
            return FastPath::Done;
        }
    }

    /// Attempts an optimistic release of a fast-path hold. Returns
    /// [`FastPath::Fallback`] when the entity has been inflated meanwhile —
    /// the hold was transferred into the table, so the caller must release
    /// through the shard mutex.
    pub fn try_fast_release(&self, entity: EntityId, txn: TxnId) -> FastPath {
        let entry = self.entry(entity);
        let mut spins = 0u32;
        loop {
            let w = entry.word.load(Ordering::Acquire);
            if w & INFLATED != 0 {
                return FastPath::Fallback;
            }
            if w & REGLOCK != 0 {
                spins += 1;
                if spins > SPIN_LIMIT {
                    return FastPath::Fallback;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            if w & EXCL != 0 && w & OWNER_MASK == u64::from(txn.raw()) {
                if entry
                    .word
                    .compare_exchange_weak(w, 0, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue;
                }
            } else {
                // Must be one of our shared holds; take REGLOCK to clear
                // the registry slot.
                debug_assert!(w & READER_MASK != 0, "releasing a lock the word does not show");
                if entry
                    .word
                    .compare_exchange_weak(w, w | REGLOCK, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue;
                }
                let slot = entry
                    .readers
                    .iter()
                    .find(|s| s.txn.load(Ordering::Relaxed) == txn.raw())
                    .expect("fast shared hold missing from registry");
                slot.txn.store(0, Ordering::Relaxed);
                entry.word.store(w - READER_ONE, Ordering::Release);
            }
            self.fast_releases.fetch_add(1, Ordering::Relaxed);
            return FastPath::Done;
        }
    }

    /// Hands the entity off to the lock table (sets the queue flag).
    ///
    /// Must be called with the entity's shard mutex held, before *any*
    /// table access for the entity. Idempotent. Transfers every fast-path
    /// holder into `table` with its carried metadata; after this returns,
    /// the table is authoritative and every fast-path CAS on the entity
    /// fails until [`Self::deflate_if_idle`] hands it back.
    pub fn inflate(&self, entity: EntityId, table: &mut LockTable) -> Result<(), LockError> {
        let entry = self.entry(entity);
        let mut w;
        loop {
            w = entry.word.load(Ordering::Acquire);
            if w & INFLATED != 0 {
                return Ok(()); // already table-authoritative
            }
            if w & REGLOCK != 0 {
                // A fast-path grant/release is mid-flight; it cannot block
                // (registry sections are straight-line), so spin it out.
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            if entry
                .word
                .compare_exchange_weak(w, w | INFLATED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        // Word and registry are frozen now: every fast-path mutation
        // requires INFLATED clear.
        if w & EXCL != 0 {
            let owner = TxnId::new((w & OWNER_MASK) as u32);
            let (state, lock) = unpack_meta(entry.excl_meta.load(Ordering::Acquire));
            table.reinstate(
                entity,
                HeldLock {
                    txn: owner,
                    mode: LockMode::Exclusive,
                    requested_from_state: state,
                    lock_state: lock,
                },
            )?;
        }
        for slot in &entry.readers {
            let raw = slot.txn.load(Ordering::Acquire);
            if raw == 0 {
                continue;
            }
            let (state, lock) = unpack_meta(slot.meta.load(Ordering::Acquire));
            table.reinstate(
                entity,
                HeldLock {
                    txn: TxnId::new(raw),
                    mode: LockMode::Shared,
                    requested_from_state: state,
                    lock_state: lock,
                },
            )?;
            slot.txn.store(0, Ordering::Relaxed);
        }
        // Holders now live in the table; keep only the queue flag.
        entry.word.store(INFLATED, Ordering::Release);
        self.inflations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Hands an inflated entity back to the fast path if its table entry
    /// went idle (no holders, no waiters). Must be called with the
    /// entity's shard mutex held. Returns whether it deflated.
    pub fn deflate_if_idle(&self, entity: EntityId, table: &LockTable) -> bool {
        let entry = self.entry(entity);
        if entry.word.load(Ordering::Acquire) & INFLATED == 0 {
            return false;
        }
        if table.is_active(entity) {
            return false;
        }
        entry.word.store(0, Ordering::Release);
        self.deflations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Fast-path counters.
    pub fn stats(&self) -> FastPathStats {
        FastPathStats {
            fast_grants: self.fast_grants.load(Ordering::Relaxed),
            fast_releases: self.fast_releases.load(Ordering::Relaxed),
            inflations: self.inflations.load(Ordering::Relaxed),
            deflations: self.deflations.load(Ordering::Relaxed),
        }
    }

    /// Final values of every entity, in id order.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_pairs(self.ids.iter().map(|&id| (id, self.read(id))))
    }

    /// Quiescence check: every word must be fully zero — no fast holders,
    /// no spin bit, and (because every release/cancel site deflates idle
    /// entities) no leftover queue flag.
    pub fn check_quiescent(&self) -> Result<(), String> {
        for &id in &self.ids {
            let w = self.entry(id).word.load(Ordering::Acquire);
            if w != 0 {
                return Err(format!("entity {:?} lock word nonzero at quiescence: {w:#x}", id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_lock::GrantPolicy;
    use std::sync::atomic::AtomicI64;

    fn slab(n: u32) -> EntitySlab {
        EntitySlab::from_store(&GlobalStore::with_entities(n, Value::new(100)))
    }

    fn meta(i: u32) -> (StateIndex, LockIndex) {
        (StateIndex::new(i), LockIndex::new(i))
    }

    #[test]
    fn exclusive_fast_cycle_grants_and_releases() {
        let s = slab(2);
        let e = EntityId::new(0);
        let (st, lk) = meta(3);
        assert_eq!(s.try_fast_lock(e, TxnId::new(1), LockMode::Exclusive, st, lk), FastPath::Done);
        // Conflicting requests fall back while the grant is outstanding.
        assert_eq!(
            s.try_fast_lock(e, TxnId::new(2), LockMode::Exclusive, st, lk),
            FastPath::Fallback
        );
        assert_eq!(s.try_fast_lock(e, TxnId::new(2), LockMode::Shared, st, lk), FastPath::Fallback);
        s.publish(e, Value::new(42));
        assert_eq!(s.try_fast_release(e, TxnId::new(1)), FastPath::Done);
        assert_eq!(s.read(e), Value::new(42));
        s.check_quiescent().unwrap();
        let stats = s.stats();
        assert_eq!((stats.fast_grants, stats.fast_releases), (1, 1));
    }

    #[test]
    fn shared_holders_coexist_and_overflow_falls_back() {
        let s = slab(1);
        let e = EntityId::new(0);
        let (st, lk) = meta(1);
        for i in 1..=READER_SLOTS as u32 {
            assert_eq!(s.try_fast_lock(e, TxnId::new(i), LockMode::Shared, st, lk), FastPath::Done);
        }
        // Registry full → the next reader must take the mutex path.
        assert_eq!(
            s.try_fast_lock(e, TxnId::new(99), LockMode::Shared, st, lk),
            FastPath::Fallback
        );
        for i in 1..=READER_SLOTS as u32 {
            assert_eq!(s.try_fast_release(e, TxnId::new(i)), FastPath::Done);
        }
        s.check_quiescent().unwrap();
    }

    #[test]
    fn inflation_transfers_holders_with_metadata() {
        let s = slab(1);
        let e = EntityId::new(0);
        let mut table = LockTable::with_policy(GrantPolicy::Barging);
        assert_eq!(
            s.try_fast_lock(
                e,
                TxnId::new(1),
                LockMode::Shared,
                StateIndex::new(7),
                LockIndex::new(2)
            ),
            FastPath::Done
        );
        s.inflate(e, &mut table).unwrap();
        // The transferred hold carries its §4 metadata.
        let holders = table.holder_records(e);
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, TxnId::new(1));
        assert_eq!(holders[0].mode, LockMode::Shared);
        assert_eq!(holders[0].requested_from_state, StateIndex::new(7));
        assert_eq!(holders[0].lock_state, LockIndex::new(2));
        // Fast path is frozen while inflated.
        let (st, lk) = meta(0);
        assert_eq!(s.try_fast_lock(e, TxnId::new(2), LockMode::Shared, st, lk), FastPath::Fallback);
        assert_eq!(s.try_fast_release(e, TxnId::new(1)), FastPath::Fallback);
        // Release through the table, then the entity deflates and the fast
        // path resumes.
        table.release(TxnId::new(1), e).unwrap();
        assert!(s.deflate_if_idle(e, &table));
        assert_eq!(s.try_fast_lock(e, TxnId::new(2), LockMode::Exclusive, st, lk), FastPath::Done);
        assert_eq!(s.try_fast_release(e, TxnId::new(2)), FastPath::Done);
        s.check_quiescent().unwrap();
    }

    #[test]
    fn deflation_refuses_while_table_active() {
        let s = slab(1);
        let e = EntityId::new(0);
        let mut table = LockTable::with_policy(GrantPolicy::Barging);
        let (st, lk) = meta(0);
        assert_eq!(s.try_fast_lock(e, TxnId::new(1), LockMode::Exclusive, st, lk), FastPath::Done);
        s.inflate(e, &mut table).unwrap();
        // Holder still registered in the table → must not deflate.
        assert!(!s.deflate_if_idle(e, &table));
        table.release(TxnId::new(1), e).unwrap();
        assert!(s.deflate_if_idle(e, &table));
        s.check_quiescent().unwrap();
    }

    #[test]
    fn sparse_id_spaces_use_the_map_index() {
        let mut store = GlobalStore::new();
        store.create(EntityId::new(5), Value::new(5)).unwrap();
        store.create(EntityId::new(1_000_000), Value::new(9)).unwrap();
        let s = EntitySlab::from_store(&store);
        assert!(matches!(s.index, SlabIndex::Sparse(_)));
        assert_eq!(s.read(EntityId::new(1_000_000)), Value::new(9));
        let (st, lk) = meta(0);
        assert_eq!(
            s.try_fast_lock(EntityId::new(5), TxnId::new(1), LockMode::Exclusive, st, lk),
            FastPath::Done
        );
        assert_eq!(s.try_fast_release(EntityId::new(5), TxnId::new(1)), FastPath::Done);
        s.snapshot().iter().for_each(|(id, v)| {
            assert_eq!(v, s.read(id));
        });
    }

    /// CAS hammer: N threads ping-pong exclusive fast grants over one
    /// entity, each incrementing a plain counter inside its critical
    /// section. Any mutual-exclusion hole shows up as a lost update.
    #[test]
    fn cas_hammer_exclusive_grants_are_mutually_exclusive() {
        let s = slab(1);
        let e = EntityId::new(0);
        let counter = AtomicI64::new(0);
        let threads = 4;
        let iters = 400;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let s = &s;
                let counter = &counter;
                scope.spawn(move || {
                    let txn = TxnId::new(t + 1);
                    let (st, lk) = meta(0);
                    let mut done = 0;
                    while done < iters {
                        if s.try_fast_lock(e, txn, LockMode::Exclusive, st, lk) == FastPath::Done {
                            let v = counter.load(Ordering::Relaxed);
                            counter.store(v + 1, Ordering::Relaxed);
                            assert_eq!(s.try_fast_release(e, txn), FastPath::Done);
                            done += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), i64::from(threads) * i64::from(iters));
        s.check_quiescent().unwrap();
    }

    /// Seeded interleaving of CAS grants against concurrent inflation:
    /// one thread repeatedly inflates/deflates through a table while
    /// others hammer fast grants. Every grant must end up accounted on
    /// exactly one path, and the final state must be quiescent.
    #[test]
    fn fast_grants_race_inflation_without_losing_holds() {
        let s = slab(1);
        let e = EntityId::new(0);
        let rounds = 300;
        // Worker: fast-grant loop; on fallback, inflates via its own
        // table view (simulating the mutex path, serialised here by a
        // mutex standing in for the shard).
        let table = std::sync::Mutex::new(LockTable::with_policy(GrantPolicy::Barging));
        let table = &table;
        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let s = &s;
                scope.spawn(move || {
                    let txn = TxnId::new(t + 1);
                    let (st, lk) = meta(0);
                    for _ in 0..rounds {
                        if s.try_fast_lock(e, txn, LockMode::Shared, st, lk) == FastPath::Done {
                            if s.try_fast_release(e, txn) == FastPath::Fallback {
                                // Transferred while we held it: release
                                // through the table like the engine would.
                                let mut tbl = table.lock().unwrap();
                                tbl.release(txn, e).unwrap();
                                s.deflate_if_idle(e, &tbl);
                            }
                        } else {
                            let mut tbl = table.lock().unwrap();
                            s.inflate(e, &mut tbl).unwrap();
                            match tbl.request(txn, e, LockMode::Shared, st, lk) {
                                Ok(pr_lock::RequestOutcome::Granted) => {
                                    tbl.release(txn, e).unwrap();
                                }
                                Ok(pr_lock::RequestOutcome::Wait { .. }) => {
                                    tbl.cancel_wait(txn, e).unwrap();
                                }
                                Err(_) => {}
                            }
                            s.deflate_if_idle(e, &tbl);
                        }
                    }
                });
            }
            // Dedicated inflater creating contention on the word.
            {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..rounds {
                        let mut tbl = table.lock().unwrap();
                        s.inflate(e, &mut tbl).unwrap();
                        s.deflate_if_idle(e, &tbl);
                        drop(tbl);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let tbl = LockTable::with_policy(GrantPolicy::Barging);
        s.deflate_if_idle(e, &tbl);
        s.check_quiescent().unwrap();
    }
}
