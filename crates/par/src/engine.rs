//! The multi-threaded executor: worker-per-transaction over the lock-word
//! fast path + sharded lock table, with concurrent deadlock detection and
//! partial rollback.
//!
//! ## Execution model
//!
//! `threads` workers drain the admission queue; each claims a
//! transaction, holds its slot mutex, and executes its operations exactly
//! as the deterministic engine does — same runtime calls, same lock-table
//! semantics, same §4 rollback procedure — so the two engines are
//! behaviourally interchangeable and the differential oracle can compare
//! them. In-flight transactions never exceed the worker count, so every
//! lock holder and waiter always has a live thread behind it.
//!
//! ## The grant fast path
//!
//! An uncontended lock request never touches a shard mutex: it CASes the
//! entity's lock word in the [`EntitySlab`] and
//! is done. Contention, a full reader registry, or an existing wait queue
//! (the word's `INFLATED` flag) route the request through the classic
//! shard-mutex path, which first *inflates* the entity — transferring any
//! fast-path holders into the shard's [`LockTable`](pr_lock::LockTable)
//! so waits, promotions, and partial rollback see the true holder set.
//! The entity deflates back to the fast path when its table entry goes
//! idle. See [`crate::word`] for the protocol and its invariant.
//!
//! ## Blocking and waking
//!
//! A blocked worker registers its waits-for arcs and detects cycles
//! *atomically* (see [`EpochGraph`]), then parks on its slot. Wakes are
//! lock-free ([`TxnSlot::wake`]) and therefore never dropped: releasers
//! wake promoted waiters *and* every waiter whose blocker set was
//! re-pointed, and a woken waiter re-runs cycle detection immediately
//! instead of discovering re-pointed cycles at the next poll timeout.
//! Parked workers still re-poll the authoritative shard state on a short
//! timeout as a safety net; a worker blocked past the watchdog limit
//! fails the run with [`ParError::Stuck`] rather than hanging.
//!
//! ## Resolution
//!
//! The worker whose wait closed a cycle resolves it: it try-locks every
//! member's slot (ascending id, full back-off on failure — try-locks
//! cannot deadlock), re-validates the detection epoch, plans victims with
//! the same `plan_resolution` the deterministic engine uses (over a
//! borrowed [`RuntimeView`](pr_core::RuntimeView) assembled from the held
//! guards), and executes the rollbacks. Holding every member's slot
//! freezes the cycle: member promotions would need a member's release,
//! which only the members' own (captured) threads or this resolver could
//! perform. Competing resolvers back off with `busy_backoff` — bounded
//! exponential with id-skewed jitter — so dense waits-for graphs cannot
//! degenerate into a try-lock retry storm.

use crate::history::{AccessHistory, CommittedAccess};
use crate::outcome::{ParConfig, ParError, ParOutcome, TxnStats};
use crate::shard::Shards;
use crate::slot::{SlotState, TxnSlot};
use crate::wfg::EpochGraph;
use crate::word::{EntitySlab, FastPath};
use pr_core::deadlock::{plan_resolution, DeadlockEvent};
use pr_core::runtime::{Phase, TxnRuntime};
use pr_core::{Metrics, StrategyKind};
use pr_graph::{CandidateRollback, Cycle};
use pr_lock::RequestOutcome;
use pr_model::{EntityId, LockIndex, LockMode, Op, StateIndex, TransactionProgram, TxnId, Value};
use pr_storage::GlobalStore;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Park timeout: the cadence at which blocked workers re-poll the shard
/// and re-run detection. With lock-free wakes this is a pure safety net,
/// not the wake mechanism.
const POLL: Duration = Duration::from_millis(2);

/// Consecutive empty polls before a blocked worker declares the run
/// stuck (~10 s) — converts any liveness bug into a failed run instead
/// of a hang.
const STUCK_POLLS: u32 = 5_000;

/// Bounded exponential backoff for resolver slot contention: 50 µs
/// doubling per failed attempt to a 1.6 ms cap, plus an id-skewed jitter
/// term so symmetric resolvers cannot retry in lockstep. The cap keeps
/// the worst-case pause well under the watchdog while the growth starves
/// out the try-lock retry storms that collapsed dense skewed graphs.
fn busy_backoff(attempt: u32, id: TxnId) -> Duration {
    Duration::from_micros((50u64 << attempt.min(5)) + u64::from(id.raw() % 8) * 50)
}

/// Outcome of one resolution attempt.
enum Round {
    /// A plan was executed; at least one victim rolled back.
    Resolved,
    /// The epoch moved between detection and slot capture — the cycle
    /// may no longer exist; re-detect.
    Stale,
    /// A member's slot was held elsewhere; back off and re-detect.
    Busy,
}

struct Core<'s> {
    shards: Shards,
    /// Borrowed, not owned: in session mode (see [`crate::session`]) the
    /// slab outlives each batch and carries entity values — and the
    /// fast-path counters — across batches.
    slab: &'s EntitySlab,
    slots: Vec<TxnSlot>,
    wfg: EpochGraph,
    history: AccessHistory,
    shared: Mutex<Metrics>,
    config: ParConfig,
    abort: AtomicBool,
    error: Mutex<Option<ParError>>,
    next: AtomicUsize,
    /// Global id of the transaction before this batch's first: slot `i`
    /// runs transaction `txn_base + i + 1`. Zero for plain
    /// [`run_parallel`] runs.
    txn_base: u32,
}

impl Core<'_> {
    fn slot_of(&self, txn: TxnId) -> &TxnSlot {
        &self.slots[(txn.raw() - 1 - self.txn_base) as usize]
    }

    fn fail(&self, e: ParError) {
        self.abort.store(true, Ordering::Release);
        self.error.lock().expect("error mutex poisoned").get_or_insert(e);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Wakes every transaction in `txns` (lock-free; never dropped).
    fn wake_all(&self, txns: impl IntoIterator<Item = TxnId>) {
        for t in txns {
            self.slot_of(t).wake();
        }
    }

    /// Worker main loop: claim transactions until the queue drains or the
    /// run aborts. Committed accesses accumulate in `acc` (merged into
    /// the global history once, when the worker exits).
    fn worker(&self, local: &mut Metrics, acc: &mut Vec<CommittedAccess>) {
        loop {
            if self.aborted() {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                return;
            }
            self.slots[i].claim();
            if let Err(e) = self.run_txn(i, local, acc) {
                self.fail(e);
                return;
            }
        }
    }

    /// Executes transaction `idx` to commit (or returns early on abort).
    fn run_txn(
        &self,
        idx: usize,
        local: &mut Metrics,
        acc: &mut Vec<CommittedAccess>,
    ) -> Result<(), ParError> {
        let slot = &self.slots[idx];
        let id = TxnId::new(self.txn_base + idx as u32 + 1);
        let mut g = slot.lock();
        loop {
            if self.aborted() {
                return Ok(());
            }
            match g.rt.phase {
                Phase::Committed => return Ok(()),
                Phase::Running => {}
                Phase::Blocked | Phase::Aborted => {
                    return Err(ParError::Inconsistent(format!(
                        "{id} re-entered the step loop in phase {:?}",
                        g.rt.phase
                    )));
                }
            }
            let pc = g.rt.pc;
            let Some(op) = g.rt.program.op(pc).cloned() else {
                return Err(ParError::MissingOp { txn: id, pc });
            };
            local.steps += 1;
            match op {
                Op::LockShared(entity) => {
                    g = self.op_lock(slot, g, id, entity, LockMode::Shared, local)?;
                }
                Op::LockExclusive(entity) => {
                    g = self.op_lock(slot, g, id, entity, LockMode::Exclusive, local)?;
                }
                Op::Unlock(entity) => {
                    g = self.op_unlock(g, id, entity, local)?;
                }
                Op::Read { entity, into } => {
                    // 2PL: the program holds a lock on `entity` here, so
                    // the slab's published value cannot change under us.
                    let global = self.slab.read(entity);
                    g.rt.exec_read(entity, into, global)?;
                    local.ops_executed += 1;
                }
                Op::Write { entity, expr } => {
                    g.rt.exec_write(entity, &expr)?;
                    local.ops_executed += 1;
                    local.peak_copies = local.peak_copies.max(g.rt.copies());
                }
                Op::Assign { var, expr } => {
                    g.rt.exec_assign(var, &expr)?;
                    local.ops_executed += 1;
                }
                Op::Compute(expr) => {
                    g.rt.exec_compute(&expr);
                    local.ops_executed += 1;
                }
                Op::Commit => {
                    self.op_commit(g, id, local, acc)?;
                    return Ok(());
                }
            }
        }
    }

    /// Completes a granted lock on the worker's own runtime.
    fn finish_grant(
        &self,
        g: &mut SlotState,
        entity: EntityId,
        mode: LockMode,
        global: Value,
        local: &mut Metrics,
    ) {
        let stamp = self.history.next_stamp();
        g.rt.complete_lock(entity, mode, global);
        g.stamps.insert(entity, stamp);
        if let Some(since) = g.blocked_since.take() {
            local.grant_latency.record(since.elapsed().as_micros() as u64);
        }
        local.ops_executed += 1;
        local.peak_copies = local.peak_copies.max(g.rt.copies());
    }

    /// Releases `txn`'s lock on `entity`, publishing `value` first when
    /// the release carries a deferred update (§4: rollback releases never
    /// publish). Tries the lock-word fast path; falls back to the shard
    /// mutex when the entity is inflated (or mid-transfer), inflating
    /// first so the hold is guaranteed to be in the table. Returns the
    /// transactions to wake: promoted waiters plus every waiter whose
    /// blocker set was re-pointed.
    fn release_lock(
        &self,
        txn: TxnId,
        entity: EntityId,
        publish: Option<Value>,
    ) -> Result<Vec<TxnId>, ParError> {
        if let Some(value) = publish {
            // Release-store sequenced before the word CAS / table release
            // on either path, so the next conflicting grant sees it.
            self.slab.publish(entity, value);
        }
        if self.config.fast_path && self.slab.try_fast_release(entity, txn) == FastPath::Done {
            return Ok(Vec::new()); // fast holds have no waiters by construction
        }
        let mut shard = self.shards.guard(entity);
        self.slab.inflate(entity, &mut shard.table)?;
        let promoted = shard.table.release(txn, entity)?;
        let mut wake = self.wfg.queue_changed(&shard.table, entity, None, &promoted);
        self.slab.deflate_if_idle(entity, &shard.table);
        drop(shard);
        wake.extend(promoted.iter().map(|h| h.txn));
        Ok(wake)
    }

    /// One lock-request operation: optimistic lock-word grant, else
    /// request under the entity's shard, then — if blocked — alternate
    /// resolution attempts with parking until granted or rolled back.
    fn op_lock<'a>(
        &'a self,
        slot: &'a TxnSlot,
        mut g: MutexGuard<'a, SlotState>,
        id: TxnId,
        entity: EntityId,
        mode: LockMode,
        local: &mut Metrics,
    ) -> Result<MutexGuard<'a, SlotState>, ParError> {
        if self.config.fast_path
            && self.slab.try_fast_lock(entity, id, mode, g.rt.state, g.rt.lock_index())
                == FastPath::Done
        {
            let global = self.slab.read(entity);
            self.finish_grant(&mut g, entity, mode, global, local);
            return Ok(g);
        }
        let cap = self.config.system.cycle_cap;
        let (mut cycles, mut epoch);
        {
            let mut shard = self.shards.guard(entity);
            // Queue-flag handoff: the table becomes authoritative (and
            // inherits any fast-path holders) before we consult it.
            self.slab.inflate(entity, &mut shard.table)?;
            match shard.table.request(id, entity, mode, g.rt.state, g.rt.lock_index())? {
                RequestOutcome::Granted => {
                    let global = self.slab.read(entity);
                    // A barging grant can newly block queued waiters on
                    // this holder; re-point their arcs and wake them to
                    // re-detect against the new blocker.
                    let repointed = self.wfg.queue_changed(&shard.table, entity, None, &[]);
                    drop(shard);
                    self.wake_all(repointed);
                    self.finish_grant(&mut g, entity, mode, global, local);
                    return Ok(g);
                }
                RequestOutcome::Wait { holders, .. } => {
                    g.rt.phase = Phase::Blocked;
                    g.rt.blocked_on = Some(entity);
                    g.blocked_since = Some(Instant::now());
                    let depth = shard.table.queue_depth(entity);
                    let (c, e) = self.wfg.register_and_detect(id, entity, &holders, cap);
                    drop(shard);
                    local.waits += 1;
                    local.note_queue_depth(entity, depth);
                    (cycles, epoch) = (c, e);
                }
            }
        }
        let mut idle_polls: u32 = 0;
        let mut busy_attempts: u32 = 0;
        loop {
            if self.aborted() {
                return Ok(g);
            }
            // Rolled back by a resolver (possibly after it completed a
            // raced-in grant on our behalf): pc/state were reset; resume
            // the op loop from there.
            if g.rt.phase == Phase::Running {
                g.blocked_since = None;
                return Ok(g);
            }
            // The shard is the authority on promotion.
            {
                let shard = self.shards.guard(entity);
                if let Some(h) = shard.table.held_by(id, entity) {
                    let global = self.slab.read(entity);
                    drop(shard);
                    self.finish_grant(&mut g, entity, h.mode, global, local);
                    return Ok(g);
                }
            }
            if !cycles.is_empty() {
                match self.try_resolve(&mut g, id, entity, &cycles, epoch, local)? {
                    Round::Resolved => {
                        idle_polls = 0;
                        busy_attempts = 0;
                        (cycles, epoch) = self.refreshed(id, cap);
                        continue;
                    }
                    Round::Stale => {
                        busy_attempts = 0;
                        (cycles, epoch) = self.refreshed(id, cap);
                        continue;
                    }
                    Round::Busy => {
                        // Another resolver holds overlapping slots; get
                        // fully out of its way (it may need ours), backing
                        // off harder each consecutive collision.
                        drop(g);
                        std::thread::sleep(busy_backoff(busy_attempts, id));
                        busy_attempts = busy_attempts.saturating_add(1);
                        g = slot.lock();
                        (cycles, epoch) = self.refreshed(id, cap);
                        continue;
                    }
                }
            }
            let (g2, woken) = slot.park(g, POLL);
            g = g2;
            if woken {
                idle_polls = 0;
                busy_attempts = 0;
            } else {
                idle_polls += 1;
                if idle_polls >= STUCK_POLLS {
                    return Err(ParError::Stuck { txn: id });
                }
            }
            // Re-detect on every wake — a wake means a release, promotion,
            // or re-pointed arc changed our neighbourhood (event-driven
            // re-detection) — and on every timeout as the watchdog net.
            (cycles, epoch) = self.refreshed(id, cap);
        }
    }

    /// Current cycles through `id`'s registered wait, or empty if it no
    /// longer waits.
    fn refreshed(&self, id: TxnId, cap: usize) -> (Vec<Cycle>, u64) {
        self.wfg.redetect(id, cap).unwrap_or((Vec::new(), 0))
    }

    /// One resolution attempt for cycles detected at `epoch`.
    fn try_resolve(
        &self,
        g: &mut SlotState,
        id: TxnId,
        entity: EntityId,
        cycles: &[Cycle],
        epoch: u64,
        local: &mut Metrics,
    ) -> Result<Round, ParError> {
        let mut members: BTreeSet<TxnId> = cycles.iter().flat_map(|c| c.txns()).collect();
        members.remove(&id);
        let mut held: Vec<(TxnId, MutexGuard<'_, SlotState>)> = Vec::with_capacity(members.len());
        for &m in &members {
            match self.slot_of(m).try_lock() {
                Some(og) => held.push((m, og)),
                None => return Ok(Round::Busy),
            }
        }
        // Any arc change since detection invalidates the cycles. With the
        // epoch unchanged and every member's slot in hand, the cycle is
        // frozen: promotions/cancellations of members would need a
        // member's own thread or another resolver, all excluded now.
        if self.wfg.epoch() != epoch {
            return Ok(Round::Stale);
        }
        if held.iter().any(|(_, og)| og.rt.phase != Phase::Blocked) {
            return Ok(Round::Stale);
        }
        let plan = {
            let mut view: BTreeMap<TxnId, &TxnRuntime> = BTreeMap::new();
            view.insert(id, &g.rt);
            for (m, og) in &held {
                view.insert(*m, &og.rt);
            }
            let event = DeadlockEvent { causer: id, entity, cycles: cycles.to_vec() };
            plan_resolution(&event, &self.config.system, &view)
        };
        if plan.rollbacks.is_empty() {
            // Cannot happen while every member is rollbackable; surface
            // rather than spin.
            return Err(ParError::Unresolvable { txn: id });
        }
        local.deadlocks += 1;
        if plan.optimal {
            local.cutset_optimal += 1;
        } else {
            local.cutset_greedy += 1;
        }
        let mut to_wake: BTreeSet<TxnId> = BTreeSet::new();
        let mut actual_cost: u64 = 0;
        for rb in &plan.rollbacks {
            actual_cost += self.execute_rollback(*rb, g, id, &mut held, &mut to_wake, local)?;
        }
        // Recorded from executed costs so the resolution-cost histogram
        // sums exactly to the states-lost counter (and to the per-victim
        // runtime totals), with no drift from raced-in grants.
        local.resolution_cost.record(actual_cost);
        to_wake.remove(&id); // we are awake, running this very loop
        drop(held);
        self.wake_all(to_wake);
        Ok(Round::Resolved)
    }

    /// Executes one planned rollback. Returns the states actually lost.
    fn execute_rollback(
        &self,
        rb: CandidateRollback,
        g: &mut SlotState,
        self_id: TxnId,
        held: &mut [(TxnId, MutexGuard<'_, SlotState>)],
        to_wake: &mut BTreeSet<TxnId>,
        local: &mut Metrics,
    ) -> Result<u64, ParError> {
        let victim = rb.txn;
        let vs: &mut SlotState = if victim == self_id {
            g
        } else {
            held.iter_mut().find(|(m, _)| *m == victim).map(|(_, og)| &mut **og).ok_or_else(
                || ParError::Inconsistent(format!("victim {victim} not captured by resolver")),
            )?
        };
        // Step 1: halt the victim — cancel its pending request. An
        // earlier rollback in this same plan may have promoted it
        // already; mirror the deterministic engine (which finalizes
        // promoted grants before rolling the victim back) by completing
        // the grant on its behalf, then undoing it like any lock state.
        if vs.rt.phase == Phase::Blocked {
            let went = vs.rt.blocked_on.expect("blocked transactions record their entity");
            let mut shard = self.shards.guard(went);
            if let Some(h) = shard.table.held_by(victim, went) {
                let global = self.slab.read(went);
                drop(shard);
                let stamp = self.history.next_stamp();
                vs.rt.complete_lock(went, h.mode, global);
                vs.stamps.insert(went, stamp);
                if let Some(since) = vs.blocked_since.take() {
                    local.grant_latency.record(since.elapsed().as_micros() as u64);
                }
                local.ops_executed += 1;
            } else {
                let promoted = shard.table.cancel_wait(victim, went)?;
                let repointed = self.wfg.queue_changed(&shard.table, went, Some(victim), &promoted);
                self.slab.deflate_if_idle(went, &shard.table);
                drop(shard);
                to_wake.extend(promoted.iter().map(|h| h.txn));
                to_wake.extend(repointed);
                vs.blocked_since = None;
            }
        }
        // Steps 2–5: runtime/workspace rollback, then lock releases
        // without publishing (§4's deferred update — the database still
        // holds the pre-lock globals).
        let target = rb.target.min(vs.rt.lock_index());
        let ideal = rb.ideal.min(vs.rt.lock_index());
        let cost = vs.rt.cost_to_lock_state(target);
        let ideal_cost = vs.rt.cost_to_lock_state(ideal);
        let released = vs.rt.rollback_to(target)?;
        local.states_lost += u64::from(cost);
        local.rollback_overshoot += u64::from(cost - ideal_cost);
        if target == LockIndex::ZERO {
            local.total_rollbacks += 1;
        } else {
            local.partial_rollbacks += 1;
        }
        if self.config.system.strategy == StrategyKind::Repair {
            local.repairs += 1;
            local.repair_suffix.record(u64::from(cost));
        }
        local.record_preemption(victim);
        local.peak_copies = local.peak_copies.max(vs.rt.copies());
        for ls in &released {
            vs.stamps.remove(&ls.entity);
            // The victim's hold may be a fast-path grant (lock word) or a
            // table grant; release_lock handles both, never publishing.
            to_wake.extend(self.release_lock(victim, ls.entity, None)?);
        }
        if victim != self_id {
            // The victim's thread is parked in its own op_lock loop; wake
            // it so it resumes from the reset pc.
            to_wake.insert(victim);
        }
        Ok(u64::from(cost))
    }

    /// One unlock operation: publish (exclusive), release, re-point
    /// arcs, wake promoted and re-pointed waiters.
    fn op_unlock<'a>(
        &'a self,
        mut g: MutexGuard<'a, SlotState>,
        id: TxnId,
        entity: EntityId,
        local: &mut Metrics,
    ) -> Result<MutexGuard<'a, SlotState>, ParError> {
        let published = g.rt.complete_unlock(entity);
        let wake = self.release_lock(id, entity, published)?;
        local.ops_executed += 1;
        // Wakes are lock-free; no need to drop our own slot first.
        self.wake_all(wake);
        Ok(g)
    }

    /// Commit: release every held lock (publishing exclusive finals),
    /// buffer the access history, wake promoted waiters.
    fn op_commit(
        &self,
        mut g: MutexGuard<'_, SlotState>,
        id: TxnId,
        local: &mut Metrics,
        acc: &mut Vec<CommittedAccess>,
    ) -> Result<(), ParError> {
        let held_entities: Vec<EntityId> = g.rt.held.iter().copied().collect();
        let mut to_wake: Vec<TxnId> = Vec::new();
        for entity in held_entities {
            let published = g.rt.complete_unlock(entity);
            // Commit-time releases are not separate operations; undo the
            // advance (as the deterministic engine does).
            g.rt.pc -= 1;
            g.rt.state = StateIndex::new(g.rt.state.raw() - 1);
            to_wake.extend(self.release_lock(id, entity, published)?);
        }
        g.rt.advance();
        g.rt.phase = Phase::Committed;
        acc.extend(g.rt.lock_states.iter().map(|ls| CommittedAccess {
            txn: id,
            entity: ls.entity,
            mode: ls.mode,
            stamp: *g.stamps.get(&ls.entity).expect("every committed lock state was stamped"),
        }));
        local.ops_executed += 1;
        local.commits += 1;
        // Harvest the repair ledger at commit, mirroring the deterministic
        // engine: the per-worker totals merge into the run-level metrics.
        let (replayed, reused) = g.rt.repair_ops();
        local.ops_replayed += replayed;
        local.ops_reused += reused;
        drop(g);
        self.wake_all(to_wake);
        Ok(())
    }
}

/// Runs `programs` to completion on `config.threads` worker threads over
/// the lock-word slab + sharded lock table seeded from `store`.
///
/// On success every transaction has committed; the outcome carries the
/// final snapshot, the stamped access history for the serializability
/// oracle, merged metrics, and per-transaction rollback accounting. The
/// first worker error aborts the whole run.
pub fn run_parallel(
    programs: &[TransactionProgram],
    mut store: GlobalStore,
    config: &ParConfig,
) -> Result<ParOutcome, ParError> {
    for p in programs {
        for e in p.locked_entities() {
            store.ensure(e);
        }
    }
    let slab = EntitySlab::from_store(&store);
    run_batch(programs, &slab, config, 0, 0).map(|(outcome, _)| outcome)
}

/// Runs one batch of `programs` over a caller-owned slab — the engine
/// behind both [`run_parallel`] (fresh slab, bases zero) and session mode
/// ([`crate::session::Session`], which carries the slab, a transaction-id
/// base, and a stamp base across batches so externally submitted
/// transactions get globally unique ids and a single monotone stamp
/// clock).
///
/// The caller guarantees every locked entity exists in the slab, and that
/// the slab is quiescent (no holders, no queue flags) — true after any
/// successful prior batch. Returns the outcome plus the stamp high-water
/// mark, the next batch's stamp base.
pub(crate) fn run_batch(
    programs: &[TransactionProgram],
    slab: &EntitySlab,
    config: &ParConfig,
    txn_base: u32,
    stamp_base: u64,
) -> Result<(ParOutcome, u64), ParError> {
    let n = programs.len();
    let threads = config.threads.max(1).min(n.max(1));
    let shard_count = config.effective_shards();
    let slots: Vec<TxnSlot> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            TxnSlot::new(TxnRuntime::new(
                TxnId::new(txn_base + i as u32 + 1),
                Arc::new(p.clone()),
                u64::from(txn_base) + i as u64,
                config.system.strategy,
            ))
        })
        .collect();
    let core = Core {
        shards: Shards::new(shard_count, config.system.grant_policy),
        slab,
        slots,
        wfg: EpochGraph::new(),
        history: AccessHistory::with_base(stamp_base),
        shared: Mutex::new(Metrics::default()),
        config: config.clone(),
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
        next: AtomicUsize::new(0),
        txn_base,
    };
    // Steady-state timing: workers hold at a barrier until all are
    // spawned, then each records its own active span against a shared
    // epoch; `elapsed` runs from the first working span's begin to the
    // last working span's end. Timing inside the workers excludes thread
    // start-up (which would otherwise dominate small runs and make
    // scaling curves meaningless on a small box), and workers that never
    // claimed a transaction are excluded: on an oversubscribed box a
    // worker can wake long after its siblings drained the whole workload,
    // and its empty span would measure scheduler wake latency, not
    // execution.
    let ready = std::sync::Barrier::new(threads);
    let epoch = Instant::now();
    let spans: Mutex<Vec<(Duration, Duration)>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                ready.wait();
                let begin = epoch.elapsed();
                let mut local = Metrics::default();
                let mut acc = Vec::new();
                core.worker(&mut local, &mut acc);
                core.history.commit(acc);
                let worked = local.commits > 0;
                core.shared.lock().expect("metrics mutex poisoned").merge(&local);
                if worked {
                    let end = epoch.elapsed();
                    spans.lock().expect("span mutex poisoned").push((begin, end));
                }
            });
        }
    });
    let spans = spans.into_inner().expect("span mutex poisoned");
    let begin = spans.iter().map(|s| s.0).min().unwrap_or_default();
    let end = spans.iter().map(|s| s.1).max().unwrap_or_default();
    let elapsed = end.saturating_sub(begin);
    if let Some(e) = core.error.lock().expect("error mutex poisoned").take() {
        return Err(e);
    }
    // Quiescent-point validation: lock tables coherent, lock words fully
    // released, waits-for graph drained, everyone committed.
    core.shards.check_invariants().map_err(ParError::Inconsistent)?;
    core.slab.check_quiescent().map_err(ParError::Inconsistent)?;
    core.wfg.check_consistent().map_err(ParError::Inconsistent)?;
    if core.wfg.waiting_count() != 0 {
        return Err(ParError::Inconsistent(format!(
            "{} transactions still registered as waiting at quiescence",
            core.wfg.waiting_count()
        )));
    }
    let snapshot = core.slab.snapshot();
    let per_txn: Vec<TxnStats> = core
        .slots
        .iter()
        .map(|s| {
            let g = s.lock();
            let (ops_replayed, ops_reused) = g.rt.repair_ops();
            TxnStats {
                id: g.rt.id,
                committed: g.rt.phase == Phase::Committed,
                states_lost: g.rt.states_lost,
                preemptions: g.rt.preemptions,
                ops_replayed,
                ops_reused,
            }
        })
        .collect();
    if let Some(t) = per_txn.iter().find(|t| !t.committed) {
        return Err(ParError::Inconsistent(format!("{} never committed", t.id)));
    }
    let Core { shared, history, .. } = core;
    let stamp_high_water = history.high_water();
    Ok((
        ParOutcome {
            metrics: shared.into_inner().expect("metrics mutex poisoned"),
            per_txn,
            accesses: history.into_accesses(),
            snapshot,
            elapsed,
            threads,
            shards: shard_count,
            fast: slab.stats(),
        },
        stamp_high_water,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pr_core::{StrategyKind, SystemConfig};
    use pr_model::{Expr, Value, VarId};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }

    /// `LX(a); v0 = R(a); v0 += delta; W(a, v0); U(a)*; COMMIT` — the
    /// read-modify-write increment every thread-safety test leans on.
    fn increment(entity: EntityId, delta: i64) -> TransactionProgram {
        TransactionProgram::try_from(vec![
            Op::LockExclusive(entity),
            Op::Read { entity, into: VarId::new(0) },
            Op::Assign {
                var: VarId::new(0),
                expr: Expr::add(Expr::var(VarId::new(0)), Expr::lit(delta)),
            },
            Op::Write { entity, expr: Expr::var(VarId::new(0)) },
            Op::Commit,
        ])
        .unwrap()
    }

    /// Two-entity transfer that locks in the given order — opposite
    /// orders across transactions manufacture deadlocks.
    fn transfer(first: EntityId, second: EntityId, delta: i64) -> TransactionProgram {
        let bump = |ent: EntityId, var: u16, d: i64| {
            vec![
                Op::Read { entity: ent, into: VarId::new(var) },
                Op::Assign {
                    var: VarId::new(var),
                    expr: Expr::add(Expr::var(VarId::new(var)), Expr::lit(d)),
                },
                Op::Write { entity: ent, expr: Expr::var(VarId::new(var)) },
            ]
        };
        let mut ops = vec![Op::LockExclusive(first)];
        ops.extend(bump(first, 0, delta));
        ops.push(Op::LockExclusive(second));
        ops.extend(bump(second, 1, -delta));
        ops.push(Op::Commit);
        TransactionProgram::try_from(ops).unwrap()
    }

    fn config(threads: usize, strategy: StrategyKind) -> ParConfig {
        ParConfig {
            threads,
            shards: 4,
            system: SystemConfig { strategy, ..SystemConfig::default() },
            fast_path: true,
        }
    }

    #[test]
    fn lost_update_is_impossible_under_contention() {
        let programs: Vec<TransactionProgram> = (0..16).map(|_| increment(e(0), 1)).collect();
        let store = GlobalStore::with_entities(1, Value::ZERO);
        let out = run_parallel(&programs, store, &config(4, StrategyKind::Mcs)).unwrap();
        assert_eq!(out.commits(), 16);
        assert_eq!(out.snapshot.get(e(0)), Some(Value::new(16)));
        assert_eq!(out.metrics.commits, 16);
        // Conflicting exclusive accesses must carry distinct, ordered stamps.
        let mut stamps: Vec<u64> = out.accesses.iter().map(|a| a.stamp).collect();
        let len = stamps.len();
        stamps.dedup();
        assert_eq!(stamps.len(), len);
    }

    #[test]
    fn opposed_transfers_deadlock_and_both_commit() {
        for strategy in StrategyKind::ALL {
            let programs =
                vec![transfer(e(0), e(1), 5), transfer(e(1), e(0), 3), transfer(e(0), e(1), 2)];
            let store = GlobalStore::with_entities(2, Value::new(100));
            let out = run_parallel(&programs, store, &config(3, strategy))
                .unwrap_or_else(|err| panic!("{strategy:?}: {err}"));
            assert_eq!(out.commits(), 3, "{strategy:?}");
            // Transfers conserve the total.
            let total: i64 = out.snapshot.iter().map(|(_, v)| v.raw()).sum();
            assert_eq!(total, 200, "{strategy:?}");
        }
    }

    #[test]
    fn single_thread_runs_degenerate_to_serial() {
        let programs = vec![increment(e(0), 2), increment(e(1), 3), increment(e(0), 4)];
        let store = GlobalStore::with_entities(2, Value::ZERO);
        let out = run_parallel(&programs, store, &config(1, StrategyKind::Total)).unwrap();
        assert_eq!(out.commits(), 3);
        assert_eq!(out.snapshot.get(e(0)), Some(Value::new(6)));
        assert_eq!(out.snapshot.get(e(1)), Some(Value::new(3)));
        assert_eq!(out.metrics.deadlocks, 0);
        // Uncontended single-thread grants all ride the lock word.
        assert_eq!(out.fast.fast_grants, 3);
        assert_eq!(out.fast.fast_releases, 3);
        assert_eq!(out.fast.inflations, 0);
    }

    #[test]
    fn fast_path_disabled_routes_everything_through_the_table() {
        let programs = vec![increment(e(0), 2), increment(e(1), 3), increment(e(0), 4)];
        let store = GlobalStore::with_entities(2, Value::ZERO);
        let cfg = ParConfig { fast_path: false, ..config(2, StrategyKind::Mcs) };
        let out = run_parallel(&programs, store, &cfg).unwrap();
        assert_eq!(out.commits(), 3);
        assert_eq!(out.snapshot.get(e(0)), Some(Value::new(6)));
        assert_eq!(out.fast.fast_grants, 0);
        assert_eq!(out.fast.fast_releases, 0);
        // Every entity inflates on first table touch and deflates when idle.
        assert!(out.fast.inflations >= 2);
        assert_eq!(out.fast.inflations, out.fast.deflations);
    }

    #[test]
    fn deadlocks_resolve_while_victims_hold_fast_path_grants() {
        // The first lock of each transfer is typically an uncontended
        // fast-path grant; the second blocks and deadlocks. Rollback must
        // release the fast-held first lock through the word.
        for _ in 0..5 {
            let programs = vec![transfer(e(0), e(1), 5), transfer(e(1), e(0), 3)];
            let store = GlobalStore::with_entities(2, Value::new(100));
            let out = run_parallel(&programs, store, &config(2, StrategyKind::Mcs)).unwrap();
            assert_eq!(out.commits(), 2);
            let total: i64 = out.snapshot.iter().map(|(_, v)| v.raw()).sum();
            assert_eq!(total, 200);
        }
    }

    #[test]
    fn rollback_accounting_reconciles_across_views() {
        // High-conflict workload: every pair of opposed transfers can
        // deadlock; run enough of them that rollbacks actually happen.
        let mut programs = Vec::new();
        for i in 0..12 {
            if i % 2 == 0 {
                programs.push(transfer(e(0), e(1), 1));
            } else {
                programs.push(transfer(e(1), e(0), 1));
            }
        }
        let store = GlobalStore::with_entities(2, Value::new(50));
        let out = run_parallel(&programs, store, &config(4, StrategyKind::Mcs)).unwrap();
        assert_eq!(out.commits(), 12);
        let per_txn_lost: u64 = out.per_txn.iter().map(|t| t.states_lost).sum();
        assert_eq!(out.metrics.states_lost, per_txn_lost);
        assert_eq!(out.metrics.resolution_cost.sum(), out.metrics.states_lost);
        let per_txn_preempt: u64 = out.per_txn.iter().map(|t| u64::from(t.preemptions)).sum();
        let metric_preempt: u64 = out.metrics.preemptions.values().map(|&c| u64::from(c)).sum();
        assert_eq!(metric_preempt, per_txn_preempt);
    }

    #[test]
    fn repair_ledgers_reconcile_across_threads() {
        // Same high-conflict shape as the accounting test, but under
        // Repair: every state a rollback discards must show up again as
        // either a replayed or a reused suffix op by commit time.
        let mut programs = Vec::new();
        for i in 0..12 {
            if i % 2 == 0 {
                programs.push(transfer(e(0), e(1), 1));
            } else {
                programs.push(transfer(e(1), e(0), 1));
            }
        }
        let store = GlobalStore::with_entities(2, Value::new(50));
        let out = run_parallel(&programs, store, &config(4, StrategyKind::Repair)).unwrap();
        assert_eq!(out.commits(), 12);
        let total: i64 = out.snapshot.iter().map(|(_, v)| v.raw()).sum();
        assert_eq!(total, 100);
        assert_eq!(
            out.metrics.repairs,
            out.metrics.partial_rollbacks + out.metrics.total_rollbacks
        );
        assert_eq!(out.metrics.repair_suffix.sum(), out.metrics.states_lost);
        assert_eq!(out.metrics.ops_replayed + out.metrics.ops_reused, out.metrics.states_lost);
        // Per-transaction rows carry the same split the aggregate does.
        let per_replayed: u64 = out.per_txn.iter().map(|t| t.ops_replayed).sum();
        let per_reused: u64 = out.per_txn.iter().map(|t| t.ops_reused).sum();
        assert_eq!(per_replayed, out.metrics.ops_replayed);
        assert_eq!(per_reused, out.metrics.ops_reused);
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let out = run_parallel(&[], GlobalStore::new(), &config(4, StrategyKind::Total)).unwrap();
        assert_eq!(out.commits(), 0);
        assert!(out.accesses.is_empty());
    }

    #[test]
    fn busy_backoff_grows_to_a_bounded_cap_with_id_jitter() {
        let t1 = TxnId::new(1);
        // Monotone growth...
        for a in 0..5 {
            assert!(busy_backoff(a + 1, t1) > busy_backoff(a, t1));
        }
        // ...to a hard cap: attempts past 5 stop growing.
        assert_eq!(busy_backoff(5, t1), busy_backoff(50, t1));
        assert!(busy_backoff(50, t1) <= Duration::from_micros(1600 + 7 * 50));
        // Distinct ids get distinct jitter offsets (mod 8).
        assert_ne!(busy_backoff(0, TxnId::new(1)), busy_backoff(0, TxnId::new(2)));
    }
}
